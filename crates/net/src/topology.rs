//! Network topologies: a transit-stub (GT-ITM-style) Internet model and
//! helpers for carving pub-sub dissemination trees out of it.
//!
//! The paper generated a 63-node Internet topology with GT-ITM [26]; link
//! round-trip times ranged 24–184 ms with mean 74 ms and a standard
//! deviation of 50 ms. [`TransitStubConfig`] reproduces that model: a few
//! well-connected *transit* domains, each transit node sponsoring *stub*
//! domains, with per-tier latency ranges calibrated to the paper's
//! distribution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An undirected link with a one-way latency in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// One-way latency in milliseconds.
    pub latency_ms: u32,
}

/// An undirected weighted graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    node_count: u32,
    links: Vec<Link>,
    adjacency: Vec<Vec<(NodeId, u32)>>,
}

impl Topology {
    /// Creates a topology with `node_count` isolated nodes.
    pub fn with_nodes(node_count: u32) -> Self {
        Topology {
            node_count,
            links: Vec::new(),
            adjacency: vec![Vec::new(); node_count as usize],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count).map(NodeId)
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Adds an undirected link.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, latency_ms: u32) {
        assert!(
            a.0 < self.node_count && b.0 < self.node_count,
            "endpoint out of range"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        self.links.push(Link { a, b, latency_ms });
        self.adjacency[a.0 as usize].push((b, latency_ms));
        self.adjacency[b.0 as usize].push((a, latency_ms));
    }

    /// Neighbors of a node with link latencies.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, u32)] {
        &self.adjacency[n.0 as usize]
    }

    /// Single-source shortest-path latencies (Dijkstra). Unreachable nodes
    /// get `u64::MAX`.
    pub fn latencies_from(&self, src: NodeId) -> Vec<u64> {
        let n = self.node_count as usize;
        let mut dist = vec![u64::MAX; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[src.0 as usize] = 0;
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u.0 as usize] {
                continue;
            }
            for &(v, w) in self.neighbors(u) {
                let nd = d + w as u64;
                if nd < dist[v.0 as usize] {
                    dist[v.0 as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        dist
    }

    /// Latency of the shortest path between two nodes, or `None` when
    /// disconnected.
    pub fn latency_between(&self, a: NodeId, b: NodeId) -> Option<u64> {
        let d = self.latencies_from(a)[b.0 as usize];
        (d != u64::MAX).then_some(d)
    }

    /// Whether every node can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        self.latencies_from(NodeId(0))
            .iter()
            .all(|&d| d != u64::MAX)
    }

    /// Summary statistics over link round-trip times (2 × one-way), in ms:
    /// `(min, max, mean, stddev)`.
    pub fn rtt_stats(&self) -> (f64, f64, f64, f64) {
        if self.links.is_empty() {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let rtts: Vec<f64> = self
            .links
            .iter()
            .map(|l| 2.0 * l.latency_ms as f64)
            .collect();
        let min = rtts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rtts.iter().cloned().fold(0.0, f64::max);
        let mean = rtts.iter().sum::<f64>() / rtts.len() as f64;
        let var = rtts.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rtts.len() as f64;
        (min, max, mean, var.sqrt())
    }
}

/// Parameters of the transit-stub generator.
///
/// Defaults reproduce the paper's 63-node topology: 1 transit domain of 3
/// nodes, each sponsoring 4 stub domains of 5 nodes
/// (3 + 3·4·5 = 63).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitStubConfig {
    /// Number of transit domains.
    pub transit_domains: u32,
    /// Nodes per transit domain.
    pub transit_nodes: u32,
    /// Stub domains attached to each transit node.
    pub stubs_per_transit: u32,
    /// Nodes per stub domain.
    pub stub_nodes: u32,
    /// One-way latency range for transit–transit links (ms).
    pub transit_latency: (u32, u32),
    /// One-way latency range for transit–stub links (ms).
    pub stub_uplink_latency: (u32, u32),
    /// One-way latency range for intra-stub links (ms).
    pub stub_latency: (u32, u32),
}

impl Default for TransitStubConfig {
    fn default() -> Self {
        // Calibrated so link RTTs span ≈24–184 ms with mean ≈74 ms, as the
        // paper's GT-ITM run measured.
        TransitStubConfig {
            transit_domains: 1,
            transit_nodes: 3,
            stubs_per_transit: 4,
            stub_nodes: 5,
            transit_latency: (40, 92),
            stub_uplink_latency: (20, 60),
            stub_latency: (12, 35),
        }
    }
}

impl TransitStubConfig {
    /// Total node count for these parameters.
    pub fn total_nodes(&self) -> u32 {
        let transit = self.transit_domains * self.transit_nodes;
        transit + transit * self.stubs_per_transit * self.stub_nodes
    }

    /// Generates a topology deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut topo = Topology::with_nodes(self.total_nodes());
        let sample = |rng: &mut StdRng, (lo, hi): (u32, u32)| {
            if lo >= hi {
                lo
            } else {
                rng.gen_range(lo..=hi)
            }
        };

        let transit_total = self.transit_domains * self.transit_nodes;
        // Transit backbone: ring + a chord per domain for redundancy.
        for d in 0..self.transit_domains {
            let base = d * self.transit_nodes;
            for i in 0..self.transit_nodes {
                let a = NodeId(base + i);
                let b = NodeId(base + (i + 1) % self.transit_nodes);
                if a != b
                    && !topo
                        .links
                        .iter()
                        .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
                {
                    let lat = sample(&mut rng, self.transit_latency);
                    topo.add_link(a, b, lat);
                }
            }
        }
        // Inter-domain transit links: chain the domains.
        for d in 1..self.transit_domains {
            let a = NodeId((d - 1) * self.transit_nodes);
            let b = NodeId(d * self.transit_nodes);
            let lat = sample(&mut rng, self.transit_latency);
            topo.add_link(a, b, lat);
        }

        // Stub domains.
        let mut next = transit_total;
        for t in 0..transit_total {
            for _ in 0..self.stubs_per_transit {
                let first = next;
                for i in 0..self.stub_nodes {
                    let node = NodeId(next);
                    next += 1;
                    if i == 0 {
                        // Stub gateway uplinks to its transit node.
                        let lat = sample(&mut rng, self.stub_uplink_latency);
                        topo.add_link(node, NodeId(t), lat);
                    } else {
                        // Intra-stub: chain to the previous stub node, plus
                        // an occasional shortcut to the gateway.
                        let lat = sample(&mut rng, self.stub_latency);
                        topo.add_link(node, NodeId(next - 2), lat);
                        if i >= 2 && rng.gen_bool(0.4) {
                            let lat = sample(&mut rng, self.stub_latency);
                            topo.add_link(node, NodeId(first), lat);
                        }
                    }
                }
            }
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_63_nodes_like_the_paper() {
        let cfg = TransitStubConfig::default();
        assert_eq!(cfg.total_nodes(), 63);
        let topo = cfg.generate(42);
        assert_eq!(topo.node_count(), 63);
        assert!(topo.is_connected());
    }

    #[test]
    fn rtt_distribution_matches_paper_shape() {
        let topo = TransitStubConfig::default().generate(7);
        let (min, max, mean, sd) = topo.rtt_stats();
        // Paper: 24–184 ms RTT, mean 74 ms, sd 50 ms. Allow generous slack:
        // we need the same regime, not the same draw.
        assert!((15.0..=60.0).contains(&min), "min={min}");
        assert!((100.0..=200.0).contains(&max), "max={max}");
        assert!((50.0..=100.0).contains(&mean), "mean={mean}");
        assert!((10.0..=70.0).contains(&sd), "sd={sd}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TransitStubConfig::default();
        let a = cfg.generate(1);
        let b = cfg.generate(1);
        assert_eq!(a.links(), b.links());
        let c = cfg.generate(2);
        assert_ne!(a.links(), c.links());
    }

    #[test]
    fn dijkstra_simple_line() {
        let mut t = Topology::with_nodes(3);
        t.add_link(NodeId(0), NodeId(1), 10);
        t.add_link(NodeId(1), NodeId(2), 5);
        assert_eq!(t.latency_between(NodeId(0), NodeId(2)), Some(15));
        assert_eq!(t.latency_between(NodeId(2), NodeId(0)), Some(15));
        assert_eq!(t.latency_between(NodeId(0), NodeId(0)), Some(0));
    }

    #[test]
    fn dijkstra_prefers_shortcut() {
        let mut t = Topology::with_nodes(3);
        t.add_link(NodeId(0), NodeId(1), 10);
        t.add_link(NodeId(1), NodeId(2), 10);
        t.add_link(NodeId(0), NodeId(2), 5);
        assert_eq!(t.latency_between(NodeId(0), NodeId(2)), Some(5));
    }

    #[test]
    fn disconnected_detected() {
        let mut t = Topology::with_nodes(2);
        assert!(!t.is_connected());
        t.add_link(NodeId(0), NodeId(1), 1);
        assert!(t.is_connected());
        assert!(Topology::with_nodes(0).is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut t = Topology::with_nodes(2);
        t.add_link(NodeId(0), NodeId(0), 1);
    }

    #[test]
    fn larger_configs_scale() {
        let cfg = TransitStubConfig {
            transit_domains: 2,
            transit_nodes: 4,
            stubs_per_transit: 2,
            stub_nodes: 3,
            ..Default::default()
        };
        assert_eq!(cfg.total_nodes(), 8 + 8 * 2 * 3);
        assert!(cfg.generate(9).is_connected());
    }
}
