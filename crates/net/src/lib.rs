//! Network substrate for the PSGuard reproduction: GT-ITM-style
//! transit-stub topology generation and a deterministic discrete-event
//! simulator.
//!
//! The paper's evaluation ran the prototype on a LAN while *simulating*
//! wide-area delays drawn from a 63-node GT-ITM topology (link RTTs
//! 24–184 ms, mean 74 ms, sd 50 ms). This crate reproduces both halves:
//!
//! * [`TransitStubConfig`] generates topologies with that latency regime,
//!   deterministically from a seed;
//! * [`Simulator`] is the virtual clock + event queue the broker overlay
//!   runs on, making every experiment exactly reproducible;
//! * [`FaultPlan`] injects seeded link drops/duplicates/jitter, timed
//!   partitions, and node crash/restart windows into any simulation, so
//!   recovery machinery can be exercised deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod sim;
mod topology;

pub use fault::{DiskFaults, FaultPlan, FaultStats, LinkFaults, Transmit, Window};
pub use sim::{Delivery, SimTime, Simulator};
pub use topology::{Link, NodeId, Topology, TransitStubConfig};
