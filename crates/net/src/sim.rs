//! A deterministic discrete-event simulator.
//!
//! The paper ran its prototype on a LAN cluster while *simulating* the
//! wide-area delays produced by GT-ITM. This simulator plays the same
//! role: a virtual clock plus a priority queue of timestamped deliveries.
//! Protocol logic (brokers, publishers, subscribers) runs outside and
//! feeds events back in, so experiments are exactly reproducible from a
//! seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fault::FaultPlan;
use crate::topology::NodeId;

/// Simulated time in microseconds.
pub type SimTime = u64;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    dst: NodeId,
    msg: M,
}

impl<M: Eq> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, seq): seq breaks ties FIFO for determinism.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<M: Eq> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A delivery handed to protocol logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Simulated delivery time (µs).
    pub at: SimTime,
    /// Destination node.
    pub dst: NodeId,
    /// The message.
    pub msg: M,
}

/// The event queue and virtual clock.
///
/// # Example
///
/// ```
/// use psguard_net::{NodeId, Simulator};
///
/// let mut sim: Simulator<&str> = Simulator::new();
/// sim.schedule_in(5, NodeId(1), "world");
/// sim.schedule_in(1, NodeId(0), "hello");
/// let d1 = sim.next().unwrap();
/// assert_eq!((d1.at, d1.msg), (1, "hello"));
/// let d2 = sim.next().unwrap();
/// assert_eq!((d2.at, d2.msg), (5, "world"));
/// assert!(sim.next().is_none());
/// ```
#[derive(Debug)]
pub struct Simulator<M> {
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    now: SimTime,
    seq: u64,
    delivered: u64,
}

impl<M: Eq> Default for Simulator<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Eq> Simulator<M> {
    /// A simulator at time 0 with an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A simulator whose queue is pre-sized for `capacity` scheduled
    /// events, avoiding heap regrowth when the caller knows the load up
    /// front (e.g. an engine pre-scheduling a whole publication run).
    pub fn with_capacity(capacity: usize) -> Self {
        Simulator {
            queue: BinaryHeap::with_capacity(capacity),
            now: 0,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current virtual time (µs).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of deliveries popped so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Pending (not yet delivered) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a delivery at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, dst: NodeId, msg: M) {
        let at = at.max(self.now);
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            dst,
            msg,
        }));
    }

    /// Schedules a delivery `delay` µs from now.
    pub fn schedule_in(&mut self, delay: SimTime, dst: NodeId, msg: M) {
        self.schedule_at(self.now + delay, dst, msg);
    }

    /// Pops the next delivery, advancing the clock. Returns `None` when
    /// the queue is empty.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Delivery<M>> {
        let Reverse(s) = self.queue.pop()?;
        debug_assert!(s.at >= self.now, "time must not move backwards");
        self.now = s.at;
        self.delivered += 1;
        Some(Delivery {
            at: s.at,
            dst: s.dst,
            msg: s.msg,
        })
    }

    /// Pops the next delivery only if it occurs at or before `deadline`.
    pub fn next_before(&mut self, deadline: SimTime) -> Option<Delivery<M>> {
        match self.queue.peek() {
            Some(Reverse(s)) if s.at <= deadline => self.next(),
            _ => None,
        }
    }

    /// Sends `msg` from `src` to `dst` through a [`FaultPlan`]: the plan
    /// may drop the message, duplicate it, or add jitter on top of
    /// `base_delay`. Returns the number of copies actually scheduled
    /// (0, 1, or 2). Receiver-side crash windows are *not* checked here —
    /// protocol logic decides what a dead node does with arrivals.
    pub fn send_faulty(
        &mut self,
        plan: &mut FaultPlan,
        src: NodeId,
        dst: NodeId,
        base_delay: SimTime,
        msg: M,
    ) -> usize
    where
        M: Clone,
    {
        let outcome = plan.transmit(src, dst, self.now);
        match (outcome.first, outcome.dup) {
            // Common single-copy path: the message is moved, not cloned.
            (Some(j), None) | (None, Some(j)) => self.schedule_in(base_delay + j, dst, msg),
            (Some(j1), Some(j2)) => {
                self.schedule_in(base_delay + j1, dst, msg.clone());
                self.schedule_in(base_delay + j2, dst, msg);
            }
            (None, None) => {}
        }
        outcome.copies()
    }

    /// Runs `handler` on every delivery until the queue drains or
    /// `max_events` is hit; the handler can schedule more events.
    /// Returns the number of deliveries processed.
    pub fn run<F>(&mut self, max_events: u64, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, Delivery<M>),
    {
        let mut n = 0;
        while n < max_events {
            let Some(d) = self.next() else { break };
            n += 1;
            handler(self, d);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_tiebreak_at_equal_times() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(10, NodeId(0), 1);
        sim.schedule_at(10, NodeId(0), 2);
        sim.schedule_at(10, NodeId(0), 3);
        let order: Vec<u32> = std::iter::from_fn(|| sim.next().map(|d| d.msg)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(100, NodeId(0), 0);
        sim.schedule_at(50, NodeId(0), 1);
        sim.next();
        assert_eq!(sim.now(), 50);
        // Scheduling in the past clamps to now.
        sim.schedule_at(10, NodeId(0), 2);
        let d = sim.next().unwrap();
        assert_eq!(d.at, 50);
        assert_eq!(d.msg, 2);
    }

    #[test]
    fn run_with_feedback() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(0, NodeId(0), 3);
        // Each delivery of k>0 schedules k-1 after 10 µs.
        let n = sim.run(100, |sim, d| {
            if d.msg > 0 {
                sim.schedule_in(10, NodeId(0), d.msg - 1);
            }
        });
        assert_eq!(n, 4); // 3, 2, 1, 0
        assert_eq!(sim.now(), 30);
        assert_eq!(sim.delivered(), 4);
    }

    #[test]
    fn next_before_respects_deadline() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(100, NodeId(0), 1);
        assert!(sim.next_before(99).is_none());
        assert!(sim.next_before(100).is_some());
    }

    #[test]
    fn max_events_bounds_run() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(0, NodeId(0), 0);
        // Infinite feedback loop, bounded by max_events.
        let n = sim.run(10, |sim, _| sim.schedule_in(1, NodeId(0), 0));
        assert_eq!(n, 10);
        assert_eq!(sim.pending(), 1);
    }
}
