//! Seeded fault injection for the discrete-event simulator.
//!
//! A [`FaultPlan`] decides, deterministically from a seed, what happens to
//! every transmission the protocol layer attempts: per-link message drops,
//! duplicates, and delay jitter; timed link partitions; and node
//! crash/restart windows. The plan is *consulted*, never in control — the
//! protocol calls [`FaultPlan::transmit`] (usually through
//! [`Simulator::send_faulty`](crate::Simulator::send_faulty)) for each hop
//! and checks [`FaultPlan::is_up`] on receipt, so any experiment is exactly
//! reproducible from `(topology seed, fault seed)`.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sim::SimTime;
use crate::topology::NodeId;

/// Per-link fault probabilities and delay jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability that a transmission is silently dropped.
    pub drop_p: f64,
    /// Probability that a (non-dropped) transmission is duplicated.
    pub dup_p: f64,
    /// Maximum extra delay added to each copy, drawn uniformly from
    /// `0..=jitter_us`.
    pub jitter_us: u64,
}

impl LinkFaults {
    /// A perfectly reliable link.
    pub const NONE: LinkFaults = LinkFaults {
        drop_p: 0.0,
        dup_p: 0.0,
        jitter_us: 0,
    };

    /// A link that only drops, with the given probability.
    pub fn drops(p: f64) -> Self {
        LinkFaults {
            drop_p: p,
            ..Self::NONE
        }
    }

    fn is_none(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.jitter_us == 0
    }
}

/// Probabilities for the disk-fault axis consumed by durable-log code:
/// torn (partial) appends, short replay reads, and fsync failures. All
/// draws come from the owning [`FaultPlan`]'s seeded RNG, so disk chaos
/// is exactly as reproducible as link chaos.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaults {
    /// Probability that an append is torn: only a strict prefix of the
    /// record reaches the platter before the simulated crash.
    pub torn_write_p: f64,
    /// Probability that a replay read returns fewer bytes than asked
    /// (the caller must treat the read as failed and retry).
    pub short_read_p: f64,
    /// Probability that an fsync reports failure (data loss risk — the
    /// caller must treat the record as not durable).
    pub fsync_fail_p: f64,
}

impl DiskFaults {
    /// A perfectly reliable disk.
    pub const NONE: DiskFaults = DiskFaults {
        torn_write_p: 0.0,
        short_read_p: 0.0,
        fsync_fail_p: 0.0,
    };

    /// Whether every probability is zero (fast-path check).
    pub fn is_none(&self) -> bool {
        self.torn_write_p <= 0.0 && self.short_read_p <= 0.0 && self.fsync_fail_p <= 0.0
    }
}

/// A half-open simulated-time interval `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive) — for a crash window, the restart time.
    pub until: SimTime,
}

impl Window {
    /// Builds a window; `until ≤ from` yields an empty window.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        Window { from, until }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// Counters of what the plan did to the traffic that crossed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Transmissions attempted.
    pub attempts: u64,
    /// Copies actually scheduled (≥ attempts − drops, counting duplicates).
    pub copies: u64,
    /// Transmissions dropped by link loss.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Transmissions swallowed by an active partition.
    pub partitioned: u64,
    /// Appends torn mid-record by the disk axis.
    pub torn_writes: u64,
    /// Replay reads returned short by the disk axis.
    pub short_reads: u64,
    /// Fsyncs failed by the disk axis.
    pub fsync_failures: u64,
}

/// The outcome of one transmission attempt: extra delays (on top of the
/// link latency) for each copy that survives. Empty = the message is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Transmit {
    /// Jitter of the primary copy, when it survives.
    pub first: Option<SimTime>,
    /// Jitter of a duplicated second copy, when injected.
    pub dup: Option<SimTime>,
}

impl Transmit {
    /// Number of copies scheduled (0, 1, or 2).
    pub fn copies(&self) -> usize {
        self.first.is_some() as usize + self.dup.is_some() as usize
    }

    /// Iterates over the surviving copies' extra delays.
    pub fn iter(&self) -> impl Iterator<Item = SimTime> {
        self.first.into_iter().chain(self.dup)
    }
}

/// A deterministic, seeded fault model over links and nodes.
///
/// # Example
///
/// ```
/// use psguard_net::{FaultPlan, LinkFaults, NodeId, Window};
///
/// let mut plan = FaultPlan::new(7).with_default_link_faults(LinkFaults::drops(0.5));
/// plan.add_crash(NodeId(3), Window::new(100, 200));
/// assert!(plan.is_up(NodeId(3), 99));
/// assert!(!plan.is_up(NodeId(3), 150));
/// assert!(plan.is_up(NodeId(3), 200)); // restarted
/// let outcomes: usize = (0..1000)
///     .map(|_| plan.transmit(NodeId(0), NodeId(1), 0).copies())
///     .sum();
/// assert!(outcomes > 300 && outcomes < 700); // ≈ half survive
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    default_link: LinkFaults,
    links: HashMap<(u32, u32), LinkFaults>,
    partitions: Vec<(u32, u32, Window)>,
    crashes: Vec<(NodeId, Window)>,
    disk: DiskFaults,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultPlan {
    /// A fault-free plan (useful as the zero-overhead baseline).
    pub fn none(seed: u64) -> Self {
        Self::new(seed)
    }

    /// A plan with no faults configured yet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_link: LinkFaults::NONE,
            links: HashMap::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            disk: DiskFaults::NONE,
            rng: StdRng::seed_from_u64(seed ^ 0xfa_17_5e_ed),
            stats: FaultStats::default(),
        }
    }

    /// The seed this plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the fault profile applied to every link without an explicit
    /// override.
    pub fn with_default_link_faults(mut self, faults: LinkFaults) -> Self {
        self.default_link = faults;
        self
    }

    /// Sets the disk-fault profile consulted by durable-log appenders.
    pub fn with_disk_faults(mut self, disk: DiskFaults) -> Self {
        self.disk = disk;
        self
    }

    /// The configured disk-fault profile.
    pub fn disk_faults(&self) -> DiskFaults {
        self.disk
    }

    /// Overrides the fault profile of the directed link `src → dst`.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, faults: LinkFaults) {
        self.links.insert((src.0, dst.0), faults);
    }

    /// Cuts the (undirected) link `a — b` for the given window.
    pub fn add_partition(&mut self, a: NodeId, b: NodeId, window: Window) {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.partitions.push((lo, hi, window));
    }

    /// Crashes `node` for the given window; it restarts (empty-state) at
    /// `window.until`.
    pub fn add_crash(&mut self, node: NodeId, window: Window) {
        self.crashes.push((node, window));
    }

    /// The configured crash windows (for pre-scheduling restart events).
    pub fn crash_windows(&self) -> &[(NodeId, Window)] {
        &self.crashes
    }

    /// Whether `node` is alive at time `at`.
    pub fn is_up(&self, node: NodeId, at: SimTime) -> bool {
        !self
            .crashes
            .iter()
            .any(|(n, w)| *n == node && w.contains(at))
    }

    /// Whether the undirected link `a — b` is cut by a partition at `at`.
    pub fn link_cut(&self, a: NodeId, b: NodeId, at: SimTime) -> bool {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.partitions
            .iter()
            .any(|&(pa, pb, w)| pa == lo && pb == hi && w.contains(at))
    }

    fn link_faults(&self, src: NodeId, dst: NodeId) -> LinkFaults {
        self.links
            .get(&(src.0, dst.0))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Decides the fate of one `src → dst` transmission attempted at `at`.
    ///
    /// Returns the extra delays (jitter) of each surviving copy; an empty
    /// outcome means the message was dropped or partitioned away. Decisions
    /// are drawn from the plan's seeded RNG, so a deterministic caller
    /// (e.g. the simulator loop) gets a deterministic fault sequence.
    pub fn transmit(&mut self, src: NodeId, dst: NodeId, at: SimTime) -> Transmit {
        self.stats.attempts += 1;
        // Fast path for a plan with nothing configured (the zero-overhead
        // baseline): skip the partition scan and the per-link lookup.
        if self.partitions.is_empty() && self.links.is_empty() && self.default_link.is_none() {
            self.stats.copies += 1;
            return Transmit {
                first: Some(0),
                dup: None,
            };
        }
        if self.link_cut(src, dst, at) {
            self.stats.partitioned += 1;
            return Transmit::default();
        }
        let faults = self.link_faults(src, dst);
        if faults.is_none() {
            self.stats.copies += 1;
            return Transmit {
                first: Some(0),
                dup: None,
            };
        }
        if faults.drop_p > 0.0 && self.rng.gen_bool(faults.drop_p.clamp(0.0, 1.0)) {
            self.stats.dropped += 1;
            return Transmit::default();
        }
        let jitter = |rng: &mut StdRng| {
            if faults.jitter_us == 0 {
                0
            } else {
                rng.gen_range(0..=faults.jitter_us)
            }
        };
        let first = jitter(&mut self.rng);
        let dup = (faults.dup_p > 0.0 && self.rng.gen_bool(faults.dup_p.clamp(0.0, 1.0)))
            .then(|| jitter(&mut self.rng));
        self.stats.copies += 1 + dup.is_some() as u64;
        if dup.is_some() {
            self.stats.duplicated += 1;
        }
        Transmit {
            first: Some(first),
            dup,
        }
    }

    /// Decides whether an append of `len` bytes is torn. `Some(n)` means
    /// only the first `n` bytes (a strict prefix, possibly zero) reach
    /// the disk before the simulated crash; `None` means the append
    /// completes. Deterministic per plan seed.
    pub fn disk_torn_write(&mut self, len: usize) -> Option<usize> {
        if self.disk.torn_write_p <= 0.0 || len == 0 {
            return None;
        }
        if !self.rng.gen_bool(self.disk.torn_write_p.clamp(0.0, 1.0)) {
            return None;
        }
        self.stats.torn_writes += 1;
        Some(self.rng.gen_range(0..len))
    }

    /// Decides whether the next replay read comes back short (the caller
    /// treats the read as failed and retries later).
    pub fn disk_short_read(&mut self) -> bool {
        if self.disk.short_read_p <= 0.0 {
            return false;
        }
        let hit = self.rng.gen_bool(self.disk.short_read_p.clamp(0.0, 1.0));
        if hit {
            self.stats.short_reads += 1;
        }
        hit
    }

    /// Decides whether the next fsync reports failure.
    pub fn disk_fsync_fails(&mut self) -> bool {
        if self.disk.fsync_fail_p <= 0.0 {
            return false;
        }
        let hit = self.rng.gen_bool(self.disk.fsync_fail_p.clamp(0.0, 1.0));
        if hit {
            self.stats.fsync_failures += 1;
        }
        hit
    }

    /// What the plan has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Resets the counters (not the RNG stream).
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_passes_everything_unchanged() {
        let mut plan = FaultPlan::none(1);
        for _ in 0..100 {
            let t = plan.transmit(NodeId(0), NodeId(1), 5);
            assert_eq!(t.first, Some(0));
            assert_eq!(t.dup, None);
        }
        assert_eq!(plan.stats().dropped, 0);
        assert_eq!(plan.stats().copies, 100);
    }

    #[test]
    fn drops_are_seed_deterministic() {
        let run = |seed| {
            let mut plan = FaultPlan::new(seed).with_default_link_faults(LinkFaults::drops(0.3));
            (0..200)
                .map(|i| plan.transmit(NodeId(0), NodeId(1), i).copies())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn duplicate_probability_injects_second_copies() {
        let mut plan = FaultPlan::new(3).with_default_link_faults(LinkFaults {
            drop_p: 0.0,
            dup_p: 1.0,
            jitter_us: 0,
        });
        let t = plan.transmit(NodeId(0), NodeId(1), 0);
        assert_eq!(t.copies(), 2);
        assert_eq!(plan.stats().duplicated, 1);
    }

    #[test]
    fn jitter_bounded_and_applied() {
        let mut plan = FaultPlan::new(4).with_default_link_faults(LinkFaults {
            drop_p: 0.0,
            dup_p: 0.0,
            jitter_us: 50,
        });
        let mut seen_nonzero = false;
        for _ in 0..100 {
            let t = plan.transmit(NodeId(0), NodeId(1), 0);
            let j = t.first.unwrap();
            assert!(j <= 50);
            seen_nonzero |= j > 0;
        }
        assert!(seen_nonzero, "jitter must actually perturb delays");
    }

    #[test]
    fn partition_cuts_both_directions_within_window() {
        let mut plan = FaultPlan::new(5);
        plan.add_partition(NodeId(1), NodeId(2), Window::new(10, 20));
        assert_eq!(plan.transmit(NodeId(1), NodeId(2), 15).copies(), 0);
        assert_eq!(plan.transmit(NodeId(2), NodeId(1), 15).copies(), 0);
        assert_eq!(plan.transmit(NodeId(1), NodeId(2), 9).copies(), 1);
        assert_eq!(plan.transmit(NodeId(1), NodeId(2), 20).copies(), 1);
        assert_eq!(plan.stats().partitioned, 2);
    }

    #[test]
    fn crash_windows_and_restart() {
        let mut plan = FaultPlan::new(6);
        plan.add_crash(NodeId(4), Window::new(100, 300));
        plan.add_crash(NodeId(4), Window::new(500, 600));
        assert!(plan.is_up(NodeId(4), 0));
        assert!(!plan.is_up(NodeId(4), 100));
        assert!(!plan.is_up(NodeId(4), 299));
        assert!(plan.is_up(NodeId(4), 300));
        assert!(!plan.is_up(NodeId(4), 550));
        assert!(plan.is_up(NodeId(5), 150));
        assert_eq!(plan.crash_windows().len(), 2);
    }

    #[test]
    fn disk_faults_are_seed_deterministic_and_counted() {
        let run = |seed| {
            let mut plan = FaultPlan::new(seed).with_disk_faults(DiskFaults {
                torn_write_p: 0.3,
                short_read_p: 0.3,
                fsync_fail_p: 0.3,
            });
            let mut trace = Vec::new();
            for _ in 0..100 {
                trace.push((
                    plan.disk_torn_write(64),
                    plan.disk_short_read(),
                    plan.disk_fsync_fails(),
                ));
            }
            (trace, plan.stats())
        };
        let (t9, s9) = run(9);
        assert_eq!((t9.clone(), s9), run(9));
        assert_ne!(t9, run(10).0);
        assert!(s9.torn_writes > 0 && s9.short_reads > 0 && s9.fsync_failures > 0);
        assert_eq!(
            s9.torn_writes,
            t9.iter().filter(|t| t.0.is_some()).count() as u64
        );
    }

    #[test]
    fn torn_writes_are_strict_prefixes() {
        let mut plan = FaultPlan::new(11).with_disk_faults(DiskFaults {
            torn_write_p: 1.0,
            short_read_p: 0.0,
            fsync_fail_p: 0.0,
        });
        for len in [1usize, 2, 7, 4096] {
            let torn = plan.disk_torn_write(len).expect("p=1.0 must tear");
            assert!(torn < len, "torn prefix must be strict: {torn} vs {len}");
        }
        assert_eq!(plan.disk_torn_write(0), None, "empty append cannot tear");
    }

    #[test]
    fn no_disk_faults_never_fire() {
        let mut plan = FaultPlan::new(12);
        assert!(plan.disk_faults().is_none());
        for _ in 0..100 {
            assert_eq!(plan.disk_torn_write(128), None);
            assert!(!plan.disk_short_read());
            assert!(!plan.disk_fsync_fails());
        }
        let s = plan.stats();
        assert_eq!((s.torn_writes, s.short_reads, s.fsync_failures), (0, 0, 0));
    }

    #[test]
    fn per_link_overrides_beat_the_default() {
        let mut plan = FaultPlan::new(7).with_default_link_faults(LinkFaults::drops(1.0));
        plan.set_link(NodeId(0), NodeId(1), LinkFaults::NONE);
        // The overridden link never drops; the default link always does.
        for _ in 0..20 {
            assert_eq!(plan.transmit(NodeId(0), NodeId(1), 0).copies(), 1);
            assert_eq!(plan.transmit(NodeId(0), NodeId(2), 0).copies(), 0);
        }
    }
}
