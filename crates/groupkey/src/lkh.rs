//! A Logical Key Hierarchy (LKH) tree (Wallner/Wong-style group rekeying).
//!
//! LKH is the standard optimization for group key management: members sit
//! at the leaves of a binary tree; each node holds a key; a member knows
//! the keys on its root path. Rekeying after a membership change costs
//! `O(log n)` messages instead of `O(n)`. The subscriber-group baseline can
//! run with or without LKH ([`crate::RekeyStrategy`]), which is one of the
//! ablations in the bench harness.

use psguard_crypto::DeriveKey;

use crate::report::RekeyReport;

/// A binary LKH tree over a dynamic member set.
///
/// Members are identified by opaque `u64` ids. The tree is maintained as a
/// vector of leaves plus per-level node keys; removal swaps in the last
/// leaf (standard compact-array technique), so the tree stays balanced.
///
/// # Example
///
/// ```
/// use psguard_groupkey::LkhTree;
///
/// let mut tree = LkhTree::new(b"group-seed");
/// let r1 = tree.join(1);
/// let r2 = tree.join(2);
/// assert!(r2.keys_generated >= 1);
/// let gk_before = tree.group_key().clone();
/// tree.leave(1);
/// assert_ne!(tree.group_key(), &gk_before); // forward secrecy
/// ```
#[derive(Clone)]
pub struct LkhTree {
    seed: DeriveKey,
    version: u64,
    leaves: Vec<u64>,
    group_key: DeriveKey,
}

// Redacting Debug: both the seed and the live group key are secrets;
// `DeriveKey`'s Debug prints fingerprints only.
impl std::fmt::Debug for LkhTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LkhTree")
            .field("version", &self.version)
            .field("members", &self.leaves.len())
            .field("group_key", &self.group_key)
            .finish()
    }
}

impl LkhTree {
    /// Creates an empty tree with a deterministic key seed.
    pub fn new(seed: &[u8]) -> Self {
        let seed = DeriveKey::from_bytes(seed);
        let group_key = seed.kh(b"v0");
        LkhTree {
            seed,
            version: 0,
            leaves: Vec::new(),
            group_key,
        }
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Whether `member` belongs to the group.
    pub fn contains(&self, member: u64) -> bool {
        self.leaves.contains(&member)
    }

    /// The current group (data-encryption) key.
    pub fn group_key(&self) -> &DeriveKey {
        &self.group_key
    }

    /// Depth of the (conceptually complete) tree for the current size.
    pub fn depth(&self) -> u32 {
        let n = self.leaves.len().max(1) as u64;
        64 - (n - 1).leading_zeros()
    }

    /// Number of node keys the server stores: `2n − 1` for `n` members.
    pub fn server_key_count(&self) -> u64 {
        match self.leaves.len() as u64 {
            0 => 0,
            n => 2 * n - 1,
        }
    }

    /// Number of keys one member holds: its root path, `⌈log2 n⌉ + 1`.
    pub fn member_key_count(&self) -> u64 {
        self.depth() as u64 + 1
    }

    fn ratchet(&mut self) {
        self.version += 1;
        self.group_key = self.seed.kh(format!("v{}", self.version).as_bytes());
    }

    /// Adds a member, ratcheting every key on its root path (backward
    /// secrecy: the newcomer cannot read earlier traffic).
    ///
    /// Rekey cost: the path has `depth` node keys; each new node key is
    /// delivered encrypted under its two children (2 encryptions/messages
    /// per node), and the newcomer receives its full path.
    pub fn join(&mut self, member: u64) -> RekeyReport {
        if self.contains(member) {
            return RekeyReport::default();
        }
        self.leaves.push(member);
        self.ratchet();
        let d = self.depth() as u64;
        RekeyReport {
            messages_to_members: 2 * d,
            keys_to_newcomer: d + 1,
            keys_generated: d + 1,
            encryptions: 2 * d + (d + 1),
        }
    }

    /// Removes a member, ratcheting its root path (forward secrecy: the
    /// leaver cannot read later traffic). Returns `None` when the member
    /// was not in the group.
    pub fn leave(&mut self, member: u64) -> Option<RekeyReport> {
        let idx = self.leaves.iter().position(|&m| m == member)?;
        self.leaves.swap_remove(idx);
        self.ratchet();
        let d = self.depth() as u64;
        Some(RekeyReport {
            messages_to_members: 2 * d,
            keys_to_newcomer: 0,
            keys_generated: d + 1,
            encryptions: 2 * d,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_costs_grow_logarithmically() {
        let mut tree = LkhTree::new(b"s");
        let mut last_messages = 0;
        for m in 0..1024 {
            let r = tree.join(m);
            last_messages = r.total_messages();
        }
        assert_eq!(tree.len(), 1024);
        // depth of 1024-leaf tree = 10 → ~2*10 + 11 messages.
        assert!(last_messages <= 2 * 10 + 11, "messages={last_messages}");
        assert_eq!(tree.member_key_count(), 11);
        assert_eq!(tree.server_key_count(), 2 * 1024 - 1);
    }

    #[test]
    fn duplicate_join_is_free() {
        let mut tree = LkhTree::new(b"s");
        tree.join(1);
        let r = tree.join(1);
        assert_eq!(r.total_messages(), 0);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn leave_changes_group_key() {
        let mut tree = LkhTree::new(b"s");
        tree.join(1);
        tree.join(2);
        let before = tree.group_key().clone();
        let r = tree.leave(2).unwrap();
        assert!(r.keys_generated > 0);
        assert_ne!(tree.group_key(), &before);
        assert!(tree.leave(99).is_none());
    }

    #[test]
    fn join_changes_group_key() {
        let mut tree = LkhTree::new(b"s");
        tree.join(1);
        let before = tree.group_key().clone();
        tree.join(2);
        assert_ne!(tree.group_key(), &before);
    }

    #[test]
    fn independent_groups_have_independent_keys() {
        let mut a = LkhTree::new(b"a");
        let mut b = LkhTree::new(b"b");
        a.join(1);
        b.join(1);
        assert_ne!(a.group_key(), b.group_key());
    }

    #[test]
    fn empty_tree_counts() {
        let tree = LkhTree::new(b"s");
        assert!(tree.is_empty());
        assert_eq!(tree.server_key_count(), 0);
    }
}
