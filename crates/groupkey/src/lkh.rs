//! A Logical Key Hierarchy (LKH) tree (Wallner/Wong-style group rekeying).
//!
//! LKH is the standard optimization for group key management: members sit
//! at the leaves of a binary tree; each node holds a key; a member knows
//! the keys on its root path. Rekeying after a membership change costs
//! `O(log n)` messages instead of `O(n)`. The subscriber-group baseline can
//! run with or without LKH ([`crate::RekeyStrategy`]), which is one of the
//! ablations in the bench harness.
//!
//! The tree is fully materialized (every node key lives in a
//! [`crate::batch::NodeKeys`] arena) and every key is a *pure function of
//! the leaf array*: leaf keys derive from the seed and member id, and each
//! internal key is `PRF(left ‖ right)`. That purity is what makes batched
//! rekeying auditable — replaying the same membership changes one at a
//! time ([`LkhTree::join`]/[`LkhTree::leave`]) or staging them all and
//! flushing once ([`LkhTree::stage_join`]/[`LkhTree::stage_leave`] +
//! [`LkhTree::flush`]) provably lands on the identical tree, with the
//! batch paying only the union of the dirty root paths.
//!
//! Forward/backward secrecy: a departed member's slot is vacated (or
//! refilled by the moved tail member's leaf key, which the leaver never
//! held), so every refreshed ancestor derives from keys outside the
//! leaver's possession; a newcomer's leaf only enters keys derived *after*
//! its join, so earlier traffic keys are not reachable from its path.

use std::collections::{BTreeSet, HashMap};

use psguard_crypto::DeriveKey;

use crate::batch::NodeKeys;
use crate::report::RekeyReport;

/// A binary LKH tree over a dynamic member set.
///
/// Members are identified by opaque `u64` ids and occupy leaf slots in
/// join order; removal swaps in the last leaf (standard compact-array
/// technique), so the occupied slots stay contiguous. The slot capacity
/// is the high-water `next_power_of_two` of the member count — it never
/// shrinks while members remain, so a revocation storm refreshes paths
/// of a stable depth instead of rebuilding the tree, and it resets only
/// on the explicit empty-tree transition.
///
/// # Example
///
/// ```
/// use psguard_groupkey::LkhTree;
///
/// let mut tree = LkhTree::new(b"group-seed");
/// let r1 = tree.join(1);
/// let r2 = tree.join(2);
/// assert!(r2.keys_generated >= 1);
/// let gk_before = tree.group_key().clone();
/// tree.leave(1);
/// assert_ne!(tree.group_key(), &gk_before); // forward secrecy
/// ```
#[derive(Clone)]
pub struct LkhTree {
    seed: DeriveKey,
    version: u64,
    /// Member ids by leaf slot (slots `0..len` occupied).
    leaves: Vec<u64>,
    /// Member id → leaf slot (O(1) membership for storm-sized groups).
    slot_of: HashMap<u64, usize>,
    /// Per-node subtree occupancy, heap-indexed like the arena.
    occ: Vec<u32>,
    nodes: NodeKeys,
    /// Leaf-slot capacity: 0 when empty, else a power of two.
    cap: usize,
    /// Group-key sentinel for the empty tree.
    empty_group: DeriveKey,
    /// Staged-but-unflushed dirty leaf slots.
    dirty: BTreeSet<usize>,
    /// A capacity grow relocated the arena: refresh every occupied node.
    rebuild: bool,
    staged_joins: u64,
    /// Path keys owed to staged joiners, charged at stage time (the
    /// capacity the naive per-op path would have charged; any later
    /// in-batch depth growth reaches them via the rebuild broadcast).
    staged_newcomer_keys: u64,
}

// Redacting Debug: the seed and every arena node are secrets; print
// shape and staging state only (`DeriveKey`'s Debug prints fingerprints).
impl std::fmt::Debug for LkhTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LkhTree")
            .field("version", &self.version)
            .field("members", &self.leaves.len())
            .field("cap", &self.cap)
            .field("staged", &self.dirty.len())
            .finish_non_exhaustive()
    }
}

impl LkhTree {
    /// Creates an empty tree with a deterministic key seed.
    pub fn new(seed: &[u8]) -> Self {
        let seed = DeriveKey::from_bytes(seed);
        let empty_group = seed.kh(b"empty-group");
        let nodes = NodeKeys::new(&seed);
        LkhTree {
            seed,
            version: 0,
            leaves: Vec::new(),
            slot_of: HashMap::new(),
            occ: Vec::new(),
            nodes,
            cap: 0,
            empty_group,
            dirty: BTreeSet::new(),
            rebuild: false,
            staged_joins: 0,
            staged_newcomer_keys: 0,
        }
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Whether `member` belongs to the group.
    pub fn contains(&self, member: u64) -> bool {
        self.slot_of.contains_key(&member)
    }

    /// Member ids in leaf-slot order.
    pub fn members(&self) -> &[u64] {
        &self.leaves
    }

    /// The current group (data-encryption) key: the root of the arena,
    /// or a seed-bound sentinel while the group is empty. Meaningful at
    /// flush boundaries — staged-but-unflushed changes are not yet
    /// reflected.
    pub fn group_key(&self) -> &DeriveKey {
        if self.leaves.is_empty() {
            &self.empty_group
        } else {
            self.nodes.key(1)
        }
    }

    /// Depth of the materialized tree (leaf slots at `2^depth`).
    pub fn depth(&self) -> u32 {
        if self.cap == 0 {
            0
        } else {
            self.cap.trailing_zeros()
        }
    }

    /// Number of node keys the server stores: `2n − 1` for `n` members
    /// (empty subtrees collapse to per-height keys and are not counted).
    pub fn server_key_count(&self) -> u64 {
        match self.leaves.len() as u64 {
            0 => 0,
            n => 2 * n - 1,
        }
    }

    /// Number of keys one member holds: its root path, `depth + 1`.
    pub fn member_key_count(&self) -> u64 {
        self.depth() as u64 + 1
    }

    /// The root-path keys `member` holds, leaf first, or `None` when it
    /// is not in the group. Staged changes must be flushed first for the
    /// path to be current.
    pub fn member_keys(&self, member: u64) -> Option<Vec<DeriveKey>> {
        let &slot = self.slot_of.get(&member)?;
        let mut v = self.cap + slot;
        let mut keys = vec![self.nodes.key(v).clone()];
        while v > 1 {
            v /= 2;
            keys.push(self.nodes.key(v).clone());
        }
        Some(keys)
    }

    /// Whether staged membership changes await a [`LkhTree::flush`].
    pub fn has_pending(&self) -> bool {
        !self.dirty.is_empty() || self.rebuild
    }

    /// Joins staged since the last flush (the pending newcomer count).
    pub(crate) fn staged_joins(&self) -> u64 {
        self.staged_joins
    }

    fn leaf_key(&self, member: u64) -> DeriveKey {
        let mut label = [0u8; 13];
        label[..5].copy_from_slice(b"leaf:");
        label[5..].copy_from_slice(&member.to_be_bytes());
        self.seed.kh(&label)
    }

    fn ensure_cap(&mut self, need: usize) {
        if need <= self.cap {
            return;
        }
        let new_cap = need.next_power_of_two();
        self.nodes.grow(self.cap, new_cap, self.leaves.len());
        self.cap = new_cap;
        let mut occ = vec![0u32; 2 * new_cap];
        for i in 0..self.leaves.len() {
            occ[new_cap + i] = 1;
        }
        for v in (1..new_cap).rev() {
            occ[v] = occ[2 * v] + occ[2 * v + 1];
        }
        self.occ = occ;
        self.rebuild = true;
    }

    fn occ_path(&mut self, slot: usize, delta: i32) {
        let mut v = self.cap + slot;
        loop {
            self.occ[v] = self.occ[v].wrapping_add_signed(delta);
            if v == 1 {
                break;
            }
            v /= 2;
        }
    }

    /// Stages a join without refreshing any internal key: the member
    /// takes the next leaf slot and its ancestors are marked dirty.
    /// Returns `false` (a no-op) when the member is already present.
    pub fn stage_join(&mut self, member: u64) -> bool {
        if self.slot_of.contains_key(&member) {
            return false;
        }
        let slot = self.leaves.len();
        self.ensure_cap(slot + 1);
        self.leaves.push(member);
        self.slot_of.insert(member, slot);
        let key = self.leaf_key(member);
        self.nodes.set_leaf(self.cap, slot, key);
        self.occ_path(slot, 1);
        self.dirty.insert(slot);
        self.staged_joins += 1;
        self.staged_newcomer_keys += self.member_key_count();
        true
    }

    /// Stages a leave without refreshing any internal key: the vacated
    /// slot is refilled by the tail leaf (swap-remove), and both touched
    /// slots' ancestors are marked dirty. Returns `false` when the
    /// member is not in the group.
    pub fn stage_leave(&mut self, member: u64) -> bool {
        let Some(idx) = self.slot_of.remove(&member) else {
            return false;
        };
        let last = self.leaves.len() - 1;
        if idx != last {
            let moved = self.leaves[last];
            self.leaves.swap_remove(idx);
            self.slot_of.insert(moved, idx);
            self.nodes.move_leaf(self.cap, last, idx);
            self.dirty.insert(idx);
        } else {
            self.leaves.pop();
        }
        self.nodes.clear_leaf(self.cap, last);
        self.occ_path(last, -1);
        self.dirty.insert(last);
        true
    }

    /// Settles all staged changes with one minimal update: the dirty
    /// leaf slots' ancestor paths are unioned and every node in the
    /// union is refreshed exactly once, bottom-up, through the arena's
    /// reusable PRF context. The report charges the union — for a burst
    /// of `b` leaves at depth `d` that is `|∪ paths|` node refreshes
    /// instead of the naive `b·d` (Chan et al.).
    ///
    /// Leaving the last member is the explicit empty-tree transition:
    /// the arena and capacity reset and the group key reverts to the
    /// seed-bound empty sentinel.
    pub fn flush(&mut self) -> RekeyReport {
        if self.dirty.is_empty() && !self.rebuild {
            return RekeyReport::default();
        }
        self.version += 1;
        if self.leaves.is_empty() {
            self.cap = 0;
            self.occ = Vec::new();
            self.nodes.reset();
            self.dirty.clear();
            self.rebuild = false;
            self.staged_joins = 0;
            self.staged_newcomer_keys = 0;
            return RekeyReport::default();
        }
        let mut report = RekeyReport {
            // Joiner leaf keys were derived at stage time; charge them here.
            keys_generated: self.staged_joins,
            ..RekeyReport::default()
        };
        let mut internal: BTreeSet<usize> = BTreeSet::new();
        if self.rebuild {
            for v in 1..self.cap {
                if self.occ[v] > 0 {
                    internal.insert(v);
                }
            }
        } else {
            for &slot in &self.dirty {
                let mut v = (self.cap + slot) / 2;
                while v >= 1 {
                    if !internal.insert(v) {
                        break;
                    }
                    if v == 1 {
                        break;
                    }
                    v /= 2;
                }
            }
        }
        // Descending heap order is deepest-first: children refresh
        // before the parents that absorb their new keys.
        for &v in internal.iter().rev() {
            let fanout = self.nodes.refresh_internal(v, self.cap, &self.occ);
            report.keys_generated += 1;
            report.messages_to_members += fanout;
            report.encryptions += fanout;
        }
        let newcomer_keys = self.staged_newcomer_keys;
        report.keys_to_newcomer += newcomer_keys;
        report.encryptions += newcomer_keys;
        self.dirty.clear();
        self.rebuild = false;
        self.staged_joins = 0;
        self.staged_newcomer_keys = 0;
        report
    }

    /// Adds a member and immediately refreshes its root path (backward
    /// secrecy: the newcomer cannot read earlier traffic). This is the
    /// naive per-change path: equivalent to [`LkhTree::stage_join`]
    /// followed by [`LkhTree::flush`] — including any other staged
    /// changes, which flush along with it.
    pub fn join(&mut self, member: u64) -> RekeyReport {
        if self.stage_join(member) {
            self.flush()
        } else {
            RekeyReport::default()
        }
    }

    /// Removes a member and immediately refreshes the affected paths
    /// (forward secrecy: the leaver cannot read later traffic). Returns
    /// `None` when the member was not in the group. Like
    /// [`LkhTree::join`], this flushes any other staged changes too.
    pub fn leave(&mut self, member: u64) -> Option<RekeyReport> {
        if self.stage_leave(member) {
            Some(self.flush())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_costs_grow_logarithmically() {
        let mut tree = LkhTree::new(b"s");
        let mut last_messages = 0;
        for m in 0..1024 {
            let r = tree.join(m);
            last_messages = r.total_messages();
        }
        assert_eq!(tree.len(), 1024);
        // depth of 1024-leaf tree = 10 → ~2*10 + 11 messages.
        assert!(last_messages <= 2 * 10 + 11, "messages={last_messages}");
        assert_eq!(tree.member_key_count(), 11);
        assert_eq!(tree.server_key_count(), 2 * 1024 - 1);
    }

    #[test]
    fn duplicate_join_is_free() {
        let mut tree = LkhTree::new(b"s");
        tree.join(1);
        let r = tree.join(1);
        assert_eq!(r.total_messages(), 0);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn leave_changes_group_key() {
        let mut tree = LkhTree::new(b"s");
        tree.join(1);
        tree.join(2);
        let before = tree.group_key().clone();
        let r = tree.leave(2).unwrap();
        assert!(r.keys_generated > 0);
        assert_ne!(tree.group_key(), &before);
        assert!(tree.leave(99).is_none());
    }

    #[test]
    fn join_changes_group_key() {
        let mut tree = LkhTree::new(b"s");
        tree.join(1);
        let before = tree.group_key().clone();
        tree.join(2);
        assert_ne!(tree.group_key(), &before);
    }

    #[test]
    fn independent_groups_have_independent_keys() {
        let mut a = LkhTree::new(b"a");
        let mut b = LkhTree::new(b"b");
        a.join(1);
        b.join(1);
        assert_ne!(a.group_key(), b.group_key());
    }

    #[test]
    fn empty_tree_counts() {
        let tree = LkhTree::new(b"s");
        assert!(tree.is_empty());
        assert_eq!(tree.server_key_count(), 0);
    }

    #[test]
    fn last_member_leave_is_explicit_empty_transition() {
        // The satellite fix: leaving the final member must not strand a
        // degenerate one-leaf arena. The tree resets to the same state
        // as a fresh one and can be repopulated.
        let mut tree = LkhTree::new(b"s");
        let fresh_key = tree.group_key().clone();
        tree.join(7);
        let populated = tree.group_key().clone();
        assert_ne!(populated, fresh_key);
        let r = tree.leave(7).expect("member present");
        assert_eq!(r.total_messages(), 0, "no members left to message");
        assert!(tree.is_empty());
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.server_key_count(), 0);
        assert_eq!(tree.group_key(), &fresh_key, "empty sentinel restored");
        // Repopulating deterministically reproduces the same tree.
        tree.join(7);
        assert_eq!(tree.group_key(), &populated);
    }

    #[test]
    fn member_path_has_depth_plus_one_keys() {
        let mut tree = LkhTree::new(b"s");
        for m in 0..8 {
            tree.join(m);
        }
        let path = tree.member_keys(3).expect("member present");
        assert_eq!(path.len() as u64, tree.member_key_count());
        assert_eq!(path.last(), Some(tree.group_key()));
        assert!(tree.member_keys(99).is_none());
    }

    #[test]
    fn staged_ops_flush_once() {
        let mut naive = LkhTree::new(b"s");
        let mut batched = LkhTree::new(b"s");
        for m in 0..64 {
            naive.join(m);
            batched.join(m);
        }
        let mut naive_total = RekeyReport::default();
        for m in 40..56 {
            if let Some(r) = naive.leave(m) {
                naive_total.merge(&r);
            }
        }
        for m in 40..56 {
            assert!(batched.stage_leave(m));
        }
        assert!(batched.has_pending());
        let batched_total = batched.flush();
        assert!(!batched.has_pending());
        // Identical trees, strictly cheaper batch.
        assert_eq!(naive.group_key(), batched.group_key());
        assert_eq!(naive.members(), batched.members());
        assert!(
            batched_total.total_messages() < naive_total.total_messages(),
            "batched={} naive={}",
            batched_total.total_messages(),
            naive_total.total_messages()
        );
        assert!(batched_total.keys_generated < naive_total.keys_generated);
    }
}
