//! The subscriber-group key-management baseline (§3.2 of the paper,
//! following Opyrchal–Prakash).
//!
//! Group keys are bound to *sets of subscribers*. For range subscriptions
//! on a numeric attribute, the active subscriptions partition the value
//! space into elementary segments, each with its own group (the example in
//! §3.2.1: S1 on (20,30) and S2 on (25,40) yield G1 = {S1}, G2 = {S1,S2},
//! G3 = {S2}). Every join splits segments and forces key updates to every
//! member of every affected group — the cost PSGuard eliminates.
//!
//! Membership changes can be applied eagerly ([`SubscriberGroupManager::join`],
//! [`SubscriberGroupManager::leave_immediate`]) or queued in the per-epoch
//! [`RekeyBatch`] ([`SubscriberGroupManager::queue_join`],
//! [`SubscriberGroupManager::leave_lazy`]) and settled at the epoch flush.
//! [`SubscriberGroupManager::epoch_rekey`] settles the whole batch with one
//! dirty-path-union LKH update per touched segment;
//! [`SubscriberGroupManager::epoch_rekey_naive`] replays the identical
//! structural changes but rekeys after every single change — the retained
//! baseline the `rekey_storm` bench and the batched-equivalence proptest
//! measure against.

use std::collections::{BTreeMap, BTreeSet};

use psguard_crypto::DeriveKey;
use psguard_model::IntRange;

use crate::batch::{QueuedOp, RekeyBatch};
use crate::lkh::LkhTree;
use crate::report::RekeyReport;

/// How rekey messages are delivered within one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RekeyStrategy {
    /// Unicast the new group key to each member (`O(n)` messages).
    Direct,
    /// LKH broadcast (`O(log n)` messages) — the classic optimization.
    Lkh,
}

/// A subscriber identifier.
pub type SubscriberId = u64;

/// When a membership change's rekey cost is settled: after every
/// operation (the naive baseline) or once per batch flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushMode {
    PerOp,
    Batched,
}

#[derive(Clone)]
struct Segment {
    range: IntRange,
    members: BTreeSet<SubscriberId>,
    tree: LkhTree,
}

// Redacting Debug: the LKH tree holds live group keys; print topology only.
impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("range", &self.range)
            .field("members", &self.members.len())
            .field("tree", &self.tree)
            .finish()
    }
}

impl Segment {
    fn new(seed: &DeriveKey, counter: u64, range: IntRange) -> Self {
        Segment {
            range,
            members: BTreeSet::new(),
            tree: LkhTree::new(&[seed.as_bytes().as_slice(), &counter.to_be_bytes()].concat()),
        }
    }
}

/// The baseline group-key manager for one numeric attribute.
///
/// # Example
///
/// ```
/// use psguard_groupkey::{RekeyStrategy, SubscriberGroupManager};
/// use psguard_model::IntRange;
///
/// let mut mgr = SubscriberGroupManager::new(
///     IntRange::new(0, 99).unwrap(),
///     RekeyStrategy::Direct,
///     b"seed",
/// );
/// mgr.join(1, IntRange::new(20, 30).unwrap());
/// let report = mgr.join(2, IntRange::new(25, 40).unwrap());
/// assert!(report.total_messages() > 0); // overlapping join forces rekeys
/// assert_eq!(mgr.segment_count(), 3);   // G1, G2, G3 from the paper
/// ```
#[derive(Clone)]
pub struct SubscriberGroupManager {
    range: IntRange,
    strategy: RekeyStrategy,
    master: DeriveKey,
    counter: u64,
    subs: BTreeMap<SubscriberId, IntRange>,
    pending: RekeyBatch,
    segments: Vec<Segment>,
}

// Redacting Debug: the master seed generates every segment key; only shape
// and membership counts are printed.
impl std::fmt::Debug for SubscriberGroupManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriberGroupManager")
            .field("range", &self.range)
            .field("strategy", &self.strategy)
            .field("master", &self.master)
            .field("subscribers", &self.subs.len())
            .field("pending", &self.pending)
            .field("segments", &self.segments)
            .finish()
    }
}

impl SubscriberGroupManager {
    /// Creates a manager over the attribute range.
    pub fn new(range: IntRange, strategy: RekeyStrategy, seed: &[u8]) -> Self {
        SubscriberGroupManager {
            range,
            strategy,
            master: DeriveKey::from_bytes(seed),
            counter: 0,
            subs: BTreeMap::new(),
            pending: RekeyBatch::default(),
            segments: Vec::new(),
        }
    }

    /// Number of active subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subs.len()
    }

    /// Number of elementary segments (groups).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of membership changes queued for the next epoch flush.
    pub fn pending_changes(&self) -> usize {
        self.pending.len()
    }

    /// Keys the server must store (all group keys; LKH trees count their
    /// internal nodes too).
    pub fn server_key_count(&self) -> u64 {
        match self.strategy {
            RekeyStrategy::Direct => self.segments.len() as u64,
            RekeyStrategy::Lkh => self
                .segments
                .iter()
                .map(|s| s.tree.server_key_count())
                .sum(),
        }
    }

    /// Keys one subscriber holds: one (or a path, under LKH) per segment
    /// overlapping its range. This is the quantity in Figure 3.
    pub fn keys_per_subscriber(&self, s: SubscriberId) -> u64 {
        self.segments
            .iter()
            .filter(|seg| seg.members.contains(&s))
            .map(|seg| match self.strategy {
                RekeyStrategy::Direct => 1,
                RekeyStrategy::Lkh => seg.tree.member_key_count(),
            })
            .sum()
    }

    /// Average keys per active subscriber.
    pub fn avg_keys_per_subscriber(&self) -> f64 {
        if self.subs.is_empty() {
            return 0.0;
        }
        let total: u64 = self.subs.keys().map(|&s| self.keys_per_subscriber(s)).sum();
        total as f64 / self.subs.len() as f64
    }

    /// Keys a publisher must hold to encrypt for any event value: one per
    /// group (Figure 4).
    pub fn publisher_key_count(&self) -> u64 {
        self.segments.len() as u64
    }

    /// The group key used to encrypt an event carrying value `v`, or
    /// `None` when no subscriber covers `v` (nothing to deliver).
    pub fn group_key_for_value(&self, v: i64) -> Option<&DeriveKey> {
        self.segments
            .iter()
            .find(|seg| seg.range.contains(v))
            .map(|seg| seg.tree.group_key())
    }

    /// The root-path keys subscriber `s` holds across all its segments
    /// (leaf-first per segment, segments in range order) — the full key
    /// state the equivalence proptests compare between the batched and
    /// naive rekey paths.
    pub fn subscriber_keys(&self, s: SubscriberId) -> Vec<DeriveKey> {
        let mut keys = Vec::new();
        for seg in &self.segments {
            if seg.members.contains(&s) {
                if let Some(path) = seg.tree.member_keys(s) {
                    keys.extend(path);
                }
            }
        }
        keys
    }

    /// Whether subscriber `s` can decrypt an event carrying value `v`.
    pub fn can_decrypt(&self, s: SubscriberId, v: i64) -> bool {
        self.segments
            .iter()
            .any(|seg| seg.range.contains(v) && seg.members.contains(&s))
    }

    fn fresh_segment(&mut self, range: IntRange) -> Segment {
        self.counter += 1;
        Segment::new(&self.master, self.counter, range)
    }

    /// Settles a segment's staged tree changes, costing per strategy.
    /// `newcomers` is the count of genuinely new subscribers among the
    /// staged joins (segment splits re-stage existing members, which are
    /// not newcomers under Direct accounting).
    fn settle(strategy: RekeyStrategy, seg: &mut Segment, newcomers: u64) -> RekeyReport {
        if !seg.tree.has_pending() {
            return RekeyReport::default();
        }
        match strategy {
            RekeyStrategy::Lkh => seg.tree.flush(),
            RekeyStrategy::Direct => {
                // The tree still settles (keys must stay consistent for
                // decryption probes); the *charged* cost is the direct
                // model: one fresh group key, unicast to every member.
                let _ = seg.tree.flush();
                let n = seg.members.len() as u64;
                RekeyReport {
                    messages_to_members: n.saturating_sub(newcomers),
                    keys_to_newcomer: newcomers,
                    keys_generated: 1,
                    encryptions: n,
                }
            }
        }
    }

    /// Splits any segment straddling `boundary` (values < boundary vs ≥).
    /// Both halves keep the member set; both must be rekeyed (members can
    /// otherwise decrypt across the split), which the returned report
    /// charges.
    fn split_at(&mut self, boundary: i64, mode: FlushMode) -> RekeyReport {
        let mut report = RekeyReport::default();
        let mut i = 0;
        while i < self.segments.len() {
            let seg_range = self.segments[i].range;
            if seg_range.lo() < boundary && boundary <= seg_range.hi() {
                // lo < boundary ≤ hi, so both halves are non-empty; if the
                // constructor disagrees, leave the segment unsplit.
                let (Some(left_r), Some(right_r)) = (
                    IntRange::new(seg_range.lo(), boundary - 1),
                    IntRange::new(boundary, seg_range.hi()),
                ) else {
                    i += 1;
                    continue;
                };
                let members = self.segments[i].members.clone();
                let mut left = self.fresh_segment(left_r);
                let mut right = self.fresh_segment(right_r);
                for &m in &members {
                    left.tree.stage_join(m);
                    right.tree.stage_join(m);
                }
                left.members = members.clone();
                right.members = members;
                if mode == FlushMode::PerOp {
                    report.merge(&Self::settle(self.strategy, &mut left, 0));
                    report.merge(&Self::settle(self.strategy, &mut right, 0));
                }
                report.keys_generated += 2;
                self.segments.splice(i..=i, [left, right]);
                i += 2;
            } else {
                i += 1;
            }
        }
        report
    }

    /// The join body shared by the eager path and the batch replay.
    fn apply_join(&mut self, s: SubscriberId, range: IntRange, mode: FlushMode) -> RekeyReport {
        let mut report = RekeyReport::default();
        if self.subs.contains_key(&s) || self.pending.is_departed(s) {
            // Re-subscription (possibly after a lazy leave): evict the old
            // range first so membership reflects exactly the latest
            // subscription.
            report.merge(&self.apply_leave(s, mode));
        }
        let Some(range) = range.clamp_to(&self.range) else {
            return report;
        };
        self.subs.insert(s, range);
        self.pending.cancel_leave(s);

        report.merge(&self.split_at(range.lo(), mode));
        report.merge(&self.split_at(range.hi() + 1, mode));

        // Walk segments inside the range, adding the newcomer; collect gaps.
        let mut covered: Vec<IntRange> = Vec::new();
        for i in 0..self.segments.len() {
            let seg_range = self.segments[i].range;
            if range.covers(&seg_range) {
                self.segments[i].members.insert(s);
                self.segments[i].tree.stage_join(s);
                if mode == FlushMode::PerOp {
                    report.merge(&Self::settle(self.strategy, &mut self.segments[i], 1));
                }
                covered.push(seg_range);
            }
        }

        // Create singleton segments for the uncovered gaps.
        covered.sort_by_key(|r| r.lo());
        let mut cursor = range.lo();
        let mut gaps = Vec::new();
        for c in &covered {
            if c.lo() > cursor {
                // cursor ≤ c.lo() - 1 here, so the gap range is valid.
                gaps.extend(IntRange::new(cursor, c.lo() - 1));
            }
            cursor = c.hi() + 1;
        }
        if cursor <= range.hi() {
            gaps.extend(IntRange::new(cursor, range.hi()));
        }
        for gap in gaps {
            let mut seg = self.fresh_segment(gap);
            seg.members.insert(s);
            seg.tree.stage_join(s);
            report.keys_generated += 1;
            if mode == FlushMode::PerOp {
                report.merge(&Self::settle(self.strategy, &mut seg, 1));
            }
            self.segments.push(seg);
        }
        self.segments.sort_by_key(|seg| seg.range.lo());
        report
    }

    /// The eviction body shared by the eager path and the batch replay.
    fn apply_leave(&mut self, s: SubscriberId, mode: FlushMode) -> RekeyReport {
        self.subs.remove(&s);
        self.pending.cancel(s);
        let mut report = RekeyReport::default();
        for i in 0..self.segments.len() {
            if self.segments[i].members.remove(&s) {
                self.segments[i].tree.stage_leave(s);
                if mode == FlushMode::PerOp {
                    report.merge(&Self::settle(self.strategy, &mut self.segments[i], 0));
                }
            }
        }
        self.segments.retain(|seg| !seg.members.is_empty());
        report
    }

    /// A subscriber joins with a range (replacing any previous
    /// subscription it held). Returns the full rekey cost: the paper's
    /// `3·NS_overlap`-message phenomenon emerges from segment splitting
    /// plus per-segment rekeys plus key delivery to the newcomer.
    pub fn join(&mut self, s: SubscriberId, range: IntRange) -> RekeyReport {
        self.apply_join(s, range, FlushMode::PerOp)
    }

    /// Queues a join for the next epoch flush instead of applying it
    /// eagerly: the subscriber gains no decryption ability until the
    /// epoch boundary settles the batch (backward secrecy holds over the
    /// whole window). Queued ops replay in arrival order at the flush.
    pub fn queue_join(&mut self, s: SubscriberId, range: IntRange) {
        self.pending.push_join(s, range);
    }

    /// Marks a subscriber as departed (lazy revocation: the subscriber
    /// keeps decrypting until [`SubscriberGroupManager::epoch_rekey`]
    /// settles the pending batch).
    pub fn leave_lazy(&mut self, s: SubscriberId) {
        if self.subs.remove(&s).is_some() {
            self.pending.push_leave(s);
        }
    }

    /// Immediately evicts a subscriber, rekeying every group it belonged
    /// to (eager revocation). Any ops it had queued are cancelled.
    pub fn leave_immediate(&mut self, s: SubscriberId) -> RekeyReport {
        self.apply_leave(s, FlushMode::PerOp)
    }

    /// Replays the pending batch, settling rekey costs per `mode`.
    fn flush_pending(&mut self, mode: FlushMode) -> RekeyReport {
        let ops = self.pending.take_ops();
        let mut report = RekeyReport::default();
        for op in ops {
            match op {
                QueuedOp::Join { subscriber, range } => {
                    report.merge(&self.apply_join(subscriber, range, mode));
                }
                QueuedOp::Leave { subscriber } => {
                    report.merge(&self.apply_leave(subscriber, mode));
                }
            }
        }
        if mode == FlushMode::Batched {
            for i in 0..self.segments.len() {
                if self.segments[i].tree.has_pending() {
                    // Direct accounting still needs the newcomer count;
                    // under Lkh the tree's own flush report carries it.
                    let newcomers = self.segments[i].tree.staged_joins();
                    report.merge(&Self::settle(
                        self.strategy,
                        &mut self.segments[i],
                        newcomers,
                    ));
                }
            }
        }
        report
    }

    /// Epoch-boundary rekey: the pending batch (lazy leaves and queued
    /// joins) is replayed structurally, then every touched segment
    /// settles with **one** dirty-path-union LKH update — a revocation
    /// storm costs the union of the affected root paths instead of a
    /// full rekey per departure.
    pub fn epoch_rekey(&mut self) -> RekeyReport {
        self.flush_pending(FlushMode::Batched)
    }

    /// The retained naive baseline: replays the identical pending batch
    /// but rekeys after every single membership change, like the
    /// pre-batching epoch flush did. Structurally it lands on the exact
    /// same trees as [`SubscriberGroupManager::epoch_rekey`] (every key
    /// is a pure function of the leaf layout), which the equivalence
    /// proptest checks; only the cost differs.
    pub fn epoch_rekey_naive(&mut self) -> RekeyReport {
        self.flush_pending(FlushMode::PerOp)
    }

    /// Epoch-boundary rekey fused with key-space rotation: the manager's
    /// master seed advances to `new_seed` (so segments created from now
    /// on derive from the new epoch's key space) and the pending batch
    /// settles in the same call — membership flush and rotation are
    /// atomic with respect to every key handed out afterwards.
    pub fn epoch_rekey_rotating(&mut self, new_seed: &[u8]) -> RekeyReport {
        self.master = DeriveKey::from_bytes(new_seed);
        self.flush_pending(FlushMode::Batched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> SubscriberGroupManager {
        SubscriberGroupManager::new(
            IntRange::new(0, 99).unwrap(),
            RekeyStrategy::Direct,
            b"seed",
        )
    }

    #[test]
    fn paper_section_321_example() {
        // S1 on (20, 30); then S2 on (25, 40) → G1 (20,24)={S1},
        // G2 (25,30)={S1,S2}, G3 (31,40)={S2}.
        let mut m = mgr();
        m.join(1, IntRange::new(20, 30).unwrap());
        assert_eq!(m.segment_count(), 1);
        let r = m.join(2, IntRange::new(25, 40).unwrap());
        assert_eq!(m.segment_count(), 3);
        // S1 now holds keys for two groups, S2 for two.
        assert_eq!(m.keys_per_subscriber(1), 2);
        assert_eq!(m.keys_per_subscriber(2), 2);
        // S1 had to be updated (split rekeys) → messages to members > 0.
        assert!(r.messages_to_members > 0);
        assert!(r.keys_to_newcomer > 0);
    }

    #[test]
    fn decryption_respects_groups() {
        let mut m = mgr();
        m.join(1, IntRange::new(20, 30).unwrap());
        m.join(2, IntRange::new(25, 40).unwrap());
        assert!(m.can_decrypt(1, 22));
        assert!(!m.can_decrypt(2, 22));
        assert!(m.can_decrypt(1, 27) && m.can_decrypt(2, 27));
        assert!(!m.can_decrypt(1, 35) && m.can_decrypt(2, 35));
        assert!(m.group_key_for_value(50).is_none());
    }

    #[test]
    fn disjoint_joins_are_cheap() {
        let mut m = mgr();
        m.join(1, IntRange::new(0, 9).unwrap());
        let r = m.join(2, IntRange::new(50, 59).unwrap());
        // No overlap: no messages to existing members.
        assert_eq!(r.messages_to_members, 0);
        assert_eq!(r.keys_to_newcomer, 1);
        assert_eq!(m.segment_count(), 2);
    }

    #[test]
    fn identical_ranges_share_one_group() {
        let mut m = mgr();
        m.join(1, IntRange::new(10, 19).unwrap());
        m.join(2, IntRange::new(10, 19).unwrap());
        assert_eq!(m.segment_count(), 1);
        assert_eq!(m.keys_per_subscriber(1), 1);
        assert!(m.can_decrypt(1, 15) && m.can_decrypt(2, 15));
    }

    #[test]
    fn messaging_cost_grows_with_overlapping_subscribers() {
        let mut m = mgr();
        let mut last = 0;
        for s in 0..20 {
            let r = m.join(s, IntRange::new(40, 60).unwrap());
            last = r.total_messages();
        }
        // With 19 existing members in the overlapping group, the 20th join
        // must message many of them.
        assert!(last >= 19, "messages={last}");
    }

    #[test]
    fn immediate_leave_rekeys_and_prunes() {
        let mut m = mgr();
        m.join(1, IntRange::new(0, 9).unwrap());
        m.join(2, IntRange::new(5, 14).unwrap());
        let r = m.leave_immediate(2);
        assert!(r.keys_generated > 0);
        assert!(!m.can_decrypt(2, 7));
        assert!(m.can_decrypt(1, 7));
        // Segment (10, 14) had only S2 → pruned.
        assert_eq!(m.segment_count(), 2);
    }

    #[test]
    fn lazy_leave_defers_until_epoch() {
        let mut m = mgr();
        m.join(1, IntRange::new(0, 9).unwrap());
        m.join(2, IntRange::new(0, 9).unwrap());
        m.leave_lazy(2);
        // Still able to decrypt until the epoch boundary (lazy revocation).
        assert!(m.can_decrypt(2, 5));
        let r = m.epoch_rekey();
        assert!(r.keys_generated > 0);
        assert!(!m.can_decrypt(2, 5));
        assert!(m.can_decrypt(1, 5));
        // Second epoch rekey is a no-op.
        assert_eq!(m.epoch_rekey().total_messages(), 0);
    }

    #[test]
    fn queued_join_defers_access_until_epoch() {
        let mut m = mgr();
        m.queue_join(3, IntRange::new(10, 19).unwrap());
        assert_eq!(m.pending_changes(), 1);
        // Backward secrecy over the window: no access before the flush.
        assert!(!m.can_decrypt(3, 15));
        assert_eq!(m.subscriber_count(), 0);
        let r = m.epoch_rekey();
        assert!(r.keys_to_newcomer > 0);
        assert_eq!(m.pending_changes(), 0);
        assert!(m.can_decrypt(3, 15));
        assert_eq!(m.subscriber_count(), 1);
    }

    #[test]
    fn eager_rejoin_cancels_queued_leave() {
        let mut m = mgr();
        m.join(1, IntRange::new(0, 9).unwrap());
        m.leave_lazy(1);
        assert_eq!(m.pending_changes(), 1);
        m.join(1, IntRange::new(20, 29).unwrap());
        // The queued leave is gone: the epoch flush must not revoke the
        // fresh subscription.
        assert_eq!(m.pending_changes(), 0);
        m.epoch_rekey();
        assert!(m.can_decrypt(1, 25));
        assert!(!m.can_decrypt(1, 5), "old range was evicted");
    }

    #[test]
    fn batched_epoch_flush_settles_each_segment_once() {
        let range = IntRange::new(0, 99).unwrap();
        let mut naive = SubscriberGroupManager::new(range, RekeyStrategy::Lkh, b"x");
        let mut batched = SubscriberGroupManager::new(range, RekeyStrategy::Lkh, b"x");
        for s in 0..64 {
            naive.join(s, IntRange::new(10, 90).unwrap());
            batched.join(s, IntRange::new(10, 90).unwrap());
        }
        for s in 20..40 {
            naive.leave_lazy(s);
            batched.leave_lazy(s);
        }
        let rn = naive.epoch_rekey_naive();
        let rb = batched.epoch_rekey();
        // Identical resulting key state, strictly fewer messages batched.
        for s in 0..64u64 {
            assert_eq!(
                naive.subscriber_keys(s),
                batched.subscriber_keys(s),
                "s={s}"
            );
        }
        for v in [10, 42, 90] {
            assert_eq!(naive.group_key_for_value(v), batched.group_key_for_value(v));
        }
        assert!(
            rb.total_messages() < rn.total_messages(),
            "batched={} naive={}",
            rb.total_messages(),
            rn.total_messages()
        );
    }

    #[test]
    fn lkh_strategy_reduces_messages_for_large_groups() {
        let range = IntRange::new(0, 99).unwrap();
        let mut direct = SubscriberGroupManager::new(range, RekeyStrategy::Direct, b"a");
        let mut lkh = SubscriberGroupManager::new(range, RekeyStrategy::Lkh, b"b");
        let mut d_total = 0;
        let mut l_total = 0;
        for s in 0..256 {
            d_total += direct
                .join(s, IntRange::new(10, 90).unwrap())
                .total_messages();
            l_total += lkh.join(s, IntRange::new(10, 90).unwrap()).total_messages();
        }
        assert!(
            l_total < d_total,
            "LKH ({l_total}) should beat direct ({d_total})"
        );
    }

    #[test]
    fn out_of_range_subscription_ignored() {
        let mut m = mgr();
        let r = m.join(1, IntRange::new(500, 600).unwrap());
        assert_eq!(r.total_messages(), 0);
        assert_eq!(m.segment_count(), 0);
    }

    #[test]
    fn segments_partition_subscribed_space() {
        let mut m = mgr();
        let ranges = [(0, 30), (10, 50), (20, 80), (60, 99), (5, 95)];
        for (i, (lo, hi)) in ranges.iter().enumerate() {
            m.join(i as u64, IntRange::new(*lo, *hi).unwrap());
        }
        // Segments must be sorted, disjoint and non-empty.
        let mut prev_hi = i64::MIN;
        for seg in &m.segments {
            assert!(seg.range.lo() > prev_hi);
            assert!(!seg.members.is_empty());
            prev_hi = seg.range.hi();
        }
        // Every subscriber can decrypt exactly its own range.
        for (i, (lo, hi)) in ranges.iter().enumerate() {
            for v in 0..100i64 {
                assert_eq!(
                    m.can_decrypt(i as u64, v),
                    v >= *lo && v <= *hi,
                    "s={i} v={v}"
                );
            }
        }
    }
}
