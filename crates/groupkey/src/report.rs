//! Cost reports for group-key operations — the quantities behind
//! Figures 3–5 and Tables 3–6.

/// Cost incurred by one membership operation (join/leave/rekey).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RekeyReport {
    /// Key-delivery messages sent to existing members.
    pub messages_to_members: u64,
    /// Keys delivered to the joining subscriber.
    pub keys_to_newcomer: u64,
    /// Fresh keys generated at the server.
    pub keys_generated: u64,
    /// Symmetric encryptions performed at the server (wrapping new keys).
    pub encryptions: u64,
}

impl RekeyReport {
    /// Total key-delivery messages (the paper's messaging cost).
    pub fn total_messages(&self) -> u64 {
        self.messages_to_members + self.keys_to_newcomer
    }

    /// Network bytes, assuming 20-byte keys plus a 12-byte header per
    /// delivery.
    pub fn network_bytes(&self) -> u64 {
        self.total_messages() * 32
    }

    /// Sums a collection of reports — the batch/bench aggregation helper
    /// (callers previously hand-summed the four counters).
    ///
    /// # Example
    ///
    /// ```
    /// use psguard_groupkey::RekeyReport;
    ///
    /// let per_op = vec![RekeyReport::default(); 3];
    /// assert_eq!(RekeyReport::aggregate(&per_op).total_messages(), 0);
    /// ```
    pub fn aggregate<'a, I>(reports: I) -> RekeyReport
    where
        I: IntoIterator<Item = &'a RekeyReport>,
    {
        let mut total = RekeyReport::default();
        for r in reports {
            total.merge(r);
        }
        total
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &RekeyReport) {
        self.messages_to_members += other.messages_to_members;
        self.keys_to_newcomer += other.keys_to_newcomer;
        self.keys_generated += other.keys_generated;
        self.encryptions += other.encryptions;
    }
}

impl std::ops::Add for RekeyReport {
    type Output = RekeyReport;

    fn add(mut self, rhs: RekeyReport) -> RekeyReport {
        self.merge(&rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_bytes() {
        let r = RekeyReport {
            messages_to_members: 4,
            keys_to_newcomer: 2,
            keys_generated: 3,
            encryptions: 5,
        };
        assert_eq!(r.total_messages(), 6);
        assert_eq!(r.network_bytes(), 6 * 32);
    }

    #[test]
    fn merge_adds_fields() {
        let a = RekeyReport {
            messages_to_members: 1,
            keys_to_newcomer: 1,
            keys_generated: 1,
            encryptions: 1,
        };
        let b = a + a;
        assert_eq!(b.total_messages(), 4);
        assert_eq!(b.keys_generated, 2);
    }
}
