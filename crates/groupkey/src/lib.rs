//! The subscriber-group key-management **baseline** that PSGuard is
//! evaluated against (§3.2, Figures 3–5, Tables 3–6).
//!
//! Traditional secure group communication binds keys to groups of
//! subscribers. Under a content-based subscription model every event can
//! go to a different subscriber subset — up to `2^NS` groups — and every
//! join/leave triggers key updates to overlapping subscribers. This crate
//! implements that design faithfully so the comparison is fair:
//!
//! * [`SubscriberGroupManager`] — elementary-interval groups over a numeric
//!   range, with join/leave/epoch-rekey cost accounting;
//! * [`LkhTree`] — Logical Key Hierarchy rekeying (`O(log n)` messages), an
//!   optional optimization ([`RekeyStrategy::Lkh`]), materialized as a
//!   one-way key tree with staged membership changes;
//! * [`RekeyBatch`] — the per-epoch queue behind batched rekeying: a
//!   revocation storm settles as one dirty-path-union update per segment
//!   at the epoch flush instead of a rekey per departure (ROADMAP item 3);
//! * [`RekeyReport`] — the message/key/encryption counts reported in the
//!   paper's figures.
//!
//! # Example
//!
//! ```
//! use psguard_groupkey::{RekeyStrategy, SubscriberGroupManager};
//! use psguard_model::IntRange;
//!
//! let mut mgr = SubscriberGroupManager::new(
//!     IntRange::new(0, 255).unwrap(),
//!     RekeyStrategy::Lkh,
//!     b"seed",
//! );
//! let mut total_messages = 0;
//! for s in 0..32 {
//!     total_messages += mgr.join(s, IntRange::new(100, 160).unwrap()).total_messages();
//! }
//! // Group-key cost grows with the subscriber count — the effect PSGuard
//! // eliminates.
//! assert!(total_messages > 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod lkh;
mod manager;
mod report;

pub use batch::RekeyBatch;
pub use lkh::LkhTree;
pub use manager::{RekeyStrategy, SubscriberGroupManager, SubscriberId};
pub use report::RekeyReport;
