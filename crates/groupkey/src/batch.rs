//! Batched LKH key-tree updates (ROADMAP item 3).
//!
//! The naive rekey path refreshes the full root path of every departed
//! or joined leaf, one membership change at a time — a 10k-leave storm
//! at depth 20 refreshes ~200k nodes even though the bursts' root paths
//! overlap heavily near the top of the tree. Following Chan et al.
//! ("Approximation Algorithms for Key Management in Secure Multicast"),
//! a batched update marks the ancestors of *all* changed leaves dirty
//! and refreshes each dirty node exactly once, bottom-up: the burst
//! costs the **union** of the affected paths, not their sum.
//!
//! Two pieces live here:
//!
//! * [`NodeKeys`] — the materialized key arena for one [`crate::LkhTree`]:
//!   a heap-ordered array of node keys plus the per-height keys of empty
//!   subtrees. Every internal key is derived as `PRF(left ‖ right)` with
//!   one reusable [`PrfContext`] (pad-absorbed HMAC states, PR4), so a
//!   refresh storm amortizes HMAC setup: two SHA-1 compressions per node
//!   instead of four. Because each key is a pure function of its
//!   subtree's leaf contents, the batched and naive paths provably end
//!   on identical trees — the property test in `tests/batch_props.rs`
//!   drives both through seeded churn and compares every key.
//! * [`RekeyBatch`] — the per-epoch queue of membership changes inside
//!   [`crate::SubscriberGroupManager`]: joins and leaves accumulate here
//!   and are replayed in order at the epoch flush, where each touched
//!   segment tree settles with a single dirty-union refresh.

use std::collections::BTreeSet;

use psguard_crypto::{DeriveKey, PrfContext, DERIVE_KEY_LEN};
use psguard_model::IntRange;

/// The materialized node-key arena backing one LKH tree.
///
/// Nodes use heap indexing over a capacity `cap` (a power of two): the
/// root is index 1, children of `v` are `2v`/`2v+1`, and leaf slot `i`
/// lives at `cap + i`. Keys of empty subtrees collapse to one
/// precomputed key per height (`E_0 = KH(seed, "lkh-empty")`,
/// `E_{h+1} = PRF(E_h ‖ E_h)`), so a sparsely filled tree never stores
/// or recomputes them per node.
#[derive(Clone)]
pub struct NodeKeys {
    /// Heap-ordered node keys, `2 * cap` entries (index 0 unused).
    keys: Vec<DeriveKey>,
    /// Key of an all-empty subtree, indexed by subtree height.
    empty: Vec<DeriveKey>,
    /// Reusable derivation PRF, keyed once per tree (`KH(seed, "lkh-mix")`).
    mix: PrfContext,
}

// Redacting Debug: the arena holds every live node key (the root IS the
// group key); print shape only.
impl std::fmt::Debug for NodeKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeKeys")
            .field("nodes", &self.keys.len())
            .field("empty_heights", &self.empty.len())
            .finish_non_exhaustive()
    }
}

impl NodeKeys {
    /// An empty arena for a tree rooted at `seed`.
    pub(crate) fn new(seed: &DeriveKey) -> Self {
        let mix = PrfContext::new(seed.kh(b"lkh-mix").as_bytes());
        NodeKeys {
            keys: Vec::new(),
            empty: vec![seed.kh(b"lkh-empty")],
            mix,
        }
    }

    /// Parent key from two child keys: `PRF_mix(left ‖ right)`.
    fn combine(&self, left: &DeriveKey, right: &DeriveKey) -> DeriveKey {
        let mut buf = [0u8; 2 * DERIVE_KEY_LEN];
        buf[..DERIVE_KEY_LEN].copy_from_slice(left.as_bytes());
        buf[DERIVE_KEY_LEN..].copy_from_slice(right.as_bytes());
        DeriveKey::from_hash(*self.mix.prf(&buf).as_bytes())
    }

    /// Extends the empty-subtree key table up to `height`.
    fn ensure_empty_heights(&mut self, height: usize) {
        while self.empty.len() <= height {
            let top = self.combine(
                &self.empty[self.empty.len() - 1],
                &self.empty[self.empty.len() - 1],
            );
            self.empty.push(top);
        }
    }

    /// Reallocates the arena from `old_cap` to `new_cap` leaf slots,
    /// relocating the first `leaf_count` leaf keys. Internal entries are
    /// left as fillers — the caller schedules a full rebuild.
    pub(crate) fn grow(&mut self, old_cap: usize, new_cap: usize, leaf_count: usize) {
        let filler = self.empty[0].clone();
        let mut keys = vec![filler; 2 * new_cap];
        keys[new_cap..new_cap + leaf_count]
            .clone_from_slice(&self.keys[old_cap..old_cap + leaf_count]);
        self.keys = keys;
        self.ensure_empty_heights(new_cap.trailing_zeros() as usize);
    }

    /// Drops the arena (the explicit empty-tree transition). Key wiping
    /// happens in each `DeriveKey`'s drop.
    pub(crate) fn reset(&mut self) {
        self.keys = Vec::new();
    }

    /// Installs a freshly derived leaf key for `slot`.
    pub(crate) fn set_leaf(&mut self, cap: usize, slot: usize, key: DeriveKey) {
        self.keys[cap + slot] = key;
    }

    /// Moves the leaf key at `from` into `to` (the swap-remove fill).
    pub(crate) fn move_leaf(&mut self, cap: usize, from: usize, to: usize) {
        self.keys[cap + to] = self.keys[cap + from].clone();
    }

    /// Overwrites a vacated leaf slot so stale key material does not
    /// linger in the arena.
    pub(crate) fn clear_leaf(&mut self, cap: usize, slot: usize) {
        self.keys[cap + slot] = self.empty[0].clone();
    }

    /// The key stored at heap index `node`.
    pub(crate) fn key(&self, node: usize) -> &DeriveKey {
        &self.keys[node]
    }

    /// Recomputes internal `node` from its children, consulting `occ` so
    /// empty subtrees read their height key instead of stored state.
    /// Returns the number of occupied children — the encryptions needed
    /// to deliver the refreshed key (one per child subtree that holds
    /// members).
    pub(crate) fn refresh_internal(&mut self, node: usize, cap: usize, occ: &[u32]) -> u64 {
        let total_height = cap.trailing_zeros();
        let mut fanout = 0u64;
        let mut child_key = |this: &Self, v: usize| {
            if occ[v] == 0 {
                this.empty[(total_height - v.ilog2()) as usize].clone()
            } else {
                fanout += 1;
                this.keys[v].clone()
            }
        };
        let left = child_key(self, 2 * node);
        let right = child_key(self, 2 * node + 1);
        self.keys[node] = self.combine(&left, &right);
        fanout
    }
}

/// One queued membership change awaiting the epoch flush.
#[derive(Clone)]
pub(crate) enum QueuedOp {
    /// A (re-)subscription: applied as a full join at flush time.
    Join {
        /// The joining subscriber.
        subscriber: u64,
        /// Its subscribed range.
        range: IntRange,
    },
    /// A lazy revocation: applied as an eviction at flush time.
    Leave {
        /// The departing subscriber.
        subscriber: u64,
    },
}

impl QueuedOp {
    fn subscriber(&self) -> u64 {
        match self {
            QueuedOp::Join { subscriber, .. } | QueuedOp::Leave { subscriber } => *subscriber,
        }
    }
}

/// The per-epoch batch of pending membership changes inside
/// [`crate::SubscriberGroupManager`].
///
/// Joins and leaves accumulate here in arrival order and are replayed
/// at the epoch flush, where every touched segment settles with one
/// dirty-union refresh instead of a per-change rekey. The queue holds
/// subscription ranges — confidential routing state under the paper's
/// threat model — so its `Debug` prints counts only and the type sits
/// on the psguard-xtask secret-hygiene taint list.
#[derive(Clone, Default)]
pub struct RekeyBatch {
    ops: Vec<QueuedOp>,
    departed: BTreeSet<u64>,
}

// Redacting Debug: queued ops carry subscription ranges (confidential
// filter state); print counts only.
impl std::fmt::Debug for RekeyBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RekeyBatch")
            .field("ops", &self.ops.len())
            .field("departed", &self.departed.len())
            .finish_non_exhaustive()
    }
}

impl RekeyBatch {
    /// Number of queued membership changes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no pending changes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub(crate) fn push_join(&mut self, subscriber: u64, range: IntRange) {
        self.ops.push(QueuedOp::Join { subscriber, range });
    }

    pub(crate) fn push_leave(&mut self, subscriber: u64) {
        self.ops.push(QueuedOp::Leave { subscriber });
        self.departed.insert(subscriber);
    }

    /// Whether `subscriber` has a queued (not yet flushed) leave.
    pub(crate) fn is_departed(&self, subscriber: u64) -> bool {
        self.departed.contains(&subscriber)
    }

    /// Drops every queued op for `subscriber` (an eager join or eviction
    /// supersedes whatever was pending).
    pub(crate) fn cancel(&mut self, subscriber: u64) {
        self.ops.retain(|op| op.subscriber() != subscriber);
        self.departed.remove(&subscriber);
    }

    /// Drops only a queued leave for `subscriber` (a flush-time rejoin
    /// keeps earlier queued joins intact).
    pub(crate) fn cancel_leave(&mut self, subscriber: u64) {
        self.ops
            .retain(|op| !matches!(op, QueuedOp::Leave { subscriber: s } if *s == subscriber));
        self.departed.remove(&subscriber);
    }

    /// Takes the queued ops for replay, leaving the batch empty.
    pub(crate) fn take_ops(&mut self) -> Vec<QueuedOp> {
        self.departed.clear();
        std::mem::take(&mut self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_subtree_keys_are_height_indexed() {
        let seed = DeriveKey::from_bytes(b"arena");
        let mut a = NodeKeys::new(&seed);
        a.ensure_empty_heights(3);
        // E_{h+1} = PRF(E_h ‖ E_h), all distinct.
        for h in 0..3 {
            let e = a.empty[h].clone();
            let expect = a.combine(&e, &e);
            assert_eq!(a.empty[h + 1], expect);
            assert_ne!(a.empty[h], a.empty[h + 1]);
        }
    }

    #[test]
    fn batch_queue_cancels_and_drains() {
        let mut b = RekeyBatch::default();
        let r = IntRange::new(0, 9).unwrap();
        b.push_join(1, r);
        b.push_leave(2);
        b.push_leave(1);
        assert_eq!(b.len(), 3);
        assert!(b.is_departed(1) && b.is_departed(2));
        b.cancel_leave(1);
        assert!(!b.is_departed(1));
        assert_eq!(b.len(), 2, "join(1) survives, leave(1) dropped");
        b.cancel(1);
        assert_eq!(b.len(), 1, "only leave(2) remains");
        let ops = b.take_ops();
        assert_eq!(ops.len(), 1);
        assert!(b.is_empty() && !b.is_departed(2));
    }

    #[test]
    fn debug_redacts_key_material() {
        let seed = DeriveKey::from_bytes(b"arena");
        let arena = NodeKeys::new(&seed);
        let s = format!("{arena:?}");
        assert!(s.contains("NodeKeys") && !s.contains("keys:"));
        let batch = RekeyBatch::default();
        assert!(format!("{batch:?}").contains("RekeyBatch"));
    }
}
