//! Equivalence proptests for batched rekeying: driving the batched and
//! the retained naive per-change paths through identical seeded churn
//! must land on identical key trees (same group keys, same member key
//! sets), with the batch never paying more messages than the naive sum.
//!
//! This is the auditable core of ROADMAP item 3: every LKH node key is
//! a pure function of the leaf layout, so replaying the same structural
//! changes — one flush per change vs one flush per batch — cannot
//! diverge. The tests check it end-to-end rather than by construction.

use proptest::prelude::*;
use psguard_groupkey::{LkhTree, RekeyReport, RekeyStrategy, SubscriberGroupManager};
use psguard_model::IntRange;

proptest! {
    /// Tree-level equivalence: the same join/leave interleaving applied
    /// per-op (join/leave, flushing each time) and staged (stage_* + one
    /// flush) produces identical trees, and the single batched flush
    /// costs no more than the per-op total.
    #[test]
    fn batched_tree_matches_naive_per_op(
        warm in prop::collection::vec(0u64..64, 0..24),
        ops in prop::collection::vec((any::<bool>(), 0u64..64), 1..48),
    ) {
        let mut naive = LkhTree::new(b"batch-prop");
        let mut batched = LkhTree::new(b"batch-prop");
        for &m in &warm {
            naive.join(m);
            batched.join(m);
        }
        let mut naive_total = RekeyReport::default();
        let mut effective = 0u32;
        for &(join, id) in &ops {
            if join {
                let r_n = naive.join(id);
                let staged = batched.stage_join(id);
                prop_assert_eq!(staged, r_n.keys_generated > 0);
                naive_total.merge(&r_n);
                effective += u32::from(staged);
            } else {
                let r_n = naive.leave(id);
                let staged = batched.stage_leave(id);
                prop_assert_eq!(staged, r_n.is_some());
                if let Some(r) = r_n {
                    naive_total.merge(&r);
                }
                effective += u32::from(staged);
            }
        }
        let batched_total = batched.flush();
        if effective == 0 {
            prop_assert_eq!(batched_total.total_messages(), 0);
        }
        // Identical trees: same root, same slot layout, same member paths.
        prop_assert_eq!(naive.group_key(), batched.group_key());
        prop_assert_eq!(naive.members(), batched.members());
        for &m in naive.members() {
            prop_assert_eq!(naive.member_keys(m), batched.member_keys(m), "member {}", m);
        }
        // The batch pays the union of paths; naive pays the sum.
        prop_assert!(
            batched_total.total_messages() <= naive_total.total_messages(),
            "batched {} > naive {}",
            batched_total.total_messages(),
            naive_total.total_messages()
        );
        prop_assert!(batched_total.keys_generated <= naive_total.keys_generated);
        prop_assert!(batched_total.encryptions <= naive_total.encryptions);
    }

    /// Manager-level equivalence: identical eager joins plus identical
    /// queued churn, settled via `epoch_rekey` (batched) on one manager
    /// and `epoch_rekey_naive` (per-change) on its twin, produce the
    /// same group keys for every value and the same key paths for every
    /// subscriber — and the batched flush sends no more messages.
    #[test]
    fn batched_manager_matches_naive_flush(
        joins in prop::collection::vec((0u64..24, 0i64..56, 1i64..24), 1..24),
        churn in prop::collection::vec((0u8..3, 0u64..24, 0i64..56, 1i64..24), 0..24),
        probes in prop::collection::vec(0i64..64, 8),
    ) {
        let range = IntRange::new(0, 63).expect("valid");
        let mut naive = SubscriberGroupManager::new(range, RekeyStrategy::Lkh, b"twin");
        let mut batched = SubscriberGroupManager::new(range, RekeyStrategy::Lkh, b"twin");
        for &(s, lo, w) in &joins {
            let r = IntRange::new(lo, (lo + w).min(63)).expect("valid");
            naive.join(s, r);
            batched.join(s, r);
        }
        for &(op, s, lo, w) in &churn {
            match op {
                0 => {
                    naive.leave_lazy(s);
                    batched.leave_lazy(s);
                }
                _ => {
                    let r = IntRange::new(lo, (lo + w).min(63)).expect("valid");
                    naive.queue_join(s, r);
                    batched.queue_join(s, r);
                }
            }
        }
        prop_assert_eq!(naive.pending_changes(), batched.pending_changes());
        let rn = naive.epoch_rekey_naive();
        let rb = batched.epoch_rekey();
        prop_assert_eq!(naive.segment_count(), batched.segment_count());
        prop_assert_eq!(naive.subscriber_count(), batched.subscriber_count());
        for v in &probes {
            prop_assert_eq!(naive.group_key_for_value(*v), batched.group_key_for_value(*v), "v={}", v);
        }
        for s in 0..24u64 {
            prop_assert_eq!(naive.subscriber_keys(s), batched.subscriber_keys(s), "s={}", s);
            for v in &probes {
                prop_assert_eq!(naive.can_decrypt(s, *v), batched.can_decrypt(s, *v));
            }
        }
        prop_assert!(
            rb.messages_to_members <= rn.messages_to_members,
            "batched {} > naive {}",
            rb.messages_to_members,
            rn.messages_to_members
        );
        // A second flush on either side is a no-op.
        prop_assert_eq!(naive.epoch_rekey_naive().total_messages(), 0);
        prop_assert_eq!(batched.epoch_rekey().total_messages(), 0);
    }
}
