//! Property tests for the baseline's LKH trees and interval-group
//! manager under arbitrary join/leave interleavings.

use proptest::prelude::*;
use psguard_groupkey::{LkhTree, RekeyStrategy, SubscriberGroupManager};
use psguard_model::IntRange;

proptest! {
    /// LKH invariants hold under any operation sequence: membership is
    /// exact, the group key ratchets on every effective change, and the
    /// stored-key accounting matches 2n−1.
    #[test]
    fn lkh_invariants_under_interleavings(
        ops in prop::collection::vec((any::<bool>(), 0u64..16), 1..60),
    ) {
        let mut tree = LkhTree::new(b"prop");
        let mut members = std::collections::HashSet::new();
        let mut last_key = tree.group_key().clone();
        for (join, id) in ops {
            if join {
                let r = tree.join(id);
                if members.insert(id) {
                    prop_assert!(r.keys_generated > 0);
                    prop_assert_ne!(tree.group_key(), &last_key);
                } else {
                    prop_assert_eq!(r.total_messages(), 0);
                    prop_assert_eq!(tree.group_key(), &last_key);
                }
            } else {
                let r = tree.leave(id);
                if members.remove(&id) {
                    prop_assert!(r.is_some());
                    prop_assert_ne!(tree.group_key(), &last_key);
                } else {
                    prop_assert!(r.is_none());
                    prop_assert_eq!(tree.group_key(), &last_key);
                }
            }
            last_key = tree.group_key().clone();
            prop_assert_eq!(tree.len(), members.len());
            for &m in &members {
                prop_assert!(tree.contains(m));
            }
            let expect_keys = if members.is_empty() { 0 } else { 2 * members.len() as u64 - 1 };
            prop_assert_eq!(tree.server_key_count(), expect_keys);
        }
    }

    /// The interval-group manager's decryption predicate tracks the
    /// latest subscription exactly, under joins, re-subscriptions,
    /// eager leaves, and lazy leaves + epoch rekeys.
    #[test]
    fn group_manager_tracks_membership_exactly(
        ops in prop::collection::vec((0u8..4, 0u64..6, 0i64..60, 1i64..30), 1..40),
        probes in prop::collection::vec(0i64..64, 8),
    ) {
        let mut mgr = SubscriberGroupManager::new(
            IntRange::new(0, 63).expect("valid"),
            RekeyStrategy::Lkh,
            b"prop",
        );
        // Our model of who should currently decrypt what. Lazily departed
        // members keep access until the epoch rekey (lazy revocation).
        let mut active: std::collections::HashMap<u64, IntRange> = Default::default();
        let mut lingering: std::collections::HashMap<u64, IntRange> = Default::default();
        for (op, id, lo, w) in ops {
            match op {
                0 | 3 => {
                    let r = IntRange::new(lo, (lo + w).min(63)).expect("valid");
                    mgr.join(id, r);
                    active.insert(id, r);
                    lingering.remove(&id);
                }
                1 => {
                    mgr.leave_immediate(id);
                    active.remove(&id);
                    lingering.remove(&id);
                }
                _ => {
                    if let Some(r) = active.remove(&id) {
                        mgr.leave_lazy(id);
                        lingering.insert(id, r);
                    }
                }
            }
        }
        // Before the epoch boundary, lazy leavers can still decrypt.
        for v in &probes {
            for (id, r) in active.iter().chain(lingering.iter()) {
                prop_assert_eq!(mgr.can_decrypt(*id, *v), r.contains(*v), "pre-rekey s={} v={}", id, v);
            }
        }
        mgr.epoch_rekey();
        for v in &probes {
            for (id, r) in &active {
                prop_assert_eq!(mgr.can_decrypt(*id, *v), r.contains(*v), "post-rekey s={} v={}", id, v);
            }
            for id in lingering.keys() {
                prop_assert!(!mgr.can_decrypt(*id, *v), "revoked s={} v={}", id, v);
            }
        }
    }
}
