//! Property tests for the covering relation across all operator
//! families: soundness w.r.t. matching, and partial-order structure.

use proptest::prelude::*;
use psguard_model::{AttrValue, CategoryPath, Constraint, Event, Filter, IntRange, Op};

/// A strategy over operators of every family on attribute "a".
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..60).prop_map(|v| Op::Eq(AttrValue::Int(v))),
        (0i64..60).prop_map(Op::Lt),
        (0i64..60).prop_map(Op::Le),
        (0i64..60).prop_map(Op::Gt),
        (0i64..60).prop_map(Op::Ge),
        (0i64..50, 1i64..10)
            .prop_map(|(lo, w)| Op::InRange(IntRange::new(lo, lo + w).expect("valid"))),
        "[ab]{0,4}".prop_map(Op::StrPrefix),
        "[ab]{0,4}".prop_map(Op::StrSuffix),
        prop::collection::vec(0u32..3, 0..4)
            .prop_map(|p| Op::CategoryIn(CategoryPath::from_indices(p))),
        "[ab]{0,4}".prop_map(|s| Op::Eq(AttrValue::Str(s))),
        prop::collection::vec(0u32..3, 0..4)
            .prop_map(|p| Op::Eq(AttrValue::Category(CategoryPath::from_indices(p)))),
    ]
}

/// A strategy over values that the operators above might match.
fn value_strategy() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (0i64..60).prop_map(AttrValue::Int),
        "[ab]{0,5}".prop_map(AttrValue::Str),
        prop::collection::vec(0u32..3, 0..5)
            .prop_map(|p| AttrValue::Category(CategoryPath::from_indices(p))),
    ]
}

proptest! {
    /// Soundness: a.covers(b) implies match(b) ⊆ match(a) on samples.
    #[test]
    fn covering_is_sound(
        a in op_strategy(),
        b in op_strategy(),
        values in prop::collection::vec(value_strategy(), 24),
    ) {
        if a.covers(&b) {
            for v in values {
                if b.matches(&v) {
                    prop_assert!(a.matches(&v), "{a:?} covers {b:?} but {v:?} matches only b");
                }
            }
        }
    }

    /// Reflexivity on operators that can match at all.
    #[test]
    fn covering_is_reflexive(a in op_strategy()) {
        prop_assert!(a.covers(&a), "{a:?} must cover itself");
    }

    /// Transitivity on samples: a⊒b and b⊒c → a⊒c (checked semantically:
    /// a must cover everything c matches).
    #[test]
    fn covering_is_transitively_sound(
        a in op_strategy(),
        b in op_strategy(),
        c in op_strategy(),
        values in prop::collection::vec(value_strategy(), 16),
    ) {
        if a.covers(&b) && b.covers(&c) {
            for v in values {
                if c.matches(&v) {
                    prop_assert!(a.matches(&v));
                }
            }
        }
    }

    /// Filter-level covering with conjunctions stays sound.
    #[test]
    fn filter_covering_sound(
        ops_a in prop::collection::vec(op_strategy(), 0..3),
        ops_b in prop::collection::vec(op_strategy(), 0..3),
        values in prop::collection::vec(value_strategy(), 16),
    ) {
        let mut fa = Filter::for_topic("t");
        for (i, op) in ops_a.into_iter().enumerate() {
            fa = fa.with(Constraint::new(format!("a{i}"), op));
        }
        let mut fb = Filter::for_topic("t");
        for (i, op) in ops_b.into_iter().enumerate() {
            fb = fb.with(Constraint::new(format!("a{i}"), op));
        }
        if fa.covers(&fb) {
            for (i, v) in values.iter().enumerate() {
                // Build an event with all constrained attributes set to v.
                let mut e = Event::builder("t");
                for k in 0..3 {
                    e = e.attr(format!("a{k}"), v.clone());
                }
                let e = e.id(psguard_model::EventId(i as u64)).build();
                if fb.matches(&e) {
                    prop_assert!(fa.matches(&e));
                }
            }
        }
    }

    /// Topic mismatch always blocks both matching and covering.
    #[test]
    fn topic_is_a_hard_gate(op in op_strategy(), v in value_strategy()) {
        let f = Filter::for_topic("t1").with(Constraint::new("a", op.clone()));
        let e = Event::builder("t2").attr("a", v).build();
        prop_assert!(!f.matches(&e));
        let g = Filter::for_topic("t2").with(Constraint::new("a", op));
        prop_assert!(!f.covers(&g));
    }
}
