//! Inclusive integer ranges used by numeric attribute constraints and the
//! NAKT canonical decomposition.

/// An inclusive integer range `[lo, hi]` (the paper writes `(l, u)` with
/// "both end points inclusive").
///
/// # Example
///
/// ```
/// use psguard_model::IntRange;
///
/// let r = IntRange::new(8, 19).unwrap();
/// assert!(r.contains(8) && r.contains(19) && !r.contains(20));
/// assert_eq!(r.len(), 12);
/// assert!(r.overlaps(&IntRange::new(19, 30).unwrap()));
/// assert!(IntRange::new(0, 100).unwrap().covers(&r));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntRange {
    lo: i64,
    hi: i64,
}

impl IntRange {
    /// Creates `[lo, hi]`. Returns `None` when `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Option<Self> {
        (lo <= hi).then_some(IntRange { lo, hi })
    }

    /// The single-point range `[v, v]` — how an event value enters the key
    /// space (`K(e) = K^num_{(v,v)}`).
    pub fn point(v: i64) -> Self {
        IntRange { lo: v, hi: v }
    }

    /// Lower (inclusive) bound.
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Upper (inclusive) bound.
    pub fn hi(&self) -> i64 {
        self.hi
    }

    /// Number of integers in the range.
    pub fn len(&self) -> u64 {
        (self.hi - self.lo) as u64 + 1
    }

    /// Always `false` — ranges are non-empty by construction. Provided for
    /// API symmetry with `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `v` lies in the range.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether `self` fully contains `other` — exactly the paper's
    /// derivability condition `l ≤ l' ≤ u' ≤ u`.
    pub fn covers(&self, other: &IntRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two ranges share at least one integer.
    pub fn overlaps(&self, other: &IntRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &IntRange) -> Option<IntRange> {
        IntRange::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Clamps this range into `bounds`, or `None` when disjoint from it.
    pub fn clamp_to(&self, bounds: &IntRange) -> Option<IntRange> {
        self.intersect(bounds)
    }
}

impl std::fmt::Display for IntRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_order() {
        assert!(IntRange::new(3, 3).is_some());
        assert!(IntRange::new(3, 2).is_none());
    }

    #[test]
    fn point_has_len_one() {
        let p = IntRange::point(7);
        assert_eq!(p.len(), 1);
        assert!(p.contains(7));
        assert!(!p.contains(8));
    }

    #[test]
    fn covers_is_reflexive_and_antisymmetric_on_distinct() {
        let a = IntRange::new(0, 10).unwrap();
        let b = IntRange::new(2, 8).unwrap();
        assert!(a.covers(&a));
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
    }

    #[test]
    fn overlap_edge_cases() {
        let a = IntRange::new(0, 5).unwrap();
        assert!(a.overlaps(&IntRange::new(5, 9).unwrap()));
        assert!(!a.overlaps(&IntRange::new(6, 9).unwrap()));
        assert!(a.overlaps(&IntRange::new(-3, 0).unwrap()));
    }

    #[test]
    fn intersect_matches_overlap() {
        let a = IntRange::new(0, 5).unwrap();
        let b = IntRange::new(3, 9).unwrap();
        assert_eq!(a.intersect(&b), IntRange::new(3, 5));
        assert_eq!(a.intersect(&IntRange::new(7, 9).unwrap()), None);
    }

    #[test]
    fn display() {
        assert_eq!(IntRange::new(8, 19).unwrap().to_string(), "[8, 19]");
    }
}
