//! Events: the unit of publication.

use std::collections::BTreeMap;

use crate::value::{AttrName, AttrValue};

/// A monotonically assigned event identifier (publisher-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventId(pub u64);

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A published event: routable attributes plus a secret payload.
///
/// The paper's running example is
/// `e = ⟨⟨topic, cancerTrail⟩, ⟨age, 25⟩, ⟨patientRecord, record⟩⟩`:
/// `topic` and `age` are routable (brokers match on them), `patientRecord`
/// is the secret payload that only authorized subscribers may read.
///
/// # Example
///
/// ```
/// use psguard_model::{AttrValue, Event};
///
/// let e = Event::builder("cancerTrail")
///     .publisher("hospital-a")
///     .attr("age", AttrValue::Int(25))
///     .payload(b"record".to_vec())
///     .build();
/// assert_eq!(e.topic(), "cancerTrail");
/// assert_eq!(e.attr("age").and_then(|v| v.as_int()), Some(25));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Event {
    id: EventId,
    topic: String,
    publisher: String,
    attrs: BTreeMap<AttrName, AttrValue>,
    payload: Vec<u8>,
}

impl Event {
    /// Starts building an event on `topic`.
    pub fn builder(topic: impl Into<String>) -> EventBuilder {
        EventBuilder {
            id: EventId(0),
            topic: topic.into(),
            publisher: String::new(),
            attrs: BTreeMap::new(),
            payload: Vec::new(),
        }
    }

    /// The event identifier.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The topic keyword `w`.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The publishing principal `P`.
    pub fn publisher(&self) -> &str {
        &self.publisher
    }

    /// Looks up a routable attribute by name.
    pub fn attr(&self, name: impl AsRef<str>) -> Option<&AttrValue> {
        self.attrs.get(&AttrName::new(name.as_ref()))
    }

    /// Iterates over all routable attributes in name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&AttrName, &AttrValue)> {
        self.attrs.iter()
    }

    /// Number of routable attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// The secret payload (the `message`/`patientRecord` attribute). In a
    /// secure deployment this is ciphertext produced by `psguard`.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Replaces the payload, returning the previous one. Used when the
    /// secure layer swaps plaintext for ciphertext.
    pub fn replace_payload(&mut self, payload: Vec<u8>) -> Vec<u8> {
        std::mem::replace(&mut self.payload, payload)
    }
}

/// Builder for [`Event`] (see [`Event::builder`]).
#[derive(Debug, Clone)]
pub struct EventBuilder {
    id: EventId,
    topic: String,
    publisher: String,
    attrs: BTreeMap<AttrName, AttrValue>,
    payload: Vec<u8>,
}

impl EventBuilder {
    /// Sets the event identifier.
    pub fn id(mut self, id: EventId) -> Self {
        self.id = id;
        self
    }

    /// Sets the publishing principal.
    pub fn publisher(mut self, publisher: impl Into<String>) -> Self {
        self.publisher = publisher.into();
        self
    }

    /// Adds a routable attribute. Re-adding a name overwrites the value.
    pub fn attr(mut self, name: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        self.attrs.insert(name.into(), value.into());
        self
    }

    /// Sets the secret payload.
    pub fn payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Finalizes the event.
    pub fn build(self) -> Event {
        Event {
            id: self.id,
            topic: self.topic,
            publisher: self.publisher,
            attrs: self.attrs,
            payload: self.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let e = Event::builder("t")
            .id(EventId(9))
            .publisher("p")
            .attr("age", 25i64)
            .attr("sym", "GOOG")
            .payload(vec![1, 2, 3])
            .build();
        assert_eq!(e.id(), EventId(9));
        assert_eq!(e.publisher(), "p");
        assert_eq!(e.attr_count(), 2);
        assert_eq!(e.attr("sym").and_then(|v| v.as_str()), Some("GOOG"));
        assert_eq!(e.payload(), &[1, 2, 3]);
    }

    #[test]
    fn attr_overwrite_keeps_last() {
        let e = Event::builder("t").attr("a", 1i64).attr("a", 2i64).build();
        assert_eq!(e.attr("a").and_then(|v| v.as_int()), Some(2));
        assert_eq!(e.attr_count(), 1);
    }

    #[test]
    fn replace_payload_swaps() {
        let mut e = Event::builder("t").payload(vec![1]).build();
        let old = e.replace_payload(vec![2, 3]);
        assert_eq!(old, vec![1]);
        assert_eq!(e.payload(), &[2, 3]);
    }

    #[test]
    fn missing_attr_is_none() {
        let e = Event::builder("t").build();
        assert!(e.attr("nope").is_none());
    }

    #[test]
    fn event_id_display() {
        assert_eq!(EventId(3).to_string(), "e3");
    }
}
