//! Subscription filters: constraints, matching and the covering relation.

use crate::category::CategoryPath;
use crate::event::Event;
use crate::range::IntRange;
use crate::value::{AttrName, AttrValue};

/// A matching operator applied to one attribute.
///
/// Numeric operators (`Lt`/`Le`/`Gt`/`Ge`/`InRange`) correspond to the
/// paper's numeric attribute matching; `Eq` is keyword matching; `StrPrefix`
/// / `StrSuffix` are the string matchers; `CategoryIn` is ontology subtree
/// matching.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// Exact equality with a value of any family.
    Eq(AttrValue),
    /// Numeric strictly-less-than.
    Lt(i64),
    /// Numeric less-or-equal.
    Le(i64),
    /// Numeric strictly-greater-than.
    Gt(i64),
    /// Numeric greater-or-equal.
    Ge(i64),
    /// Numeric inclusive range `⟨num, ∈, (l, u)⟩`.
    InRange(IntRange),
    /// String prefix match.
    StrPrefix(String),
    /// String suffix match.
    StrSuffix(String),
    /// Category subtree match: the event's path must lie at or below this.
    CategoryIn(CategoryPath),
}

/// A lower/upper-bounded numeric interval. `None` means unbounded on that
/// side.
///
/// Every numeric operator denotes one of these (see [`Op::interval`]);
/// the covering relation compares them, and matching indexes use them to
/// lay constraints out in sorted boundary structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: Option<i64>,
    hi: Option<i64>,
}

impl Interval {
    /// The lower bound, inclusive (`None` = unbounded below).
    pub fn lo(&self) -> Option<i64> {
        self.lo
    }

    /// The upper bound, inclusive (`None` = unbounded above).
    pub fn hi(&self) -> Option<i64> {
        self.hi
    }

    /// Whether a value lies inside the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo.is_none_or(|lo| lo <= v) && self.hi.is_none_or(|hi| v <= hi)
    }

    /// Whether `other` is fully inside `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        let lo_ok = match (self.lo, other.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let hi_ok = match (self.hi, other.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a >= b,
        };
        lo_ok && hi_ok
    }
}

impl Op {
    /// Whether a single value satisfies this operator.
    pub fn matches(&self, value: &AttrValue) -> bool {
        match (self, value) {
            (Op::Eq(expect), v) => expect == v,
            (Op::Lt(u), AttrValue::Int(v)) => v < u,
            (Op::Le(u), AttrValue::Int(v)) => v <= u,
            (Op::Gt(l), AttrValue::Int(v)) => v > l,
            (Op::Ge(l), AttrValue::Int(v)) => v >= l,
            (Op::InRange(r), AttrValue::Int(v)) => r.contains(*v),
            (Op::StrPrefix(p), AttrValue::Str(s)) => s.starts_with(p.as_str()),
            (Op::StrSuffix(p), AttrValue::Str(s)) => s.ends_with(p.as_str()),
            (Op::CategoryIn(c), AttrValue::Category(p)) => c.is_ancestor_or_self_of(p),
            // Family mismatch never matches.
            _ => false,
        }
    }

    /// The numeric interval this operator denotes, if it is numeric —
    /// the introspection hook matching indexes build their sorted
    /// boundary structures from. Semi-open operators normalize to
    /// closed/unbounded form (`Lt(u)` → `(-∞, u-1]`, `Gt(l)` →
    /// `[l+1, +∞)`); `Eq` on an integer is the point interval.
    pub fn interval(&self) -> Option<Interval> {
        match self {
            Op::Lt(u) => Some(Interval {
                lo: None,
                hi: u.checked_sub(1),
            }),
            Op::Le(u) => Some(Interval {
                lo: None,
                hi: Some(*u),
            }),
            Op::Gt(l) => Some(Interval {
                lo: l.checked_add(1),
                hi: None,
            }),
            Op::Ge(l) => Some(Interval {
                lo: Some(*l),
                hi: None,
            }),
            Op::InRange(r) => Some(Interval {
                lo: Some(r.lo()),
                hi: Some(r.hi()),
            }),
            Op::Eq(AttrValue::Int(v)) => Some(Interval {
                lo: Some(*v),
                hi: Some(*v),
            }),
            _ => None,
        }
    }

    /// Whether every value matching `other` also matches `self`
    /// (`(name other) ⇒ (name self)` in the paper's Boolean-implication
    /// formulation). The check is *sound*: `true` guarantees implication;
    /// incomparable operator families conservatively return `false`.
    pub fn covers(&self, other: &Op) -> bool {
        // Numeric operators compare as intervals.
        if let (Some(a), Some(b)) = (self.interval(), other.interval()) {
            return a.contains_interval(&b);
        }
        match (self, other) {
            (Op::Eq(a), Op::Eq(b)) => a == b,
            (Op::StrPrefix(p), Op::StrPrefix(q)) => q.starts_with(p.as_str()),
            (Op::StrPrefix(p), Op::Eq(AttrValue::Str(s))) => s.starts_with(p.as_str()),
            (Op::StrSuffix(p), Op::StrSuffix(q)) => q.ends_with(p.as_str()),
            (Op::StrSuffix(p), Op::Eq(AttrValue::Str(s))) => s.ends_with(p.as_str()),
            (Op::CategoryIn(c), Op::CategoryIn(d)) => c.is_ancestor_or_self_of(d),
            (Op::CategoryIn(c), Op::Eq(AttrValue::Category(p))) => c.is_ancestor_or_self_of(p),
            _ => false,
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Eq(v) => write!(f, "= {v}"),
            Op::Lt(v) => write!(f, "< {v}"),
            Op::Le(v) => write!(f, "<= {v}"),
            Op::Gt(v) => write!(f, "> {v}"),
            Op::Ge(v) => write!(f, ">= {v}"),
            Op::InRange(r) => write!(f, "in {r}"),
            Op::StrPrefix(p) => write!(f, "starts-with {p:?}"),
            Op::StrSuffix(p) => write!(f, "ends-with {p:?}"),
            Op::CategoryIn(c) => write!(f, "under {c}"),
        }
    }
}

/// One attribute constraint `⟨name, op, value⟩`.
///
/// # Example
///
/// ```
/// use psguard_model::{AttrValue, Constraint, Op};
/// let c = Constraint::new("age", Op::Gt(20));
/// assert!(c.matches_value(&AttrValue::Int(25)));
/// assert!(c.covers(&Constraint::new("age", Op::Gt(30))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Constraint {
    name: AttrName,
    op: Op,
}

impl Constraint {
    /// Creates a constraint on attribute `name`.
    pub fn new(name: impl Into<AttrName>, op: Op) -> Self {
        Constraint {
            name: name.into(),
            op,
        }
    }

    /// The constrained attribute name.
    pub fn name(&self) -> &AttrName {
        &self.name
    }

    /// The operator.
    pub fn op(&self) -> &Op {
        &self.op
    }

    /// Whether a value satisfies this constraint.
    pub fn matches_value(&self, value: &AttrValue) -> bool {
        self.op.matches(value)
    }

    /// Whether this constraint covers `other` (same attribute, implied op).
    pub fn covers(&self, other: &Constraint) -> bool {
        self.name == other.name && self.op.covers(&other.op)
    }

    /// The numeric interval this constraint denotes, if its operator is
    /// numeric (see [`Op::interval`]).
    pub fn interval(&self) -> Option<Interval> {
        self.op.interval()
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{} {}⟩", self.name, self.op)
    }
}

/// A conjunctive subscription filter: a topic plus zero or more attribute
/// constraints that must all hold.
///
/// # Example
///
/// ```
/// use psguard_model::{AttrValue, Constraint, Event, Filter, Op};
///
/// let f = Filter::for_topic("cancerTrail")
///     .with(Constraint::new("age", Op::Ge(16)))
///     .with(Constraint::new("age", Op::Le(31)));
/// let e = Event::builder("cancerTrail").attr("age", 22i64).build();
/// assert!(f.matches(&e));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Filter {
    /// `None` matches any topic (a wildcard used by infrastructure
    /// subscriptions); `Some(w)` requires `⟨topic, EQ, w⟩`.
    topic: Option<String>,
    constraints: Vec<Constraint>,
}

impl Filter {
    /// A filter matching every event (no topic, no constraints).
    pub fn any() -> Self {
        Filter {
            topic: None,
            constraints: Vec::new(),
        }
    }

    /// A filter requiring `⟨topic, EQ, w⟩`.
    pub fn for_topic(topic: impl Into<String>) -> Self {
        Filter {
            topic: Some(topic.into()),
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint (builder style).
    pub fn with(mut self, constraint: Constraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// The topic requirement, if any.
    pub fn topic(&self) -> Option<&str> {
        self.topic.as_deref()
    }

    /// The attribute constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether an event satisfies the topic and every constraint. An event
    /// missing a constrained attribute does not match.
    pub fn matches(&self, event: &Event) -> bool {
        if let Some(topic) = &self.topic {
            if event.topic() != topic {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            event
                .attr(c.name().as_str())
                .is_some_and(|v| c.matches_value(v))
        })
    }

    /// Whether this filter covers `other`: every event matching `other`
    /// also matches `self`. Sound but conservative (like Siena's covering
    /// test): every constraint of `self` must be implied by some constraint
    /// of `other` on the same attribute.
    pub fn covers(&self, other: &Filter) -> bool {
        match (&self.topic, &other.topic) {
            (Some(a), Some(b)) if a != b => return false,
            (Some(_), None) => return false,
            _ => {}
        }
        self.constraints
            .iter()
            .all(|mine| other.constraints.iter().any(|theirs| mine.covers(theirs)))
    }
}

impl std::fmt::Display for Filter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.topic {
            Some(t) => write!(f, "topic={t}")?,
            None => write!(f, "topic=*")?,
        }
        for c in &self.constraints {
            write!(f, " ∧ {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_age(age: i64) -> Event {
        Event::builder("cancerTrail").attr("age", age).build()
    }

    #[test]
    fn paper_example_matching() {
        // f = ⟨⟨topic, EQ, cancerTrail⟩, ⟨age, >, 20⟩⟩ matches age 25, not 15.
        let f = Filter::for_topic("cancerTrail").with(Constraint::new("age", Op::Gt(20)));
        assert!(f.matches(&event_age(25)));
        assert!(!f.matches(&event_age(15)));
        assert!(!f.matches(&Event::builder("weather").attr("age", 25i64).build()));
    }

    #[test]
    fn paper_example_covering() {
        // ⟨age, >, 20⟩ covers ⟨age, >, 30⟩.
        let broad = Constraint::new("age", Op::Gt(20));
        let narrow = Constraint::new("age", Op::Gt(30));
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
    }

    #[test]
    fn interval_covering_mixed_ops() {
        let any_ge = Constraint::new("a", Op::Ge(0));
        let range = Constraint::new("a", Op::InRange(IntRange::new(5, 9).unwrap()));
        let point = Constraint::new("a", Op::Eq(AttrValue::Int(7)));
        assert!(any_ge.covers(&range));
        assert!(range.covers(&point));
        assert!(!point.covers(&range));
        assert!(!range.covers(&any_ge));
    }

    #[test]
    fn lt_le_boundaries() {
        assert!(Op::Lt(10).matches(&AttrValue::Int(9)));
        assert!(!Op::Lt(10).matches(&AttrValue::Int(10)));
        assert!(Op::Le(10).matches(&AttrValue::Int(10)));
        // Lt(10) == values ≤ 9, so Le(9) covers Lt(10) and vice versa.
        assert!(Op::Le(9).covers(&Op::Lt(10)));
        assert!(Op::Lt(10).covers(&Op::Le(9)));
    }

    #[test]
    fn string_prefix_semantics() {
        let p = Op::StrPrefix("GOO".into());
        assert!(p.matches(&AttrValue::from("GOOG")));
        assert!(!p.matches(&AttrValue::from("GO")));
        assert!(Op::StrPrefix("GO".into()).covers(&p));
        assert!(!p.covers(&Op::StrPrefix("GO".into())));
        assert!(p.covers(&Op::Eq(AttrValue::from("GOOG"))));
    }

    #[test]
    fn string_suffix_semantics() {
        let s = Op::StrSuffix("log".into());
        assert!(s.matches(&AttrValue::from("catalog")));
        assert!(!s.matches(&AttrValue::from("logs")));
        assert!(Op::StrSuffix("g".into()).covers(&s));
    }

    #[test]
    fn category_semantics() {
        let parent = Op::CategoryIn(CategoryPath::from_indices([0]));
        let child = Op::CategoryIn(CategoryPath::from_indices([0, 2]));
        assert!(parent.covers(&child));
        assert!(!child.covers(&parent));
        assert!(child.matches(&AttrValue::Category(CategoryPath::from_indices([0, 2, 1]))));
        assert!(!child.matches(&AttrValue::Category(CategoryPath::from_indices([0, 1]))));
    }

    #[test]
    fn family_mismatch_never_matches_or_covers() {
        assert!(!Op::Gt(3).matches(&AttrValue::from("str")));
        assert!(!Op::StrPrefix("a".into()).matches(&AttrValue::Int(1)));
        assert!(!Op::Gt(3).covers(&Op::StrPrefix("a".into())));
    }

    #[test]
    fn missing_attribute_fails_match() {
        let f = Filter::for_topic("t").with(Constraint::new("x", Op::Gt(0)));
        assert!(!f.matches(&Event::builder("t").build()));
    }

    #[test]
    fn wildcard_filter_matches_everything() {
        assert!(Filter::any().matches(&event_age(1)));
        assert!(Filter::any().covers(&Filter::for_topic("t")));
        assert!(!Filter::for_topic("t").covers(&Filter::any()));
    }

    #[test]
    fn filter_covering_multi_constraint() {
        let broad = Filter::for_topic("t").with(Constraint::new("age", Op::Ge(10)));
        let narrow = Filter::for_topic("t")
            .with(Constraint::new("age", Op::Ge(20)))
            .with(Constraint::new("price", Op::Le(5)));
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        assert!(broad.covers(&broad));
    }

    #[test]
    fn covering_is_consistent_with_matching_on_samples() {
        // If f covers g then every sampled event matching g matches f.
        let f = Filter::for_topic("t").with(Constraint::new(
            "age",
            Op::InRange(IntRange::new(0, 100).unwrap()),
        ));
        let g = Filter::for_topic("t").with(Constraint::new(
            "age",
            Op::InRange(IntRange::new(20, 30).unwrap()),
        ));
        assert!(f.covers(&g));
        for age in -10..120 {
            let e = event_age_topic(age, "t");
            if g.matches(&e) {
                assert!(f.matches(&e), "age={age}");
            }
        }
    }

    fn event_age_topic(age: i64, topic: &str) -> Event {
        Event::builder(topic).attr("age", age).build()
    }
}
