//! Subscriptions: disjunctions of filters bound to a subscriber identity.

use crate::event::Event;
use crate::filter::Filter;

/// A subscription: one subscriber's interest, expressed as a disjunction of
/// conjunctive filters (the ∨ of the paper's ∧/∨ filter algebra).
///
/// # Example
///
/// ```
/// use psguard_model::{Constraint, Event, Filter, Op, Subscription};
///
/// let sub = Subscription::new("alice")
///     .or(Filter::for_topic("stocks").with(Constraint::new("price", Op::Le(100))))
///     .or(Filter::for_topic("weather"));
/// assert!(sub.matches(&Event::builder("weather").build()));
/// assert!(!sub.matches(&Event::builder("sports").build()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Subscription {
    subscriber: String,
    filters: Vec<Filter>,
}

impl Subscription {
    /// Creates an empty subscription for `subscriber` (matches nothing
    /// until a filter is added).
    pub fn new(subscriber: impl Into<String>) -> Self {
        Subscription {
            subscriber: subscriber.into(),
            filters: Vec::new(),
        }
    }

    /// Adds an alternative filter (builder style).
    pub fn or(mut self, filter: Filter) -> Self {
        self.filters.push(filter);
        self
    }

    /// The owning subscriber's identity.
    pub fn subscriber(&self) -> &str {
        &self.subscriber
    }

    /// The disjuncts.
    pub fn filters(&self) -> &[Filter] {
        &self.filters
    }

    /// Whether any disjunct matches the event.
    pub fn matches(&self, event: &Event) -> bool {
        self.filters.iter().any(|f| f.matches(event))
    }

    /// Whether this subscription covers `other`: every filter of `other`
    /// is covered by some filter of ours. Sound but conservative.
    pub fn covers(&self, other: &Subscription) -> bool {
        other
            .filters
            .iter()
            .all(|g| self.filters.iter().any(|f| f.covers(g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{Constraint, Op};

    #[test]
    fn empty_subscription_matches_nothing() {
        let s = Subscription::new("s");
        assert!(!s.matches(&Event::builder("t").build()));
    }

    #[test]
    fn disjunction_matches_any_branch() {
        let s = Subscription::new("s")
            .or(Filter::for_topic("a"))
            .or(Filter::for_topic("b"));
        assert!(s.matches(&Event::builder("a").build()));
        assert!(s.matches(&Event::builder("b").build()));
        assert!(!s.matches(&Event::builder("c").build()));
    }

    #[test]
    fn covering_of_disjunctions() {
        let broad = Subscription::new("x")
            .or(Filter::for_topic("a"))
            .or(Filter::for_topic("b"));
        let narrow = Subscription::new("y")
            .or(Filter::for_topic("a").with(Constraint::new("v", Op::Gt(10))));
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        // An empty subscription is covered by anything.
        assert!(narrow.covers(&Subscription::new("z")));
    }
}
