//! Attribute names and values.

use crate::category::CategoryPath;

/// An interned-ish attribute name (a thin wrapper over `String` so the type
/// system distinguishes names from string *values*).
///
/// # Example
///
/// ```
/// use psguard_model::AttrName;
/// let n: AttrName = "age".into();
/// assert_eq!(n.as_str(), "age");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttrName(String);

impl AttrName {
    /// Creates a name from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        AttrName(name.into())
    }

    /// The name as a `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName(s.to_owned())
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName(s)
    }
}

impl AsRef<str> for AttrName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for AttrName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A routable attribute value carried by an event.
///
/// The paper's evaluation (§5.2) exercises four families: plain topics,
/// numeric attributes, category (ontology) attributes and string attributes.
/// Topics are modeled at the [`crate::Event`] level; the other three are
/// value variants here.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AttrValue {
    /// A numeric value, e.g. `⟨age, 25⟩`.
    Int(i64),
    /// A string value, e.g. `⟨symbol, "GOOG"⟩`.
    Str(String),
    /// A position in a category/ontology tree, e.g.
    /// `⟨diagnosis, oncology/lung/stage2⟩`.
    Category(CategoryPath),
}

impl AttrValue {
    /// Returns the numeric value if this is an [`AttrValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string value if this is an [`AttrValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the category path if this is an [`AttrValue::Category`].
    pub fn as_category(&self) -> Option<&CategoryPath> {
        match self {
            AttrValue::Category(c) => Some(c),
            _ => None,
        }
    }

    /// A short name for the value family, used in diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            AttrValue::Int(_) => "int",
            AttrValue::Str(_) => "str",
            AttrValue::Category(_) => "category",
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<CategoryPath> for AttrValue {
    fn from(v: CategoryPath) -> Self {
        AttrValue::Category(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s:?}"),
            AttrValue::Category(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(AttrValue::Int(5).as_int(), Some(5));
        assert_eq!(AttrValue::Int(5).as_str(), None);
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        let c = CategoryPath::from_indices([1, 2]);
        assert_eq!(AttrValue::from(c.clone()).as_category(), Some(&c));
    }

    #[test]
    fn kinds() {
        assert_eq!(AttrValue::Int(0).kind(), "int");
        assert_eq!(AttrValue::from("a").kind(), "str");
        assert_eq!(AttrValue::from(CategoryPath::root()).kind(), "category");
    }

    #[test]
    fn display_formats() {
        assert_eq!(AttrValue::Int(42).to_string(), "42");
        assert_eq!(AttrValue::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn name_conversions() {
        let a: AttrName = "age".into();
        let b = AttrName::new(String::from("age"));
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "age");
    }
}
