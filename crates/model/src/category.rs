//! Category (ontology) paths: positions in a rooted tree of categories.
//!
//! The paper's §5.2 evaluates "category attributes": trees of height 4 with
//! fan-out 2–4 per internal node. A subscription names a subtree (any node);
//! an event names a leaf (or deeper node); the subscription matches exactly
//! when its node is an ancestor-or-self of the event's node. The key
//! hierarchy in `psguard-keys` mirrors this structure, so a path here doubles
//! as a key-tree identifier.

/// A path from the root of a category tree, as child indices.
///
/// The empty path is the root (the whole ontology).
///
/// # Example
///
/// ```
/// use psguard_model::CategoryPath;
///
/// let oncology = CategoryPath::from_indices([0]);
/// let lung = oncology.child(2);
/// assert!(oncology.is_ancestor_or_self_of(&lung));
/// assert!(!lung.is_ancestor_or_self_of(&oncology));
/// assert_eq!(lung.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CategoryPath(Vec<u32>);

impl CategoryPath {
    /// The root of the ontology (matches every event of the attribute).
    pub fn root() -> Self {
        CategoryPath(Vec::new())
    }

    /// Builds a path from child indices, root-first.
    pub fn from_indices(indices: impl IntoIterator<Item = u32>) -> Self {
        CategoryPath(indices.into_iter().collect())
    }

    /// Returns the path extended by one child step.
    pub fn child(&self, index: u32) -> Self {
        let mut v = self.0.clone();
        v.push(index);
        CategoryPath(v)
    }

    /// The parent path, or `None` at the root.
    pub fn parent(&self) -> Option<Self> {
        if self.0.is_empty() {
            None
        } else {
            Some(CategoryPath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Number of edges from the root.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Child indices, root-first.
    pub fn indices(&self) -> &[u32] {
        &self.0
    }

    /// Whether `self` is an ancestor of `other` or equal to it — i.e.
    /// whether a subscription at `self` matches an event at `other`.
    pub fn is_ancestor_or_self_of(&self, other: &CategoryPath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// The suffix of `descendant` below `self`, or `None` when `descendant`
    /// is not in this subtree. Used by key derivation to walk from an
    /// authorization key down to an event key.
    pub fn suffix_of<'a>(&self, descendant: &'a CategoryPath) -> Option<&'a [u32]> {
        if self.is_ancestor_or_self_of(descendant) {
            Some(&descendant.0[self.0.len()..])
        } else {
            None
        }
    }
}

impl std::fmt::Display for CategoryPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return f.write_str("/");
        }
        for idx in &self.0 {
            write!(f, "/{idx}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_ancestor_of_everything() {
        let root = CategoryPath::root();
        let deep = CategoryPath::from_indices([3, 1, 4, 1]);
        assert!(root.is_ancestor_or_self_of(&deep));
        assert!(root.is_ancestor_or_self_of(&root));
        assert!(!deep.is_ancestor_or_self_of(&root));
    }

    #[test]
    fn siblings_are_not_ancestors() {
        let a = CategoryPath::from_indices([0, 1]);
        let b = CategoryPath::from_indices([0, 2]);
        assert!(!a.is_ancestor_or_self_of(&b));
        assert!(!b.is_ancestor_or_self_of(&a));
    }

    #[test]
    fn self_is_ancestor_or_self() {
        let a = CategoryPath::from_indices([2, 2]);
        assert!(a.is_ancestor_or_self_of(&a));
        assert_eq!(a.suffix_of(&a), Some(&[][..]));
    }

    #[test]
    fn suffix_walks_down() {
        let onc = CategoryPath::from_indices([0]);
        let lung2 = CategoryPath::from_indices([0, 2, 1]);
        assert_eq!(onc.suffix_of(&lung2), Some(&[2u32, 1][..]));
        assert_eq!(lung2.suffix_of(&onc), None);
    }

    #[test]
    fn parent_and_child_invert() {
        let p = CategoryPath::from_indices([1, 2, 3]);
        assert_eq!(p.parent().unwrap().child(3), p);
        assert_eq!(CategoryPath::root().parent(), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(CategoryPath::root().to_string(), "/");
        assert_eq!(CategoryPath::from_indices([1, 0, 2]).to_string(), "/1/0/2");
    }

    #[test]
    fn depth_counts_edges() {
        assert_eq!(CategoryPath::root().depth(), 0);
        assert_eq!(CategoryPath::from_indices([9]).depth(), 1);
    }
}
