//! Content model for the PSGuard reproduction: events, attribute values,
//! subscription filters, the Siena *covering* relation and event matching.
//!
//! The model follows §2.1 of the paper (which in turn mirrors Siena):
//!
//! * an **event** is a set of attribute/value pairs, e.g.
//!   `⟨⟨topic, cancerTrail⟩, ⟨age, 25⟩, ⟨patientRecord, record⟩⟩`;
//! * a **filter** is a conjunction of constraints, e.g.
//!   `⟨⟨topic, EQ, cancerTrail⟩, ⟨age, >, 20⟩⟩`;
//! * a **subscription** is a disjunction of filters (the paper's companion
//!   technical report combines per-attribute constraints with ∧ and ∨);
//! * a filter `f` **covers** `f'` when every event matching `f'` also
//!   matches `f` — brokers use covering to suppress redundant subscription
//!   forwarding.
//!
//! The four attribute families evaluated in §5.2 are all present: plain
//! topics (keyword equality), numeric attributes (ranges), category
//! attributes (ontology subtrees) and string attributes (prefix matching).
//!
//! # Example
//!
//! ```
//! use psguard_model::{AttrValue, Constraint, Event, Filter, Op};
//!
//! let event = Event::builder("cancerTrail")
//!     .attr("age", AttrValue::Int(25))
//!     .payload(b"record".to_vec())
//!     .build();
//!
//! let filter = Filter::for_topic("cancerTrail")
//!     .with(Constraint::new("age", Op::Gt(20)));
//! assert!(filter.matches(&event));
//!
//! let narrower = Filter::for_topic("cancerTrail")
//!     .with(Constraint::new("age", Op::Gt(30)));
//! assert!(!narrower.matches(&event));
//! assert!(filter.covers(&narrower));
//! assert!(!narrower.covers(&filter));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod category;
mod event;
mod filter;
mod range;
mod subscription;
mod value;

pub use category::CategoryPath;
pub use event::{Event, EventBuilder, EventId};
pub use filter::{Constraint, Filter, Interval, Op};
pub use range::IntRange;
pub use subscription::Subscription;
pub use value::{AttrName, AttrValue};
