//! Analysis-pipeline integration tests against the live workspace: the
//! item parser must handle every production source file, the configured
//! reactor entry points must resolve, and the taint self-check must be
//! clean with an EMPTY `TAINT-OK` allowlist — plaintext confidentiality
//! is proven, not budgeted.

use std::path::{Path, PathBuf};

use psguard_xtask::callgraph::CallGraph;
use psguard_xtask::parser::{load, SourceFile};
use psguard_xtask::symbols::SymbolTable;
use psguard_xtask::{config, reactor_safety, taint};

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every production `.rs` file in the workspace, loaded through the
/// lexer + parser as `run_check` would see it.
fn load_workspace() -> Vec<SourceFile> {
    let root = workspace_root();
    let crates = root.join("crates");
    let mut files = Vec::new();
    let mut dirs: Vec<_> = std::fs::read_dir(&crates)
        .unwrap_or_else(|e| panic!("{}: {e}", crates.display()))
        .map(|e| e.unwrap().path())
        .collect();
    dirs.sort();
    for dir in dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths);
        for path in paths {
            let rel = path
                .strip_prefix(&root)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            files.push(load(&rel, &source));
        }
    }
    files
}

#[test]
fn parser_handles_every_workspace_file() {
    let files = load_workspace();
    assert!(files.len() > 50, "walker found too few files");
    let gaps: Vec<String> = files
        .iter()
        .filter(|f| !f.parsed.fully_parsed())
        .map(|f| {
            format!(
                "{}: parsed {} of {} fn items",
                f.rel, f.parsed.fns_parsed, f.parsed.fn_keywords_seen
            )
        })
        .collect();
    assert!(gaps.is_empty(), "parser gaps:\n{}", gaps.join("\n"));
    let total_fns: usize = files.iter().map(|f| f.parsed.fns.len()).sum();
    assert!(total_fns > 500, "suspiciously few fn items: {total_fns}");
}

#[test]
fn reactor_entry_points_resolve_in_live_workspace() {
    let files = load_workspace();
    let table = SymbolTable::build(files.iter().map(|f| &f.parsed));
    for (rel, name) in config::REACTOR_ENTRY_POINTS {
        assert!(
            table.find_in_file(rel, name).is_some(),
            "entry point `{name}` not found in {rel} — config rot"
        );
    }
    // And the pass itself reports no missing-entry config-rot finding.
    let graph = CallGraph::build(&table);
    let findings = reactor_safety::run(&files, &table, &graph, config::REACTOR_ENTRY_POINTS);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn workspace_taint_self_check_is_clean_with_empty_allowlist() {
    let files = load_workspace();
    let table = SymbolTable::build(files.iter().map(|f| &f.parsed));
    let report = taint::run(&files, &table);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    // The confidentiality claim must hold without budgeted exceptions:
    // no TAINT-OK sites in the tree, no entries in the allowlist.
    assert!(report.justified.is_empty(), "{:#?}", report.justified);
    let allowlist = std::fs::read_to_string(workspace_root().join(config::TAINT_ALLOWLIST_PATH))
        .expect("taint allowlist must exist");
    let entries: Vec<&str> = allowlist
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    assert!(
        entries.is_empty(),
        "taint allowlist must stay empty: {entries:?}"
    );
}
