//! Clean counterpart: the reactor uses `try_send` with an overflow
//! policy on the bounded channel, unbounded sends (which never block),
//! and non-blocking receives. The one sleep is a justified
//! shutdown-path drain.

fn run_client_reactor() {
    let (etx, erx) = bounded::<Event>(64);
    let (utx, urx) = unbounded::<Stat>();
    pump(&etx, &utx);
    drain(&erx);
    // BLOCKING-OK: bounded shutdown drain after the event loop exits.
    std::thread::sleep(FLUSH_NAP);
}

fn pump(etx: &Sender<Event>, utx: &Sender<Stat>) {
    if etx.try_send(next_event()).is_err() {
        utx.send(overflow_stat()).ok();
    }
}

fn drain(erx: &Receiver<Event>) {
    while let Ok(ev) = erx.try_recv() {
        handle(ev);
    }
}
