//! Clean counterpart: one direction of the dispatcher<->worker pair
//! uses `try_send` (drop-on-overflow), which breaks the wait-for
//! cycle — a full queue can no longer make that side block.

fn run_dispatcher() {
    fwd_to_worker();
    let m = drx.recv_timeout(TICK);
    apply(m);
}

fn run_broker_worker() {
    fwd_to_dispatcher();
    let m = wrx.try_recv();
    apply(m);
}

fn fwd_to_worker() {
    wtx.send(job()).ok();
}

fn fwd_to_dispatcher() {
    dtx.try_send(msg()).ok();
}

fn setup() {
    let (wtx, wrx) = bounded::<Job>(4);
    let (dtx, drx) = bounded::<Msg>(4);
    wire(wtx, wrx, dtx, drx);
}
