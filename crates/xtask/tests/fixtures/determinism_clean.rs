// Fixture: the deterministic idioms the simulator scope must use —
// virtual time and seeded RNG. Never compiled — scanned as text.

pub struct VirtualClock {
    now_us: u64,
}

impl VirtualClock {
    pub fn advance(&mut self, us: u64) {
        self.now_us += us;
    }
}

pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// The word "sleep" as a field is not a call to thread::sleep.
pub struct FaultPlan {
    sleep: u64,
}
