//! Seeded confidentiality-taint violation: a plaintext filter reaches a
//! Debug/format sink (broker-side log line) through an intermediate
//! helper. Filters reveal subscriber interests, so broker-side code
//! must not format them.

fn diagnose() {
    let filter = Filter::builder().field("sym").build();
    dump(&filter);
}

fn dump(filter: &Filter) {
    println!("routing state {filter:?}");
}
