// Fixture: panic-freedom violations on library paths. Never compiled —
// scanned as text by tests/fixtures.rs.

pub fn lookup(map: &std::collections::HashMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).unwrap()
}

pub fn decode(bytes: &[u8]) -> [u8; 4] {
    bytes.try_into().expect("4 bytes")
}

pub fn not_done() {
    unimplemented!("later")
}
