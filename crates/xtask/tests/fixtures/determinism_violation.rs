// Fixture: sim-determinism violations. Never compiled — scanned as text.

use std::time::Instant;

pub fn now_ms() -> u128 {
    Instant::now().elapsed().as_millis()
}

pub fn wall_clock() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn wait() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}

pub fn entropy() -> u64 {
    let mut rng = rand::rngs::OsRng;
    rng.next_u64()
}
