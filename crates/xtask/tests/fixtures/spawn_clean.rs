//! Clean counterpart: the sanctioned spawn shapes inside the reactor
//! transport — a justified fixed-count thread, a lookalike identifier,
//! and a test-scoped spawn.

/// A fixed-size pool decided once at startup is exactly what SPAWN-OK
/// exists to sanction; the justification may span two comment lines.
pub fn start_pool(workers: usize) {
    for _ in 0..workers {
        // SPAWN-OK: fixed worker pool — sized once from the config at
        // spawn time, never per connection.
        std::thread::spawn(worker);
    }
}

/// `spawn_broker` merely *contains* the word: the rule matches whole
/// identifiers, not substrings.
pub fn boot(addr: &str) -> usize {
    spawn_broker(addr)
}

fn spawn_broker(_addr: &str) -> usize {
    0
}

fn worker() {}

#[cfg(test)]
mod tests {
    /// Test helpers may spawn freely; only library paths are in scope.
    #[test]
    fn spawns_in_tests_are_fine() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}
