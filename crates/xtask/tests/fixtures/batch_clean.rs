// Fixture: the sanctioned batched-rekey idioms — manual redacting
// Debug on the node-key arena and the pending batch, counts-only
// logging. Never compiled — scanned as text by tests/fixtures.rs.

#[derive(Clone)]
pub struct NodeKeys {
    keys: Vec<DeriveKey>,
}

impl std::fmt::Debug for NodeKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeKeys").finish_non_exhaustive()
    }
}

#[derive(Clone, Default)]
pub struct RekeyBatch {
    departed: BTreeSet<u64>,
}

impl std::fmt::Debug for RekeyBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RekeyBatch").finish_non_exhaustive()
    }
}

// Counts are not key material: batch sizes may be logged freely.
fn log_flush(pending: usize, refreshed: usize) {
    println!("flushed {pending} ops, {refreshed} nodes refreshed");
}
