//! Seeded channel-cycle violation: the dispatcher and a worker forward
//! to each other over bounded channels with blocking sends — if both
//! queues fill, each side blocks sending while the other blocks too,
//! and neither ever drains. The analyzer must name both channel
//! creation sites.

fn run_dispatcher() {
    fwd_to_worker();
    let m = drx.recv_timeout(TICK);
    apply(m);
}

fn run_broker_worker() {
    fwd_to_dispatcher();
    let m = wrx.try_recv();
    apply(m);
}

fn fwd_to_worker() {
    wtx.send(job()).ok();
}

fn fwd_to_dispatcher() {
    dtx.send(msg()).ok();
}

fn setup() {
    let (wtx, wrx) = bounded::<Job>(4);
    let (dtx, drx) = bounded::<Msg>(4);
    wire(wtx, wrx, dtx, drx);
}
