//! Seeded ciphertext-at-rest violations: the durable log reaching for
//! the plaintext event model and the wire codec.

use psguard_model::Event;

use crate::wire::{Message, Wire};

/// Decodes the stored payload back into a structured event before
/// writing — plaintext on the disk path.
pub fn append_decoded(payload: &[u8]) -> Vec<u8> {
    let event = Event::from_bytes(payload).unwrap_or_default();
    let mut buf = Vec::new();
    event.encode(&mut buf);
    buf
}

/// Frames a full protocol message into the segment file.
pub fn append_framed(msg: &Message) -> Vec<u8> {
    msg.to_bytes()
}

#[cfg(test)]
mod tests {
    // Test lines are exempt: fixtures may name Event here.
    use psguard_model::Event;

    #[test]
    fn roundtrip() {
        let _ = Event::default();
    }
}
