// Fixture: the sanctioned idioms — manual redacting Debug, no tainted
// interpolation. Never compiled — scanned as text by tests/fixtures.rs.

#[derive(Clone)]
pub struct DeriveKey([u8; 20]);

impl std::fmt::Debug for DeriveKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeriveKey({})", Redacted(&self.0))
    }
}

// Untainted bindings may be formatted freely.
fn log_progress(topic: &str, key_count: usize) {
    println!("granted {key_count} keys for {topic}");
}

// A tainted *word* inside a string literal is not an interpolation.
fn log_note() {
    println!("the master key never leaves the KDC");
}
