// Fixture: panic-free idioms — typed errors, test-scoped unwraps, and a
// justified PANIC-OK site. Never compiled — scanned as text.

pub fn lookup(map: &std::collections::HashMap<u32, u32>, k: u32) -> Option<u32> {
    map.get(&k).copied()
}

pub fn decode(bytes: &[u8]) -> Result<[u8; 4], WireError> {
    bytes.try_into().map_err(|_| WireError::Truncated)
}

pub fn fallback(v: Option<u32>) -> u32 {
    // unwrap_or is not a panic path.
    v.unwrap_or(0)
}

pub fn invariant(v: Option<u32>) -> u32 {
    v.expect("checked by caller") // PANIC-OK: construction guarantees Some
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
