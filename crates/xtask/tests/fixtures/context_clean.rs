// Fixture: the sanctioned treatment of reusable crypto contexts — manual
// redacting Debug impls, no Display, no Serialize. Never compiled —
// scanned as text by tests/fixtures.rs.

#[derive(Clone)]
pub struct PrfContext {
    inner: Sha1,
    outer: Sha1,
}

impl std::fmt::Debug for PrfContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrfContext").finish_non_exhaustive()
    }
}

#[derive(Clone)]
pub struct AesContext {
    cipher: Aes128,
}

impl std::fmt::Debug for AesContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesContext").finish_non_exhaustive()
    }
}

fn probe(ctx: &PrfContext, nonce: &[u8], tag: &Token) -> bool {
    ctx.verify(nonce, tag)
}
