//! Seeded confidentiality-taint violation: a locally constructed
//! plaintext event reaches a socket write through two intermediate
//! helpers. The analyzer must report the FULL chain
//! (build_and_ship -> forward -> emit -> write_all), not just the
//! sink line.

fn build_and_ship(w: &mut TcpStream) {
    let event = Event::builder("alarm").attr("zone", 7).build();
    forward(w, &event);
}

fn forward(w: &mut TcpStream, event: &Event) {
    emit(w, event);
}

fn emit(w: &mut TcpStream, event: &Event) {
    w.write_all(event.as_bytes()).ok();
}
