//! Clean counterpart for the taint fixtures: every flow seals the
//! plaintext through a sanitizer before it reaches a broker-visible
//! sink, or only ever handles opaque ciphertext bytes.

fn ship_sealed(w: &mut TcpStream, publisher: &Publisher) {
    let event = Event::builder("alarm").attr("zone", 7).build();
    let sealed = publisher.publish(event);
    w.write_all(&sealed).ok();
}

fn relay_opaque(w: &mut TcpStream, frame: &[u8]) {
    w.write_all(frame).ok();
}

fn persist_sealed(log: &mut LogWriter, publisher: &Publisher, batch: Vec<u8>) {
    let sealed = publisher.publish_batch(batch);
    write_frame(log, &sealed);
}
