//! Clean counterpart: the durable log handles payloads as opaque
//! already-encoded bytes only — the `Event` type never appears outside
//! doc prose, so nothing structured touches the disk path.

/// Appends one opaque payload, returning its record offset. The caller
/// (the dispatcher) encoded the event; the log neither knows nor cares
/// what the bytes mean — that is what keeps it encrypted-at-rest for
/// free.
pub fn append_opaque(segment: &mut Vec<u8>, payload: &[u8]) -> usize {
    let at = segment.len();
    segment.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    segment.extend_from_slice(payload);
    at
}

/// Reads the opaque payload back out, still undecoded.
pub fn read_opaque(segment: &[u8], at: usize) -> Option<&[u8]> {
    let len_bytes = segment.get(at..at + 4)?;
    let mut len = [0u8; 4];
    len.copy_from_slice(len_bytes);
    let len = u32::from_le_bytes(len) as usize;
    segment.get(at + 4..at + 4 + len)
}
