// Fixture: secret-hygiene violations on the batched-rekey types. Never
// compiled — scanned as text by tests/fixtures.rs.

#[derive(Debug, Clone)]
pub struct NodeKeys {
    keys: Vec<DeriveKey>,
}

#[derive(Clone, Serialize)]
pub struct RekeyBatch {
    departed: BTreeSet<u64>,
}

impl std::fmt::Display for GroupRekeyCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("coordinator")
    }
}

fn log_refresh(node_key: &DeriveKey) {
    println!("refreshed node key: {node_key:?}");
}
