// Fixture: every secret-hygiene violation class in one file. Never
// compiled — scanned as text by tests/fixtures.rs.

#[derive(Debug, Clone)]
pub struct DeriveKey([u8; 20]);

#[derive(Clone, Serialize)]
pub struct AesKey([u8; 16]);

impl std::fmt::Display for Kdc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("oops")
    }
}

fn log_key(topic_key: &DeriveKey) {
    println!("derived {topic_key:?}");
}

fn log_raw(raw_key: &[u8]) {
    eprintln!("bytes = {:x?}", raw_key);
}
