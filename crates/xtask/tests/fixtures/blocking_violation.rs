//! Seeded reactor-safety violation: the client reactor loop calls a
//! helper that does a blocking `.send` on a bounded channel — exactly
//! the back-pressure deadlock shape the readiness-driven design
//! forbids on reactor threads.

fn run_client_reactor() {
    let (etx, erx) = bounded::<Event>(64);
    pump(&etx);
    drain(&erx);
}

fn pump(etx: &Sender<Event>) {
    etx.send(next_event()).ok();
}

fn drain(erx: &Receiver<Event>) {
    while let Ok(ev) = erx.try_recv() {
        handle(ev);
    }
}
