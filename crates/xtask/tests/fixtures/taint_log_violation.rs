//! Seeded confidentiality-taint violation: a plaintext event reaches
//! the durable log through an intermediate helper. Scanned as if it
//! lived under `crates/siena/src/log/`, so the ciphertext-at-rest
//! scope backstop fires too (the log must not even name the model).

fn persist(log: &mut LogWriter) {
    let event = Event::builder("audit").attr("who", 9).build();
    append_plain(log, &event);
}

fn append_plain(log: &mut LogWriter, event: &Event) {
    write_frame(log, event.as_bytes());
}
