// Fixture: secret-hygiene violations on the reusable crypto contexts.
// Pad-absorbed digest states and expanded round keys are key-equivalent,
// so the contexts are tainted types. Never compiled — scanned as text by
// tests/fixtures.rs.

#[derive(Debug, Clone)]
pub struct PrfContext {
    inner: Sha1,
    outer: Sha1,
}

#[derive(Clone, Serialize)]
pub struct HmacContext<D> {
    inner: D,
    outer: D,
}

impl std::fmt::Display for AesContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.cipher)
    }
}
