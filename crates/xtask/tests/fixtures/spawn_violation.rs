//! Seeded thread-per-connection violations: unmarked spawns inside the
//! reactor transport — exactly the regression the rule exists to catch.

use std::net::TcpStream;
use std::thread;

/// A per-connection reader thread: the classic thread-per-connection
/// shape the reactor replaced. No SPAWN-OK justification → violation.
pub fn serve_connection(stream: TcpStream) {
    thread::spawn(move || pump(stream));
}

/// The Builder API spells it `.spawn(` but costs the same OS thread.
pub fn serve_named(stream: TcpStream) -> std::io::Result<()> {
    std::thread::Builder::new()
        .name("conn".into())
        .spawn(move || pump(stream))
        .map(|_| ())
}

fn pump(_stream: TcpStream) {}
