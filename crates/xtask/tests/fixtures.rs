//! Fixture-based rule tests: each rule family must catch its seeded
//! violation file and pass its clean counterpart, plus a self-check that
//! the live workspace (and its allowlist) stays clean.

use std::path::{Path, PathBuf};

use psguard_xtask::callgraph::CallGraph;
use psguard_xtask::lexer::lex;
use psguard_xtask::parser::{load, SourceFile};
use psguard_xtask::rules::{scan_file, Finding, Rule};
use psguard_xtask::symbols::SymbolTable;
use psguard_xtask::taint::TaintReport;
use psguard_xtask::{reactor_safety, taint};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Scans a fixture as if it lived at `rel_path` in the workspace.
fn scan(rel_path: &str, name: &str) -> Vec<Finding> {
    scan_file(rel_path, &lex(&fixture(name)))
}

fn load_fixtures(files: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolTable) {
    let loaded: Vec<SourceFile> = files
        .iter()
        .map(|(rel, n)| load(rel, &fixture(n)))
        .collect();
    let table = SymbolTable::build(loaded.iter().map(|f| &f.parsed));
    (loaded, table)
}

/// Runs the interprocedural taint pass over fixtures placed at the
/// given workspace-relative paths.
fn taint_on(files: &[(&str, &str)]) -> TaintReport {
    let (loaded, table) = load_fixtures(files);
    taint::run(&loaded, &table)
}

/// Runs the reactor-safety pass over fixtures with explicit entry
/// points.
fn reactor_on(files: &[(&str, &str)], entries: &[(&str, &str)]) -> Vec<Finding> {
    let (loaded, table) = load_fixtures(files);
    let graph = CallGraph::build(&table);
    reactor_safety::run(&loaded, &table, &graph, entries)
}

fn by_rule(findings: &[Finding], rule: Rule) -> Vec<&Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

fn hard_violations(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| !f.allowlisted).collect()
}

#[test]
fn secret_hygiene_catches_seeded_violations() {
    let findings = scan("crates/crypto/src/fixture.rs", "secret_violation.rs");
    let secret: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SecretHygiene)
        .collect();
    // derive(Debug) on DeriveKey, derive(Serialize) on AesKey, Display on
    // Kdc, {topic_key:?} interpolation, raw_key format argument.
    assert!(secret.len() >= 5, "{secret:#?}");
}

#[test]
fn secret_hygiene_passes_clean_snippet() {
    let findings = scan("crates/crypto/src/fixture.rs", "secret_clean.rs");
    let secret: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SecretHygiene)
        .collect();
    assert!(secret.is_empty(), "{secret:#?}");
}

#[test]
fn secret_hygiene_covers_reusable_crypto_contexts() {
    let findings = scan("crates/crypto/src/fixture.rs", "context_violation.rs");
    let secret: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SecretHygiene)
        .collect();
    // derive(Debug) on PrfContext, derive(Serialize) on HmacContext,
    // Display on AesContext.
    assert!(secret.len() >= 3, "{secret:#?}");
}

#[test]
fn secret_hygiene_accepts_redacted_crypto_contexts() {
    let findings = scan("crates/crypto/src/fixture.rs", "context_clean.rs");
    let secret: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SecretHygiene)
        .collect();
    assert!(secret.is_empty(), "{secret:#?}");
}

#[test]
fn secret_hygiene_covers_batched_rekey_types() {
    let findings = scan("crates/groupkey/src/fixture.rs", "batch_violation.rs");
    let secret: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SecretHygiene)
        .collect();
    // derive(Debug) on NodeKeys, derive(Serialize) on RekeyBatch,
    // Display on GroupRekeyCoordinator, {arena:?} interpolation.
    assert!(secret.len() >= 4, "{secret:#?}");
}

#[test]
fn secret_hygiene_accepts_redacted_batched_rekey_types() {
    let findings = scan("crates/groupkey/src/fixture.rs", "batch_clean.rs");
    let secret: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SecretHygiene)
        .collect();
    assert!(secret.is_empty(), "{secret:#?}");
}

#[test]
fn panic_freedom_catches_seeded_violations() {
    let findings = scan("crates/keys/src/fixture.rs", "panic_violation.rs");
    let panics: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::PanicFreedom)
        .collect();
    // unwrap(), expect(), unimplemented!.
    assert_eq!(panics.len(), 3, "{panics:#?}");
    assert!(panics.iter().all(|f| !f.allowlisted));
}

#[test]
fn panic_freedom_passes_clean_snippet_and_classifies_panic_ok() {
    let findings = scan("crates/keys/src/fixture.rs", "panic_clean.rs");
    let panics: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::PanicFreedom)
        .collect();
    // The only panic site carries a PANIC-OK justification; the
    // test-module unwrap and unwrap_or are not findings at all.
    assert_eq!(panics.len(), 1, "{panics:#?}");
    assert!(panics[0].allowlisted);
}

#[test]
fn panic_freedom_is_scoped_to_library_crates() {
    let findings = scan("crates/bench/src/fixture.rs", "panic_violation.rs");
    assert!(hard_violations(&findings).is_empty(), "{findings:#?}");
}

#[test]
fn determinism_catches_seeded_violations() {
    let findings = scan("crates/net/src/fixture.rs", "determinism_violation.rs");
    let det: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SimDeterminism)
        .collect();
    // Instant (use + call), SystemTime (return type + call), sleep, OsRng.
    assert!(det.len() >= 5, "{det:#?}");
}

#[test]
fn determinism_passes_clean_snippet_and_ignores_sleep_field() {
    let findings = scan("crates/net/src/fixture.rs", "determinism_clean.rs");
    let det: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SimDeterminism)
        .collect();
    assert!(det.is_empty(), "{det:#?}");
}

#[test]
fn determinism_rule_only_applies_in_scope() {
    let findings = scan("crates/siena/src/tcp.rs", "determinism_violation.rs");
    let det: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::SimDeterminism)
        .collect();
    assert!(det.is_empty(), "{det:#?}");
}

#[test]
fn thread_per_connection_catches_seeded_violations() {
    let findings = scan("crates/siena/src/reactor/fixture.rs", "spawn_violation.rs");
    let spawns: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::ThreadPerConnection)
        .collect();
    // thread::spawn per connection + Builder::new().spawn.
    assert_eq!(spawns.len(), 2, "{spawns:#?}");
    assert!(spawns.iter().all(|f| !f.allowlisted));
}

#[test]
fn thread_per_connection_passes_clean_snippet() {
    let findings = scan("crates/siena/src/reactor/fixture.rs", "spawn_clean.rs");
    let spawns: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::ThreadPerConnection)
        .collect();
    assert!(spawns.is_empty(), "{spawns:#?}");
}

#[test]
fn thread_per_connection_exempts_threaded_baseline() {
    // threaded.rs is the retained thread-per-connection baseline; its
    // spawns are the documented design, not a regression.
    let findings = scan("crates/siena/src/threaded.rs", "spawn_violation.rs");
    let spawns: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::ThreadPerConnection)
        .collect();
    assert!(spawns.is_empty(), "{spawns:#?}");
}

#[test]
fn ciphertext_at_rest_catches_seeded_violations() {
    // The ident ban now lives inside the taint pass as the log's scope
    // backstop; the seeded fixture must still trip it.
    let report = taint_on(&[("crates/siena/src/log/fixture.rs", "ciphertext_violation.rs")]);
    let cipher = by_rule(&report.findings, Rule::CiphertextAtRest);
    // use Event; use Message + Wire; Event::from_bytes; event.encode via
    // Wire; Message arg + to_bytes framing — at least the five named
    // identifier sites outside the test module.
    assert!(cipher.len() >= 5, "{cipher:#?}");
    assert!(cipher.iter().all(|f| !f.allowlisted));
}

#[test]
fn ciphertext_at_rest_passes_opaque_byte_handling() {
    let report = taint_on(&[("crates/siena/src/log/fixture.rs", "ciphertext_clean.rs")]);
    let cipher = by_rule(&report.findings, Rule::CiphertextAtRest);
    assert!(cipher.is_empty(), "{cipher:#?}");
}

#[test]
fn ciphertext_at_rest_only_applies_to_the_log() {
    // The dispatcher is exactly where events ARE decoded for replay
    // matching; the backstop must not leak outside `siena/src/log/`.
    let report = taint_on(&[(
        "crates/siena/src/reactor/broker.rs",
        "ciphertext_violation.rs",
    )]);
    let cipher = by_rule(&report.findings, Rule::CiphertextAtRest);
    assert!(cipher.is_empty(), "{cipher:#?}");
}

#[test]
fn taint_plaintext_to_socket_flagged_with_full_chain() {
    let report = taint_on(&[(
        "crates/siena/src/reactor/fixture.rs",
        "taint_socket_violation.rs",
    )]);
    let flows = by_rule(&report.findings, Rule::ConfidentialityTaint);
    assert_eq!(flows.len(), 1, "{flows:#?}");
    let msg = &flows[0].message;
    assert!(msg.contains("build_and_ship"), "{msg}");
    assert!(msg.contains("passed into `forward`"), "{msg}");
    assert!(msg.contains("passed into `emit`"), "{msg}");
    assert!(msg.contains("write_all"), "{msg}");
}

#[test]
fn taint_plaintext_to_log_flagged_with_full_chain() {
    let report = taint_on(&[("crates/siena/src/log/fixture.rs", "taint_log_violation.rs")]);
    let flows = by_rule(&report.findings, Rule::ConfidentialityTaint);
    assert_eq!(flows.len(), 1, "{flows:#?}");
    let msg = &flows[0].message;
    assert!(msg.contains("passed into `append_plain`"), "{msg}");
    assert!(msg.contains("write_frame"), "{msg}");
    // Under `log/` the ident-ban backstop fires as well: the fixture
    // names `Event` on the disk path.
    assert!(
        !by_rule(&report.findings, Rule::CiphertextAtRest).is_empty(),
        "{:#?}",
        report.findings
    );
}

#[test]
fn taint_plaintext_to_format_sink_flagged_with_full_chain() {
    let report = taint_on(&[("crates/siena/src/fixture.rs", "taint_format_violation.rs")]);
    let flows = by_rule(&report.findings, Rule::ConfidentialityTaint);
    assert_eq!(flows.len(), 1, "{flows:#?}");
    let msg = &flows[0].message;
    assert!(msg.contains("diagnose"), "{msg}");
    assert!(msg.contains("passed into `dump`"), "{msg}");
}

#[test]
fn taint_sealed_flows_pass_clean() {
    let report = taint_on(&[("crates/siena/src/reactor/fixture.rs", "taint_clean.rs")]);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert!(report.justified.is_empty());
}

const REACTOR_FIXTURE: &str = "crates/siena/src/reactor/fixture.rs";

#[test]
fn blocking_send_in_client_reactor_flagged_with_chain() {
    let findings = reactor_on(
        &[(REACTOR_FIXTURE, "blocking_violation.rs")],
        &[(REACTOR_FIXTURE, "run_client_reactor")],
    );
    let blocking = by_rule(&findings, Rule::ReactorBlocking);
    assert_eq!(blocking.len(), 1, "{blocking:#?}");
    let msg = &blocking[0].message;
    assert!(msg.contains(".send"), "{msg}");
    assert!(msg.contains("`pump`"), "{msg}");
}

#[test]
fn nonblocking_reactor_passes_clean() {
    let findings = reactor_on(
        &[(REACTOR_FIXTURE, "blocking_clean.rs")],
        &[(REACTOR_FIXTURE, "run_client_reactor")],
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn bounded_channel_cycle_flagged() {
    let findings = reactor_on(
        &[(REACTOR_FIXTURE, "cycle_violation.rs")],
        &[
            (REACTOR_FIXTURE, "run_dispatcher"),
            (REACTOR_FIXTURE, "run_broker_worker"),
        ],
    );
    let cycles = by_rule(&findings, Rule::ChannelCycle);
    assert!(!cycles.is_empty(), "{findings:#?}");
}

#[test]
fn try_send_escape_breaks_the_cycle() {
    let findings = reactor_on(
        &[(REACTOR_FIXTURE, "cycle_clean.rs")],
        &[
            (REACTOR_FIXTURE, "run_dispatcher"),
            (REACTOR_FIXTURE, "run_broker_worker"),
        ],
    );
    assert!(
        by_rule(&findings, Rule::ChannelCycle).is_empty(),
        "{findings:#?}"
    );
}

/// Self-check: the live tree passes `psguard-xtask check`, which includes
/// validating that every allowlist entry references a file that still
/// exists and that budgets match the PANIC-OK counts exactly.
#[test]
fn workspace_and_allowlist_are_clean() {
    let root = workspace_root();
    let report = psguard_xtask::run_check(&root).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        report.is_clean(),
        "workspace check failed:\n{}",
        psguard_xtask::render(&report)
    );
    assert!(report.files_scanned > 50, "walker found too few files");
}

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
