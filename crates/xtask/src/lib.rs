//! `psguard-xtask` — workspace static analysis for the PSGuard suite.
//!
//! The `check` subcommand walks every `crates/*/src/**/*.rs` file, lexes
//! it with the hand-rolled tokenizer in [`lexer`], parses items with
//! [`parser`], and runs two layers of analysis:
//!
//! * **Per-file rules** ([`rules`], DESIGN.md §12): secret hygiene,
//!   panic-freedom (budgeted by the `// PANIC-OK:` allowlist in
//!   [`allowlist`]), sim determinism, hot-path allocation, and the
//!   thread-per-connection spawn ban.
//! * **Whole-workspace passes** (DESIGN.md §17): the confidentiality
//!   taint analysis in [`taint`] over the [`symbols`]/[`callgraph`]
//!   pipeline (budgeted by the `// TAINT-OK:` allowlist), the
//!   reactor-safety lints in [`reactor_safety`], and the
//!   workspace-lints inheritance check in [`manifests`].
//!
//! Every rule family always reports: a failure in one family (including
//! a malformed allowlist) never masks findings from the others.

pub mod allowlist;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod manifests;
pub mod parser;
pub mod reactor_safety;
pub mod rules;
pub mod symbols;
pub mod taint;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use rules::{Finding, Rule};

/// Everything `check` found.
#[derive(Debug, Default)]
pub struct Report {
    /// Hard rule violations (never allowlisted), across all families.
    pub violations: Vec<Finding>,
    /// Panic sites justified with `// PANIC-OK:`, per file.
    pub justified: BTreeMap<String, u32>,
    /// Taint flows justified with `// TAINT-OK:`, per file.
    pub taint_justified: BTreeMap<String, u32>,
    /// Panic-allowlist budget problems.
    pub budget_issues: Vec<allowlist::BudgetIssue>,
    /// Taint-allowlist budget problems.
    pub taint_budget_issues: Vec<allowlist::BudgetIssue>,
    /// Malformed allowlist files. Reported alongside everything else so
    /// a broken allowlist can't mask rule findings.
    pub allowlist_errors: Vec<String>,
    /// Files whose items the analysis parser could not fully recover —
    /// a gap would silently drop call-graph nodes, so it fails the check.
    pub parse_gaps: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: u32,
    /// Number of functions in the workspace call graph.
    pub fns_analyzed: u32,
}

impl Report {
    /// True when the tree passes.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
            && self.budget_issues.is_empty()
            && self.taint_budget_issues.is_empty()
            && self.allowlist_errors.is_empty()
            && self.parse_gaps.is_empty()
    }
}

/// A failure of the checker itself (I/O) — distinct from the tree
/// failing the check.
#[derive(Debug)]
pub enum CheckError {
    Io {
        path: PathBuf,
        error: std::io::Error,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Io { path, error } => write!(f, "{}: {error}", path.display()),
        }
    }
}

impl std::error::Error for CheckError {}

/// Runs the full check against the workspace rooted at `root`.
pub fn run_check(root: &Path) -> Result<Report, CheckError> {
    let mut report = Report::default();
    let mut files: Vec<parser::SourceFile> = Vec::new();

    for file in workspace_sources(root)? {
        let rel = rel_path(root, &file);
        let source = std::fs::read_to_string(&file).map_err(|error| CheckError::Io {
            path: file.clone(),
            error,
        })?;
        let loaded = parser::load(&rel, &source);
        report.files_scanned += 1;
        for finding in rules::scan_file(&rel, &loaded.lexed) {
            if finding.rule == Rule::PanicFreedom && finding.allowlisted {
                *report.justified.entry(rel.clone()).or_insert(0) += 1;
            } else {
                report.violations.push(finding);
            }
        }
        if !loaded.parsed.fully_parsed() {
            report.parse_gaps.push(format!(
                "{rel}: parsed {} of {} fn items",
                loaded.parsed.fns_parsed, loaded.parsed.fn_keywords_seen
            ));
        }
        files.push(loaded);
    }

    // Whole-workspace passes over the symbol table and call graph.
    let table = symbols::SymbolTable::build(files.iter().map(|f| &f.parsed));
    let graph = callgraph::CallGraph::build(&table);
    report.fns_analyzed = table.fns.len() as u32;

    let taint_report = taint::run(&files, &table);
    report.violations.extend(taint_report.findings);
    report.taint_justified = taint_report.justified;

    report.violations.extend(reactor_safety::run(
        &files,
        &table,
        &graph,
        config::REACTOR_ENTRY_POINTS,
    ));

    report
        .violations
        .extend(manifests::check_workspace(root, &crate_names(root)?));

    // Allowlist reconciliation. Parse errors are reported, not fatal:
    // every other family above has already contributed its findings.
    let (panic_list, panic_errs) = read_allowlist(root, config::ALLOWLIST_PATH)?;
    let (taint_list, taint_errs) = read_allowlist(root, config::TAINT_ALLOWLIST_PATH)?;
    report.allowlist_errors.extend(panic_errs);
    report.allowlist_errors.extend(taint_errs);
    let exists = |rel: &str| root.join(rel).is_file();
    report.budget_issues = allowlist::reconcile(&panic_list, &report.justified, exists);
    report.taint_budget_issues = allowlist::reconcile(&taint_list, &report.taint_justified, exists);

    Ok(report)
}

/// Reads and parses one allowlist file; a malformed file yields an empty
/// list plus an error string for the report.
fn read_allowlist(
    root: &Path,
    rel: &str,
) -> Result<(allowlist::Allowlist, Vec<String>), CheckError> {
    let path = root.join(rel);
    match std::fs::read_to_string(&path) {
        Ok(text) => match allowlist::parse(&text) {
            Ok(list) => Ok((list, Vec::new())),
            Err(e) => Ok((allowlist::Allowlist::default(), vec![format!("{rel}: {e}")])),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Ok((allowlist::Allowlist::default(), Vec::new()))
        }
        Err(error) => Err(CheckError::Io { path, error }),
    }
}

/// Names of all workspace crates (directories under `crates/`).
fn crate_names(root: &Path) -> Result<Vec<String>, CheckError> {
    let mut names = Vec::new();
    for entry in read_dir_sorted(&root.join("crates"))? {
        if entry.is_dir() {
            if let Some(name) = entry.file_name().and_then(|n| n.to_str()) {
                names.push(name.to_owned());
            }
        }
    }
    Ok(names)
}

/// Collects every `crates/*/src/**/*.rs` file, sorted for stable output.
fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, CheckError> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in read_dir_sorted(&crates_dir)? {
        let src = entry.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), CheckError> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, CheckError> {
    let rd = std::fs::read_dir(dir).map_err(|error| CheckError::Io {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|error| CheckError::Io {
            path: dir.to_path_buf(),
            error,
        })?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Workspace-relative `/`-separated path for rule matching and output.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders the report the way `cargo`-adjacent tools do: one line per
/// problem, then a summary.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("error: {v}\n"));
    }
    for b in &report.budget_issues {
        out.push_str(&format!("error: [allowlist] {b}\n"));
    }
    for b in &report.taint_budget_issues {
        out.push_str(&format!("error: [taint-allowlist] {b}\n"));
    }
    for e in &report.allowlist_errors {
        out.push_str(&format!("error: [allowlist] {e}\n"));
    }
    for g in &report.parse_gaps {
        out.push_str(&format!("error: [parser] {g}\n"));
    }
    let justified_total: u32 = report.justified.values().sum();
    let taint_justified_total: u32 = report.taint_justified.values().sum();
    out.push_str(&format!(
        "psguard-xtask check: {} file(s), {} fn(s), {} violation(s), {} allowlist issue(s), \
         {} justified panic site(s), {} justified taint site(s)\n",
        report.files_scanned,
        report.fns_analyzed,
        report.violations.len(),
        report.budget_issues.len()
            + report.taint_budget_issues.len()
            + report.allowlist_errors.len(),
        justified_total,
        taint_justified_total,
    ));
    out
}

/// Renders the report as a JSON document for CI artifacts.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"clean\": {},\n", report.is_clean()));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"fns_analyzed\": {},\n", report.fns_analyzed));

    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&v.file),
            v.line,
            json_str(&v.rule.to_string()),
            json_str(&v.message)
        ));
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    json_str_list(
        &mut out,
        "budget_issues",
        report
            .budget_issues
            .iter()
            .map(|b| b.to_string())
            .chain(report.taint_budget_issues.iter().map(|b| b.to_string()))
            .chain(report.allowlist_errors.iter().cloned()),
    );
    out.push_str(",\n");
    json_str_list(&mut out, "parse_gaps", report.parse_gaps.iter().cloned());
    out.push_str(",\n");

    let justified_total: u32 = report.justified.values().sum();
    let taint_justified_total: u32 = report.taint_justified.values().sum();
    out.push_str(&format!(
        "  \"justified_panic_sites\": {justified_total},\n  \
         \"justified_taint_sites\": {taint_justified_total}\n}}\n"
    ));
    out
}

fn json_str_list(out: &mut String, key: &str, items: impl Iterator<Item = String>) {
    out.push_str(&format!("  \"{key}\": ["));
    let mut any = false;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}", json_str(&item)));
        any = true;
    }
    if any {
        out.push_str("\n  ");
    }
    out.push(']');
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_shape() {
        let mut report = Report {
            files_scanned: 3,
            ..Report::default()
        };
        report.violations.push(Finding {
            file: "crates/a/src/lib.rs".into(),
            line: 7,
            rule: Rule::ConfidentialityTaint,
            message: "plaintext \"x\" leaks".into(),
            allowlisted: false,
        });
        let json = render_json(&report);
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"rule\": \"confidentiality-taint\""));
        assert!(json.contains("\\\"x\\\""));
    }
}
