//! `psguard-xtask` — workspace static analysis for the PSGuard suite.
//!
//! Three rule families (see [`rules`] and DESIGN.md §12):
//! secret hygiene, panic-freedom, and sim determinism. The binary's
//! `check` subcommand walks every `crates/*/src/**/*.rs` file, lexes it
//! with the hand-rolled tokenizer in [`lexer`], applies the rules from
//! [`config`], and reconciles `// PANIC-OK:` sites against the
//! shrink-only budget file parsed by [`allowlist`].

pub mod allowlist;
pub mod config;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use rules::{Finding, Rule};

/// Everything `check` found.
#[derive(Debug, Default)]
pub struct Report {
    /// Hard rule violations (never allowlisted).
    pub violations: Vec<Finding>,
    /// Panic sites justified with `// PANIC-OK:`, per file.
    pub justified: BTreeMap<String, u32>,
    /// Allowlist budget problems.
    pub budget_issues: Vec<allowlist::BudgetIssue>,
    /// Number of files scanned.
    pub files_scanned: u32,
}

impl Report {
    /// True when the tree passes.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.budget_issues.is_empty()
    }
}

/// A failure of the checker itself (I/O, malformed allowlist) — distinct
/// from the tree failing the check.
#[derive(Debug)]
pub enum CheckError {
    Io {
        path: PathBuf,
        error: std::io::Error,
    },
    Allowlist(allowlist::ParseError),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            CheckError::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Runs the full check against the workspace rooted at `root`.
pub fn run_check(root: &Path) -> Result<Report, CheckError> {
    let mut report = Report::default();

    for file in workspace_sources(root)? {
        let rel = rel_path(root, &file);
        let source = std::fs::read_to_string(&file).map_err(|error| CheckError::Io {
            path: file.clone(),
            error,
        })?;
        let lexed = lexer::lex(&source);
        report.files_scanned += 1;
        for finding in rules::scan_file(&rel, &lexed) {
            if finding.rule == Rule::PanicFreedom && finding.allowlisted {
                *report.justified.entry(rel.clone()).or_insert(0) += 1;
            } else {
                report.violations.push(finding);
            }
        }
    }

    let allowlist_path = root.join(config::ALLOWLIST_PATH);
    let list = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => allowlist::parse(&text).map_err(CheckError::Allowlist)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => allowlist::Allowlist::default(),
        Err(error) => {
            return Err(CheckError::Io {
                path: allowlist_path,
                error,
            })
        }
    };
    report.budget_issues =
        allowlist::reconcile(&list, &report.justified, |rel| root.join(rel).is_file());

    Ok(report)
}

/// Collects every `crates/*/src/**/*.rs` file, sorted for stable output.
fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, CheckError> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in read_dir_sorted(&crates_dir)? {
        let src = entry.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), CheckError> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, CheckError> {
    let rd = std::fs::read_dir(dir).map_err(|error| CheckError::Io {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|error| CheckError::Io {
            path: dir.to_path_buf(),
            error,
        })?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Workspace-relative `/`-separated path for rule matching and output.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders the report the way `cargo`-adjacent tools do: one line per
/// problem, then a summary.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("error: {v}\n"));
    }
    for b in &report.budget_issues {
        out.push_str(&format!("error: [allowlist] {b}\n"));
    }
    let justified_total: u32 = report.justified.values().sum();
    out.push_str(&format!(
        "psguard-xtask check: {} file(s), {} violation(s), {} allowlist issue(s), \
         {} justified panic site(s)\n",
        report.files_scanned,
        report.violations.len(),
        report.budget_issues.len(),
        justified_total,
    ));
    out
}
