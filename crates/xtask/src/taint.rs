//! Interprocedural confidentiality taint analysis (DESIGN.md §17).
//!
//! The invariant: plaintext event content must never reach broker-visible
//! bytes — sockets, the durable log, debug output. Sources are the
//! plaintext model types ([`config::PLAINTEXT_SOURCE_TYPES`]) plus the
//! closure of structs that embed them; sinks are raw byte writes and
//! frame writes inside the `taint-sink` scope plus format macros inside
//! the `taint-format-sink` scope; sanitizers are the seal/encrypt entry
//! points ([`config::SANITIZER_FNS`]).
//!
//! The pass computes a per-function summary to fixpoint — "does it
//! return plaintext", "does a parameter flow to a sink (and through
//! which chain)" — then reports a violation wherever plaintext
//! *originates* (a model-type constructor or a call to a
//! plaintext-returning function) and reaches a sink, rendering the full
//! source→…→sink call chain. Parameter-typed flows only ever produce
//! summaries, not violations: `impl Wire for Event` (the retained
//! classic-family codec) writes its plaintext parameter to the socket
//! *by design*, and only a caller feeding it a concrete plaintext value
//! can complete a leak.
//!
//! A finding can be justified with `// TAINT-OK: <why>` on or just above
//! the origin line; justified sites are budgeted by the shrink-only
//! allowlist at [`config::TAINT_ALLOWLIST_PATH`], which is empty today.
//!
//! The old `ciphertext-at-rest` ident ban survives here as a scope
//! backstop: flows the call-graph pass cannot see (e.g. a decode written
//! inline in the log module) still trip the ban on naming the plaintext
//! model inside `siena/src/log/`.

use std::collections::{BTreeMap, BTreeSet};

use crate::config;
use crate::lexer::Tok;
use crate::parser::{SourceFile, Stmt, TypeRef};
use crate::rules::{Finding, Rule};
use crate::symbols::{FnNode, SymbolTable};

/// One hop of a rendered source→sink chain.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainStep {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What happens at this hop.
    pub what: String,
}

type Chain = Vec<ChainStep>;

/// Chains are capped so mutually recursive summaries cannot balloon.
const MAX_CHAIN: usize = 8;

/// Per-function dataflow summary.
#[derive(Debug, Clone, Default)]
struct Summary {
    /// The function's return value carries plaintext.
    returns_taint: bool,
    /// A parameter flows to a broker-visible sink; the chain runs from
    /// the sink (or forwarding call) inside this function down to the
    /// raw sink.
    sink: Option<Chain>,
}

/// What the taint pass found.
#[derive(Debug, Default)]
pub struct TaintReport {
    /// Hard violations (taint flows plus ciphertext-at-rest backstop).
    pub findings: Vec<Finding>,
    /// `// TAINT-OK:` justified flow sites, per file.
    pub justified: BTreeMap<String, u32>,
}

/// Runs the pass over the whole (possibly virtual) workspace.
pub fn run(files: &[SourceFile], table: &SymbolTable) -> TaintReport {
    let sources = source_type_closure(files);
    let mut summaries: Vec<Summary> = Vec::new();
    for node in &table.fns {
        summaries.push(Summary {
            returns_taint: ret_mentions_source(node, &sources),
            sink: None,
        });
    }

    // Fixpoint: summaries only ever gain facts, so this terminates in at
    // most `fns` rounds; real call chains converge in a handful.
    for _ in 0..summaries.len().max(1) {
        let mut changed = false;
        for (id, node) in table.fns.iter().enumerate() {
            if is_sanitizer(&node.item.name) {
                continue;
            }
            let r = analyze_fn(node, table, &sources, &summaries);
            if r.returns_taint && !summaries[id].returns_taint {
                summaries[id].returns_taint = true;
                changed = true;
            }
            if summaries[id].sink.is_none() {
                if let Some(chain) = r.sink {
                    summaries[id].sink = Some(chain);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: collect locally-originated flows as findings.
    let lexed_by_rel: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let mut report = TaintReport::default();
    let mut seen = BTreeSet::new();
    for node in &table.fns {
        if is_sanitizer(&node.item.name) {
            continue;
        }
        let r = analyze_fn(node, table, &sources, &summaries);
        for v in r.violations {
            if !seen.insert((node.rel_path.clone(), v.origin_line, v.chain.clone())) {
                continue;
            }
            let justified = lexed_by_rel
                .get(node.rel_path.as_str())
                .is_some_and(|f| f.lexed.is_taint_ok_near(v.origin_line));
            if justified {
                *report.justified.entry(node.rel_path.clone()).or_insert(0) += 1;
                continue;
            }
            let chain = v
                .chain
                .iter()
                .map(|s| format!("{}:{} ({})", s.file, s.line, s.what))
                .collect::<Vec<_>>()
                .join(" -> ");
            report.findings.push(Finding {
                file: node.rel_path.clone(),
                line: v.origin_line,
                rule: Rule::ConfidentialityTaint,
                message: format!(
                    "plaintext reaches a broker-visible sink: {} in `{}`, then {}; \
                     seal via the psguard-crypto entry points before the trust boundary, \
                     or justify with // TAINT-OK: <why>",
                    v.origin_what,
                    node.display_name(),
                    chain,
                ),
                allowlisted: false,
            });
        }
    }

    // Scope backstop: the durable log must not even name the plaintext
    // model (subsumes the PR 7 ciphertext-at-rest rule).
    for f in files {
        if config::ciphertext_scope_contains(&f.rel) {
            ciphertext_backstop(f, &mut report.findings);
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// A locally-originated plaintext→sink flow inside one function.
#[derive(Debug)]
struct Violation {
    origin_line: u32,
    origin_what: String,
    chain: Chain,
}

#[derive(Debug, Default)]
struct FnResult {
    returns_taint: bool,
    sink: Option<Chain>,
    violations: Vec<Violation>,
}

/// Whether a type mention counts as a source: the ident is a source type
/// and the path is either unqualified or rooted in the model crate
/// (`F::Event`, an associated type of a generic transport, is not).
fn is_source_mention(t: &TypeRef, sources: &BTreeSet<String>) -> bool {
    sources.contains(&t.ident)
        && t.root
            .as_deref()
            .is_none_or(|r| config::MODEL_PATH_ROOTS.contains(&r))
}

fn is_sanitizer(name: &str) -> bool {
    config::SANITIZER_FNS.contains(&name)
}

/// Source types plus every struct (in the plaintext-handling crates)
/// that embeds one: a container holding an `Event` field is as tainted
/// as the `Event`. Restricted to the model/client/routing crates so
/// generic broker containers don't join the closure spuriously.
fn source_type_closure(files: &[SourceFile]) -> BTreeSet<String> {
    let mut set: BTreeSet<String> = config::PLAINTEXT_SOURCE_TYPES
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    loop {
        let mut changed = false;
        for f in files {
            if !matches!(
                f.parsed.crate_name.as_str(),
                "model" | "psguard" | "routing"
            ) {
                continue;
            }
            for s in &f.parsed.structs {
                if f.lexed.is_test_line(s.line) || set.contains(&s.name) {
                    continue;
                }
                if s.field_types.iter().any(|t| is_source_mention(t, &set)) {
                    set.insert(s.name.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            return set;
        }
    }
}

/// Return-type idents with `Self` resolved to the impl's self type.
fn effective_ret(node: &FnNode) -> Vec<TypeRef> {
    node.item
        .ret
        .iter()
        .map(|t| {
            if t.ident == "Self" {
                TypeRef {
                    ident: node.item.qual.clone().unwrap_or_else(|| "Self".to_owned()),
                    root: None,
                }
            } else {
                t.clone()
            }
        })
        .collect()
}

fn ret_mentions_source(node: &FnNode, sources: &BTreeSet<String>) -> bool {
    node.item.has_ret
        && effective_ret(node)
            .iter()
            .any(|t| is_source_mention(t, sources))
}

/// Whether the declared return type cannot carry plaintext content, so
/// tail-expression taint must not set `returns_taint` (kills the
/// `fn matches(..) -> bool` class of false positives).
fn ret_is_safe(node: &FnNode, sources: &BTreeSet<String>) -> bool {
    if !node.item.has_ret {
        return true;
    }
    let ret = effective_ret(node);
    if ret.iter().any(|t| is_source_mention(t, sources)) {
        return false;
    }
    ret.iter()
        .all(|t| config::SAFE_RETURN_IDENTS.contains(&t.ident.as_str()))
}

/// Strictly resolves a call for *origin* purposes: a qualified call only
/// matches its exact `Qual::name` items (no bare-name fallback — a
/// known-different qualifier must not alias into the model's
/// constructors), and method calls never originate taint on their own
/// (their receiver would already have tainted the statement).
fn strict_origin_returns_taint(
    call: &crate::parser::CallExpr,
    table: &SymbolTable,
    summaries: &[Summary],
) -> bool {
    if !call.receiver.is_empty() {
        return false;
    }
    let ids = table.resolve_strict(&call.name, call.qual.as_deref());
    ids.iter().any(|&id| summaries[id].returns_taint)
}

/// The intra-procedural analysis of one function body.
fn analyze_fn(
    node: &FnNode,
    table: &SymbolTable,
    sources: &BTreeSet<String>,
    summaries: &[Summary],
) -> FnResult {
    let rel = &node.rel_path;
    let in_sink_scope = config::rule_scope_contains("taint-sink", rel);
    let in_format_scope = config::rule_scope_contains("taint-format-sink", rel);

    // Bindings tainted by parameter type.
    let mut param_taint: BTreeSet<String> = BTreeSet::new();
    for p in &node.item.params {
        if p.ty.iter().any(|t| is_source_mention(t, sources)) {
            param_taint.extend(p.names.iter().cloned());
        }
    }
    // Bindings tainted by a local origin, with where/why.
    let mut local: BTreeMap<String, (u32, String)> = BTreeMap::new();

    // Phase 1: propagate binding taint to a fixpoint (loops can carry
    // taint backward through the statement list).
    for _ in 0..6 {
        let mut changed = false;
        for stmt in &node.item.stmts {
            if stmt_is_sanitized(stmt) {
                continue;
            }
            let (param_hit, local_hit) =
                stmt_taint(stmt, &param_taint, &local, table, sources, summaries);
            if !param_hit && local_hit.is_none() {
                continue;
            }
            for b in stmt.lets.iter().chain(stmt.mut_borrows.iter()) {
                if let Some(origin) = &local_hit {
                    if !local.contains_key(b) {
                        local.insert(b.clone(), origin.clone());
                        changed = true;
                    }
                } else if !local.contains_key(b) && param_taint.insert(b.clone()) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: with stable binding taint, record sinks and returns.
    let mut result = FnResult::default();
    let n_stmts = node.item.stmts.len();
    for (si, stmt) in node.item.stmts.iter().enumerate() {
        if stmt_is_sanitized(stmt) {
            continue;
        }
        let (param_hit, local_hit) =
            stmt_taint(stmt, &param_taint, &local, table, sources, summaries);
        if !param_hit && local_hit.is_none() {
            continue;
        }
        if let Some(chain) = stmt_sink_chain(
            stmt,
            rel,
            &node.display_name(),
            in_sink_scope,
            in_format_scope,
            table,
            summaries,
        ) {
            if let Some((oline, owhat)) = &local_hit {
                result.violations.push(Violation {
                    origin_line: *oline,
                    origin_what: owhat.clone(),
                    chain,
                });
            } else if result.sink.is_none() {
                result.sink = Some(chain);
            }
        }
        let is_tail = si + 1 == n_stmts && !stmt.ends_semi;
        if (stmt.is_return || is_tail) && local_hit.is_some() && !ret_is_safe(node, sources) {
            result.returns_taint = true;
        }
    }
    result
}

/// A statement containing a sanitizer call neither propagates taint nor
/// counts as a sink: its value crosses into ciphertext.
fn stmt_is_sanitized(stmt: &Stmt) -> bool {
    stmt.calls
        .iter()
        .any(|c| !c.is_macro && is_sanitizer(&c.name))
}

/// Computes whether a statement is tainted: via a parameter-tainted
/// atom, a locally-tainted atom, or a taint origin in the statement
/// itself (model constructor / strict call to a plaintext returner).
fn stmt_taint(
    stmt: &Stmt,
    param_taint: &BTreeSet<String>,
    local: &BTreeMap<String, (u32, String)>,
    table: &SymbolTable,
    sources: &BTreeSet<String>,
    summaries: &[Summary],
) -> (bool, Option<(u32, String)>) {
    let param_hit = stmt.atoms.iter().any(|a| param_taint.contains(a));
    let mut local_hit: Option<(u32, String)> =
        stmt.atoms.iter().find_map(|a| local.get(a).cloned());
    if local_hit.is_none() {
        for c in &stmt.calls {
            if c.is_macro {
                continue;
            }
            if let Some(q) = &c.qual {
                if sources.contains(q) {
                    local_hit = Some((
                        c.line,
                        format!("plaintext `{q}` obtained via `{q}::{}`", c.name),
                    ));
                    break;
                }
            }
            if strict_origin_returns_taint(c, table, summaries) {
                local_hit = Some((c.line, format!("plaintext returned by `{}(..)`", c.name)));
                break;
            }
        }
    }
    (param_hit, local_hit)
}

/// Whether a tainted statement hits a sink, and through which chain.
fn stmt_sink_chain(
    stmt: &Stmt,
    rel: &str,
    fn_display: &str,
    in_sink_scope: bool,
    in_format_scope: bool,
    table: &SymbolTable,
    summaries: &[Summary],
) -> Option<Chain> {
    for c in &stmt.calls {
        if c.is_macro {
            if in_format_scope && config::FORMAT_MACROS.contains(&c.name.as_str()) {
                return Some(vec![ChainStep {
                    file: rel.to_owned(),
                    line: c.line,
                    what: format!("format/debug sink `{}!` in `{fn_display}`", c.name),
                }]);
            }
            continue;
        }
        if in_sink_scope && config::RAW_SINK_METHODS.contains(&c.name.as_str()) {
            return Some(vec![ChainStep {
                file: rel.to_owned(),
                line: c.line,
                what: format!("raw byte write `.{}(..)` in `{fn_display}`", c.name),
            }]);
        }
        if config::SINK_FNS.contains(&c.name.as_str()) {
            return Some(vec![ChainStep {
                file: rel.to_owned(),
                line: c.line,
                what: format!("frame write `{}(..)` in `{fn_display}`", c.name),
            }]);
        }
        // A callee one or more hops from a sink: extend its chain.
        for id in table.resolve_call(&c.name, c.qual.as_deref(), rel) {
            if let Some(sub) = &summaries[id].sink {
                if sub.len() >= MAX_CHAIN {
                    continue;
                }
                let mut chain = vec![ChainStep {
                    file: rel.to_owned(),
                    line: c.line,
                    what: format!("passed into `{}`", table.fns[id].display_name()),
                }];
                chain.extend(sub.iter().cloned());
                return Some(chain);
            }
        }
    }
    None
}

/// The ciphertext-at-rest ident ban (PR 7), now a backstop of the taint
/// pass: the durable log must treat payloads as opaque bytes, so naming
/// the plaintext model or the wire codec there is a hard violation even
/// when no call-graph flow is visible.
fn ciphertext_backstop(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in &f.lexed.tokens {
        if f.lexed.is_test_line(t.line) {
            continue;
        }
        if let Tok::Ident(name) = &t.tok {
            if config::CIPHERTEXT_BANNED_IDENTS.contains(&name.as_str()) {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: t.line,
                    rule: Rule::CiphertextAtRest,
                    message: format!(
                        "`{name}` inside the durable log: the log stores opaque \
                         already-encoded bytes only; decode/encode events at the \
                         dispatcher, never on the disk path"
                    ),
                    allowlisted: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::load;

    fn run_on(files: &[(&str, &str)]) -> TaintReport {
        let loaded: Vec<SourceFile> = files.iter().map(|(r, s)| load(r, s)).collect();
        let table = SymbolTable::build(loaded.iter().map(|f| &f.parsed));
        run(&loaded, &table)
    }

    #[test]
    fn direct_plaintext_to_socket_write_flagged_with_chain() {
        let r = run_on(&[(
            "crates/siena/src/reactor/demo.rs",
            "fn leak(w: &mut W) {\n  let event = Event::builder(\"t\").build();\n  \
             w.write_all(event.as_bytes());\n}\n",
        )]);
        assert_eq!(r.findings.len(), 1, "{:#?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.rule, Rule::ConfidentialityTaint);
        assert!(f.message.contains("write_all"), "{}", f.message);
    }

    #[test]
    fn flow_through_intermediate_helper_builds_full_chain() {
        let r = run_on(&[(
            "crates/siena/src/reactor/demo.rs",
            "fn origin(w: &mut W) {\n  let event = Event::builder(\"t\").build();\n  \
             forward(w, &event);\n}\n\
             fn forward(w: &mut W, event: &Event) {\n  emit(w, event);\n}\n\
             fn emit(w: &mut W, event: &Event) {\n  w.write_all(event.as_bytes());\n}\n",
        )]);
        assert_eq!(r.findings.len(), 1, "{:#?}", r.findings);
        let msg = &r.findings[0].message;
        assert!(msg.contains("passed into `forward`"), "{msg}");
        assert!(msg.contains("passed into `emit`"), "{msg}");
        assert!(msg.contains("write_all"), "{msg}");
    }

    #[test]
    fn sanitized_flow_is_clean() {
        let r = run_on(&[(
            "crates/siena/src/reactor/demo.rs",
            "fn ok(w: &mut W, p: &Publisher) {\n  let event = Event::builder(\"t\").build();\n  \
             let sealed = p.publish(event);\n  w.write_all(&sealed);\n}\n",
        )]);
        assert!(r.findings.is_empty(), "{:#?}", r.findings);
    }

    #[test]
    fn param_typed_codec_is_summary_not_violation() {
        // The classic-family codec (`impl Wire for Event`) legitimately
        // writes its plaintext parameter — only a caller completing the
        // source→sink path is a violation.
        let r = run_on(&[(
            "crates/siena/src/wire.rs",
            "impl Wire for Event {\n  fn encode(&self, w: &mut W) {\n    \
             w.write_all(&self.bytes);\n  }\n}\n",
        )]);
        assert!(r.findings.is_empty(), "{:#?}", r.findings);
    }

    #[test]
    fn format_sink_in_broker_scope_flagged_but_not_client_side() {
        let broker = run_on(&[(
            "crates/siena/src/index.rs",
            "fn debug_dump() {\n  let filter = Filter::builder().build();\n  \
             println!(\"{filter:?}\");\n}\n",
        )]);
        assert_eq!(broker.findings.len(), 1, "{:#?}", broker.findings);
        let client = run_on(&[(
            "crates/psguard/src/pipeline.rs",
            "fn debug_dump() {\n  let filter = Filter::builder().build();\n  \
             println!(\"{filter:?}\");\n}\n",
        )]);
        assert!(client.findings.is_empty(), "{:#?}", client.findings);
    }

    #[test]
    fn taint_ok_marker_moves_finding_to_justified() {
        let r = run_on(&[(
            "crates/siena/src/reactor/demo.rs",
            "fn leak(w: &mut W) {\n  // TAINT-OK: fixture exercising the budget path\n  \
             let event = Event::builder(\"t\").build();\n  w.write_all(event.as_bytes());\n}\n",
        )]);
        assert!(r.findings.is_empty(), "{:#?}", r.findings);
        assert_eq!(
            r.justified.get("crates/siena/src/reactor/demo.rs"),
            Some(&1)
        );
    }

    #[test]
    fn generic_associated_event_is_not_a_source() {
        let r = run_on(&[(
            "crates/siena/src/reactor/demo.rs",
            "fn deliver<F: Fam>(w: &mut W, event: F::Event) {\n  \
             w.write_all(event.as_bytes());\n}\n",
        )]);
        assert!(r.findings.is_empty(), "{:#?}", r.findings);
    }

    #[test]
    fn struct_embedding_event_joins_the_closure() {
        let r = run_on(&[
            (
                "crates/psguard/src/holder.rs",
                "pub struct Pending { pub event: Event }\n\
                 impl Pending { pub fn take(self) -> Event { self.event } }\n",
            ),
            (
                "crates/siena/src/reactor/demo.rs",
                "fn leak(w: &mut W) {\n  let pending = Pending::fetch();\n  \
                 w.write_all(pending.as_bytes());\n}\n\
                 impl Pending { pub fn fetch() -> Pending { todo_source() } }\n",
            ),
        ]);
        // `Pending::fetch` returns a closure member ⇒ origin.
        assert_eq!(r.findings.len(), 1, "{:#?}", r.findings);
    }

    #[test]
    fn ciphertext_backstop_still_bans_model_idents_in_log() {
        let r = run_on(&[(
            "crates/siena/src/log/mod.rs",
            "use psguard_model::Event;\nfn bad(p: &[u8]) { let _ = Event::from_bytes(p); }\n",
        )]);
        let backstop: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::CiphertextAtRest)
            .collect();
        assert_eq!(backstop.len(), 3, "{backstop:#?}");
    }

    #[test]
    fn ciphertext_backstop_allows_opaque_bytes_and_test_code() {
        let r = run_on(&[(
            "crates/siena/src/log/mod.rs",
            "pub struct EventLog { scratch: Vec<u8> }\n\
             impl EventLog { fn append(&mut self, payload: &[u8]) { let _ = payload; } }\n\
             #[cfg(test)]\nmod tests {\n  use psguard_model::Event;\n}\n",
        )]);
        assert!(r.findings.is_empty(), "{:#?}", r.findings);
    }

    #[test]
    fn ciphertext_backstop_stops_at_the_log_boundary() {
        let r = run_on(&[(
            "crates/siena/src/reactor/broker.rs",
            "fn replay(p: &[u8]) { let n = decode_len(p); use_it(n); }\n",
        )]);
        assert!(
            r.findings.iter().all(|f| f.rule != Rule::CiphertextAtRest),
            "{:#?}",
            r.findings
        );
    }

    #[test]
    fn untainted_writes_in_sink_scope_are_clean() {
        let r = run_on(&[(
            "crates/siena/src/reactor/demo.rs",
            "fn pump(w: &mut W, frame: &SharedFrame) {\n  w.write_all(frame.bytes());\n}\n",
        )]);
        assert!(r.findings.is_empty(), "{:#?}", r.findings);
    }
}
