//! The rule families: secret hygiene, panic-freedom, sim determinism,
//! hot-path allocation. Each rule takes a lexed file plus its
//! workspace-relative path and emits [`Finding`]s.

use crate::config;
use crate::lexer::{LexedFile, Tok};

/// Which rule family produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Key material reachable from Debug/Display/Serialize or a format
    /// string.
    SecretHygiene,
    /// `unwrap()`/`expect(`/panicking macro on a non-test library path.
    PanicFreedom,
    /// Wall clock, sleep, or OS randomness inside the deterministic
    /// simulator's scope.
    SimDeterminism,
    /// A per-call allocating serialization (`.to_bytes()` / `.to_vec()`)
    /// on a dissemination hot path that must encode through the
    /// `FramePool` instead.
    HotPathAlloc,
    /// A `thread::spawn` inside the reactor transport without a
    /// `// SPAWN-OK:` justification. The reactor's contract is a fixed
    /// thread count decided at spawn time; an unmarked spawn is a
    /// regression toward thread-per-connection.
    ThreadPerConnection,
    /// The plaintext event model (or its wire codec) referenced inside
    /// the durable log. The log stores already-encoded opaque bytes —
    /// that is what makes it encrypted-at-rest for free under the
    /// honest-but-curious broker; (de)serializing `Event` there puts
    /// structured plaintext on the disk path. Emitted by the taint
    /// pass's scope backstop ([`crate::taint`]).
    CiphertextAtRest,
    /// An interprocedural plaintext→sink flow found by the taint pass:
    /// a plaintext model value originates (constructor or
    /// plaintext-returning call) and reaches a broker-visible sink
    /// (socket/frame write, log write, format macro) without passing a
    /// sanitizer. See [`crate::taint`] and DESIGN.md §17.
    ConfidentialityTaint,
    /// A blocking operation (bounded-channel `send`, bare `recv`,
    /// `thread::sleep`) reachable from a reactor entry point. See
    /// [`crate::reactor_safety`].
    ReactorBlocking,
    /// Two reactor components with blocking bounded sends toward each
    /// other — a deadlock candidate. See [`crate::reactor_safety`].
    ChannelCycle,
    /// A workspace crate that does not inherit `[workspace.lints]`
    /// (and is not a sanctioned unsafe-audit override). See
    /// [`crate::manifests`].
    LintsInheritance,
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rule::SecretHygiene => f.write_str("secret-hygiene"),
            Rule::PanicFreedom => f.write_str("panic-freedom"),
            Rule::SimDeterminism => f.write_str("sim-determinism"),
            Rule::HotPathAlloc => f.write_str("hot-path-alloc"),
            Rule::ThreadPerConnection => f.write_str("thread-per-connection"),
            Rule::CiphertextAtRest => f.write_str("ciphertext-at-rest"),
            Rule::ConfidentialityTaint => f.write_str("confidentiality-taint"),
            Rule::ReactorBlocking => f.write_str("reactor-blocking"),
            Rule::ChannelCycle => f.write_str("channel-cycle"),
            Rule::LintsInheritance => f.write_str("lints-inheritance"),
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule family.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
    /// True when the site carries a `// PANIC-OK:` justification and is
    /// therefore subject to the allowlist budget instead of being a hard
    /// violation (panic-freedom only).
    pub allowlisted: bool,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Runs every applicable rule over one file.
pub fn scan_file(rel_path: &str, lexed: &LexedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    secret_hygiene(rel_path, lexed, &mut findings);
    if config::panic_scope_contains(rel_path) {
        panic_freedom(rel_path, lexed, &mut findings);
    }
    if config::determinism_scope_contains(rel_path) {
        sim_determinism(rel_path, lexed, &mut findings);
    }
    if config::hot_path_contains(rel_path) {
        hot_path_alloc(rel_path, lexed, &mut findings);
    }
    if config::spawn_scope_contains(rel_path) {
        thread_per_connection(rel_path, lexed, &mut findings);
    }
    findings
}

fn ident_at(lexed: &LexedFile, i: usize) -> Option<&str> {
    match lexed.tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(lexed: &LexedFile, i: usize) -> Option<char> {
    match lexed.tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Secret hygiene: tainted types must not derive `Debug`/`Serialize` or
/// implement `Display`/`Serialize`; no format string may interpolate a
/// tainted binding.
fn secret_hygiene(rel_path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let n = toks.len();
    let mut i = 0usize;
    // Derives seen since the last item started, with the line they sit on.
    let mut pending_derives: Vec<(String, u32)> = Vec::new();
    while i < n {
        match &toks[i].tok {
            // Attribute: collect derive lists, pass through others.
            Tok::Punct('#') if punct_at(lexed, i + 1) == Some('[') => {
                let mut j = i + 2;
                let mut depth = 1usize;
                let mut attr_idents: Vec<(String, u32)> = Vec::new();
                while j < n && depth > 0 {
                    match &toks[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        Tok::Ident(s) => attr_idents.push((s.clone(), toks[j].line)),
                        _ => {}
                    }
                    j += 1;
                }
                if attr_idents.first().map(|(s, _)| s.as_str()) == Some("derive") {
                    pending_derives.extend(attr_idents.into_iter().skip(1));
                }
                i = j;
            }
            Tok::Ident(kw) if kw == "struct" || kw == "enum" => {
                if let Some(name) = ident_at(lexed, i + 1) {
                    if config::TAINTED_TYPES.contains(&name) {
                        for (derived, line) in &pending_derives {
                            if config::FORBIDDEN_DERIVES.contains(&derived.as_str()) {
                                out.push(Finding {
                                    file: rel_path.to_owned(),
                                    line: *line,
                                    rule: Rule::SecretHygiene,
                                    message: format!(
                                        "tainted type `{name}` derives `{derived}`; \
                                         write a redacting manual impl instead"
                                    ),
                                    allowlisted: false,
                                });
                            }
                        }
                    }
                }
                pending_derives.clear();
                i += 1;
            }
            // Any other item keyword ends the influence of pending derives.
            Tok::Ident(kw)
                if kw == "fn" || kw == "impl" || kw == "mod" || kw == "trait" || kw == "use" =>
            {
                pending_derives.clear();
                if kw == "impl" {
                    check_forbidden_impl(rel_path, lexed, i, out);
                }
                i += 1;
            }
            Tok::Ident(m)
                if config::FORMAT_MACROS.contains(&m.as_str())
                    && punct_at(lexed, i + 1) == Some('!') =>
            {
                i = check_format_macro(rel_path, lexed, i, out);
            }
            _ => i += 1,
        }
    }
}

/// Flags `impl Display for TaintedType` / `impl Serialize for TaintedType`.
fn check_forbidden_impl(
    rel_path: &str,
    lexed: &LexedFile,
    impl_idx: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    let n = toks.len();
    let mut j = impl_idx + 1;
    let mut trait_hit: Option<String> = None;
    let mut target_hit: Option<String> = None;
    let mut seen_for = false;
    while j < n {
        match &toks[j].tok {
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Ident(s) if s == "for" => seen_for = true,
            Tok::Ident(s) => {
                if !seen_for && config::FORBIDDEN_IMPLS.contains(&s.as_str()) {
                    trait_hit = Some(s.clone());
                }
                if seen_for && config::TAINTED_TYPES.contains(&s.as_str()) {
                    target_hit = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    if let (Some(tr), Some(ty)) = (trait_hit, target_hit) {
        out.push(Finding {
            file: rel_path.to_owned(),
            line: toks[impl_idx].line,
            rule: Rule::SecretHygiene,
            message: format!("tainted type `{ty}` must not implement `{tr}`"),
            allowlisted: false,
        });
    }
}

/// Scans one format-macro invocation for tainted bindings; returns the
/// token index just past the macro's argument list.
fn check_format_macro(
    rel_path: &str,
    lexed: &LexedFile,
    macro_idx: usize,
    out: &mut Vec<Finding>,
) -> usize {
    let toks = &lexed.tokens;
    let n = toks.len();
    let mut j = macro_idx + 2;
    let open = match punct_at(lexed, j) {
        Some(c @ ('(' | '[' | '{')) => c,
        _ => return macro_idx + 1,
    };
    let close = match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    };
    let mut depth = 0usize;
    while j < n {
        match &toks[j].tok {
            Tok::Punct(c) if *c == open => depth += 1,
            Tok::Punct(c) if *c == close => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            Tok::Str(content) => {
                for name in interpolated_idents(content) {
                    if config::binding_is_tainted(&name) {
                        out.push(Finding {
                            file: rel_path.to_owned(),
                            line: toks[j].line,
                            rule: Rule::SecretHygiene,
                            message: format!(
                                "format string interpolates tainted binding `{{{name}}}`"
                            ),
                            allowlisted: false,
                        });
                    }
                }
            }
            Tok::Ident(name) if config::binding_is_tainted(name.as_str()) => {
                out.push(Finding {
                    file: rel_path.to_owned(),
                    line: toks[j].line,
                    rule: Rule::SecretHygiene,
                    message: format!("format argument references tainted binding `{name}`"),
                    allowlisted: false,
                });
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Extracts the identifiers interpolated by `{name}` / `{name:spec}`
/// placeholders in a format string (skipping `{{` escapes and positional
/// placeholders).
fn interpolated_idents(fmt: &str) -> Vec<String> {
    let chars: Vec<char> = fmt.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        if chars[i] == '{' {
            if i + 1 < n && chars[i + 1] == '{' {
                i += 2;
                continue;
            }
            let mut name = String::new();
            let mut j = i + 1;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                name.push(chars[j]);
                j += 1;
            }
            if !name.is_empty() && !name.chars().all(|c| c.is_ascii_digit()) {
                out.push(name);
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Panic-freedom: `.unwrap()` / `.expect(` / `panic!`-family macros on
/// non-test lines. Sites carrying a `// PANIC-OK:` justification are
/// reported as allowlist candidates, which [`crate::allowlist`] budgets.
fn panic_freedom(rel_path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        let line = t.line;
        if lexed.is_test_line(line) {
            continue;
        }
        let hit: Option<String> = match &t.tok {
            Tok::Ident(m)
                if config::PANIC_METHODS.contains(&m.as_str())
                    && punct_at(lexed, i.wrapping_sub(1)) == Some('.')
                    && i >= 1
                    && punct_at(lexed, i + 1) == Some('(') =>
            {
                Some(format!(".{m}(..)"))
            }
            Tok::Ident(m)
                if config::PANIC_MACROS.contains(&m.as_str())
                    && punct_at(lexed, i + 1) == Some('!') =>
            {
                Some(format!("{m}!"))
            }
            _ => None,
        };
        if let Some(what) = hit {
            let allowlisted = lexed.is_panic_ok_line(line);
            out.push(Finding {
                file: rel_path.to_owned(),
                line,
                rule: Rule::PanicFreedom,
                message: if allowlisted {
                    format!("{what} on a library path (justified by PANIC-OK)")
                } else {
                    format!("{what} on a library path; use a typed error or add // PANIC-OK: <why>")
                },
                allowlisted,
            });
        }
    }
}

/// Sim determinism: no wall clock, sleep, or OS randomness in scope.
fn sim_determinism(rel_path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if let Tok::Ident(name) = &t.tok {
            if config::NONDETERMINISTIC_IDENTS.contains(&name.as_str()) {
                // `Instant` only counts when used, not in a doc path like
                // `std::time::Instant` inside a `use` — but a `use` already
                // makes it callable, so flag those too. The single
                // exception: `.sleep` as a field name would be a false
                // positive; require call or path position for `sleep`.
                if name == "sleep" && punct_at(lexed, i + 1) != Some('(') {
                    continue;
                }
                out.push(Finding {
                    file: rel_path.to_owned(),
                    line: t.line,
                    rule: Rule::SimDeterminism,
                    message: format!(
                        "`{name}` is non-deterministic; the simulator scope must use \
                         seeded RNG and virtual time"
                    ),
                    allowlisted: false,
                });
            }
        }
    }
}

/// Hot-path allocation: `.to_bytes()` / `.to_vec()` on a non-test line
/// of a dissemination hot-path file. Fan-out there must serialize once
/// through the `FramePool` and share the resulting `Arc` frame; a
/// per-call conversion silently reintroduces one allocation (and one
/// copy) per recipient.
fn hot_path_alloc(rel_path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        let line = t.line;
        if lexed.is_test_line(line) {
            continue;
        }
        if let Tok::Ident(m) = &t.tok {
            if config::HOT_PATH_ALLOC_METHODS.contains(&m.as_str())
                && i >= 1
                && punct_at(lexed, i - 1) == Some('.')
                && punct_at(lexed, i + 1) == Some('(')
            {
                out.push(Finding {
                    file: rel_path.to_owned(),
                    line,
                    rule: Rule::HotPathAlloc,
                    message: format!(
                        ".{m}(..) allocates per call on the dissemination hot path; \
                         encode once via FramePool and fan out the shared frame"
                    ),
                    allowlisted: false,
                });
            }
        }
    }
}

/// Thread-per-connection: a `spawn(` call on a non-test line of the
/// reactor transport. The fixed sanctioned spawn sites (worker pool,
/// accept loop, dispatcher, client reactor) carry a `// SPAWN-OK:`
/// justification on or just above the call; those produce no finding.
/// Anything else — typically a per-connection reader/writer creeping
/// back in — is a hard violation.
fn thread_per_connection(rel_path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        let line = t.line;
        if lexed.is_test_line(line) {
            continue;
        }
        if let Tok::Ident(m) = &t.tok {
            if m == "spawn" && punct_at(lexed, i + 1) == Some('(') && !lexed.is_spawn_ok_near(line)
            {
                out.push(Finding {
                    file: rel_path.to_owned(),
                    line,
                    rule: Rule::ThreadPerConnection,
                    message: "spawn(..) in the fixed-thread reactor transport; host the \
                              connection on the worker pool, or justify a fixed-count \
                              thread with // SPAWN-OK: <why>"
                        .to_owned(),
                    allowlisted: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_file(path, &lex(src))
    }

    #[test]
    fn derive_debug_on_tainted_type_flagged() {
        let f = scan(
            "crates/crypto/src/key.rs",
            "#[derive(Debug, Clone)]\npub struct DeriveKey([u8; 20]);\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::SecretHygiene);
    }

    #[test]
    fn manual_redacting_debug_is_fine() {
        let f = scan(
            "crates/crypto/src/key.rs",
            "pub struct DeriveKey([u8; 20]);\nimpl std::fmt::Debug for DeriveKey {}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn display_impl_on_tainted_type_flagged() {
        let f = scan(
            "crates/crypto/src/key.rs",
            "impl std::fmt::Display for AesKey { }\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn format_interpolation_of_tainted_binding_flagged() {
        let f = scan(
            "crates/keys/src/kdc.rs",
            "fn f(topic_key: &DeriveKey) { println!(\"k = {topic_key:?}\"); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn unwrap_on_library_path_flagged_but_not_in_tests() {
        let src = "fn lib(x: Option<u8>) { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t(x: Option<u8>) { x.unwrap(); }\n}\n";
        let f = scan("crates/keys/src/kdc.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn panic_ok_marks_allowlisted() {
        let f = scan(
            "crates/keys/src/kdc.rs",
            "fn lib(x: Option<u8>) { x.unwrap(); } // PANIC-OK: invariant\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].allowlisted);
    }

    #[test]
    fn bench_crate_is_out_of_panic_scope() {
        let f = scan(
            "crates/bench/src/perf.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn instant_in_sim_scope_flagged_but_tcp_exempt() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert!(scan("crates/siena/src/tcp.rs", src).is_empty());
        let f = scan("crates/net/src/sim.rs", src);
        assert!(f.iter().all(|x| x.rule == Rule::SimDeterminism));
        assert!(f.len() >= 2);
    }

    #[test]
    fn to_bytes_in_tcp_hot_path_flagged() {
        let f = scan(
            "crates/siena/src/tcp.rs",
            "fn fan_out(msg: &Msg) { for w in writers { offer(w, msg.to_bytes()); } }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::HotPathAlloc);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn to_vec_in_tcp_hot_path_flagged() {
        let f = scan(
            "crates/siena/src/tcp.rs",
            "fn f(frame: &[u8]) { queue.push(frame.to_vec()); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::HotPathAlloc);
    }

    #[test]
    fn to_bytes_outside_hot_path_not_flagged() {
        let f = scan(
            "crates/siena/src/wire.rs",
            "fn f(msg: &Msg) -> Vec<u8> { msg.to_bytes() }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn to_bytes_on_hot_path_test_lines_not_flagged() {
        let src = "fn lib(m: &Msg) -> Vec<u8> { pool.encode(m) }\n\
                   #[cfg(test)]\nmod tests {\n  fn t(m: &Msg) { m.to_bytes(); }\n}\n";
        let f = scan("crates/siena/src/tcp.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn similar_names_are_not_hot_path_allocs() {
        let f = scan(
            "crates/siena/src/tcp.rs",
            "fn f(s: &str) { s.to_owned(); to_vec(s); let to_bytes = 1; }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unmarked_spawn_in_reactor_flagged() {
        let f = scan(
            "crates/siena/src/reactor/worker.rs",
            "fn accept(s: TcpStream) { std::thread::spawn(move || serve(s)); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::ThreadPerConnection);
    }

    #[test]
    fn spawn_ok_marker_above_the_call_suppresses() {
        let f = scan(
            "crates/siena/src/reactor/broker.rs",
            "// SPAWN-OK: fixed worker pool, sized once\n\
             // at startup from the config.\n\
             fn pool() { std::thread::spawn(worker); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn spawn_in_tests_and_lookalike_names_are_fine() {
        let src = "fn start() { spawn_broker(addr); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { std::thread::spawn(|| {}); }\n}\n";
        let f = scan("crates/siena/src/reactor/broker.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn spawn_in_threaded_baseline_is_out_of_scope() {
        let f = scan(
            "crates/siena/src/threaded.rs",
            "fn reader(s: TcpStream) { std::thread::spawn(move || pump(s)); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let f = scan(
            "crates/keys/src/kdc.rs",
            "fn lib(x: Option<u8>) { x.unwrap_or_else(|| 0); x.unwrap_or(1); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
