//! Workspace call graph over the [`crate::symbols`] table.
//!
//! Edges come from the statement-level call expressions the parser
//! recovered, resolved through the symbol table. Method calls resolve by
//! bare name to every candidate — an over-approximation that is the
//! right bias for reachability-style lints (see `symbols.rs`).

use std::collections::{BTreeSet, VecDeque};

use crate::symbols::{FnId, SymbolTable};

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Caller.
    pub from: FnId,
    /// Callee.
    pub to: FnId,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The resolved call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per fn, indexed by [`FnId`].
    pub out: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Resolves every call expression in every function body.
    pub fn build(table: &SymbolTable) -> Self {
        let mut out = vec![Vec::new(); table.fns.len()];
        for (from, node) in table.fns.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for stmt in &node.item.stmts {
                for call in &stmt.calls {
                    if call.is_macro {
                        continue;
                    }
                    for to in table.resolve_call(&call.name, call.qual.as_deref(), &node.rel_path) {
                        if to != from && seen.insert(to) {
                            out[from].push(Edge {
                                from,
                                to,
                                line: call.line,
                            });
                        }
                    }
                }
            }
        }
        CallGraph { out }
    }

    /// BFS from `roots`; returns, for each reachable fn, the edge that
    /// first reached it (`None` for roots). Use [`CallGraph::path_to`]
    /// to rebuild the chain.
    pub fn reach_from(&self, roots: &[FnId]) -> Vec<Option<Option<Edge>>> {
        let mut state: Vec<Option<Option<Edge>>> = vec![None; self.out.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if r < state.len() && state[r].is_none() {
                state[r] = Some(None);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &e in &self.out[f] {
                if state[e.to].is_none() {
                    state[e.to] = Some(Some(e));
                    queue.push_back(e.to);
                }
            }
        }
        state
    }

    /// Reconstructs the root→`target` call chain from a
    /// [`CallGraph::reach_from`] result. Returns fn ids root-first.
    pub fn path_to(state: &[Option<Option<Edge>>], target: FnId) -> Vec<FnId> {
        let mut path = vec![target];
        let mut cur = target;
        let mut guard = 0;
        while let Some(Some(e)) = state.get(cur).and_then(|s| s.as_ref()) {
            cur = e.from;
            path.push(cur);
            guard += 1;
            if guard > state.len() {
                break;
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::symbols::SymbolTable;

    fn graph(src: &str) -> (SymbolTable, CallGraph) {
        let p = parse("crates/a/src/lib.rs", &lex(src));
        let t = SymbolTable::build(&[p]);
        let g = CallGraph::build(&t);
        (t, g)
    }

    #[test]
    fn edges_reachability_and_paths() {
        let (t, g) = graph(
            "fn entry() { middle(); }\nfn middle() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        );
        let entry = t.find_in_file("crates/a/src/lib.rs", "entry").unwrap();
        let leaf = t.find_in_file("crates/a/src/lib.rs", "leaf").unwrap();
        let island = t.find_in_file("crates/a/src/lib.rs", "island").unwrap();
        let state = g.reach_from(&[entry]);
        assert!(state[leaf].is_some());
        assert!(state[island].is_none());
        let path = CallGraph::path_to(&state, leaf);
        let names: Vec<_> = path.iter().map(|&id| t.fns[id].item.name.clone()).collect();
        assert_eq!(names, vec!["entry", "middle", "leaf"]);
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let (t, g) = graph("impl Conn { fn flush(&self) {} }\nfn pump(c: &Conn) { c.flush(); }\n");
        let pump = t.find_in_file("crates/a/src/lib.rs", "pump").unwrap();
        let flush = t.find_in_file("crates/a/src/lib.rs", "flush").unwrap();
        let state = g.reach_from(&[pump]);
        assert!(state[flush].is_some());
    }
}
