//! Workspace-lints inheritance rule: every crate must inherit
//! `[workspace.lints]` (which forbids `unsafe_code`), so a new crate
//! can't silently opt out of the workspace's safety posture. The only
//! sanctioned overrides are in [`config::LINTS_OVERRIDE_CRATES`] —
//! crates that need `deny` instead of `forbid` for one audited
//! `#[allow(unsafe_code)]` item each — and those must carry *exactly*
//! the configured override.

use std::path::Path;

use crate::config;
use crate::rules::{Finding, Rule};

/// Checks every `crates/*/Cargo.toml` under `root`. `read` abstracts the
/// filesystem so fixtures can inject manifests; production callers pass
/// `std::fs::read_to_string` semantics via [`check_workspace`].
pub fn check(crate_names: &[String], read: impl Fn(&str) -> Option<String>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for name in crate_names {
        let rel = format!("crates/{name}/Cargo.toml");
        let Some(text) = read(&rel) else {
            findings.push(finding(
                &rel,
                format!("crate `{name}` has no readable Cargo.toml"),
            ));
            continue;
        };
        let override_required = config::LINTS_OVERRIDE_CRATES
            .iter()
            .find(|(c, _)| c == name)
            .map(|(_, req)| *req);
        match override_required {
            None => {
                if !has_workspace_lints(&text) {
                    findings.push(finding(
                        &rel,
                        format!(
                            "crate `{name}` does not inherit workspace lints; add \
                             `[lints]` / `workspace = true` (unsafe code stays forbidden)"
                        ),
                    ));
                }
            }
            Some(required) => {
                if has_workspace_lints(&text) {
                    // Inheriting is also acceptable (stricter than the
                    // sanctioned override) — nothing to flag.
                } else if !has_override(&text, required) {
                    findings.push(finding(
                        &rel,
                        format!(
                            "crate `{name}` must carry exactly `[lints.rust]` / `{required}` \
                             (the sanctioned unsafe-audit override) or inherit workspace lints"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// Disk-backed variant over the real workspace.
pub fn check_workspace(root: &Path, crate_names: &[String]) -> Vec<Finding> {
    check(crate_names, |rel| {
        std::fs::read_to_string(root.join(rel)).ok()
    })
}

fn finding(rel: &str, message: String) -> Finding {
    Finding {
        file: rel.to_owned(),
        line: 1,
        rule: Rule::LintsInheritance,
        message,
        allowlisted: false,
    }
}

/// Whether the manifest has a `[lints]` table whose first entry is
/// `workspace = true`.
fn has_workspace_lints(text: &str) -> bool {
    section_lines(text, "[lints]").any(|l| normalized(l) == "workspace=true")
}

fn has_override(text: &str, required: &str) -> bool {
    let want = normalized(required);
    section_lines(text, "[lints.rust]").any(|l| normalized(l) == want)
}

/// Lines belonging to the named TOML table (until the next `[` header).
fn section_lines<'a>(text: &'a str, header: &'a str) -> impl Iterator<Item = &'a str> {
    let mut in_section = false;
    text.lines().filter(move |raw| {
        let line = raw.trim();
        if line.starts_with('[') {
            in_section = line == header;
            return false;
        }
        in_section && !line.is_empty() && !line.starts_with('#')
    })
}

fn normalized(line: &str) -> String {
    line.chars().filter(|c| !c.is_whitespace()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn inheriting_crate_is_clean_and_missing_section_flagged() {
        let good = "[package]\nname = \"a\"\n\n[lints]\nworkspace = true\n";
        let bad = "[package]\nname = \"a\"\n";
        assert!(check(&names(&["model"]), |_| Some(good.into())).is_empty());
        let f = check(&names(&["model"]), |_| Some(bad.into()));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::LintsInheritance);
    }

    #[test]
    fn sanctioned_override_must_match_exactly() {
        let exact = "[lints.rust]\nunsafe_code = \"deny\"\n";
        let wrong = "[lints.rust]\nunsafe_code = \"allow\"\n";
        assert!(check(&names(&["crypto"]), |_| Some(exact.into())).is_empty());
        assert_eq!(check(&names(&["crypto"]), |_| Some(wrong.into())).len(), 1);
    }

    #[test]
    fn override_crate_may_also_just_inherit() {
        let inherit = "[lints]\nworkspace = true\n";
        assert!(check(&names(&["bench"]), |_| Some(inherit.into())).is_empty());
    }

    #[test]
    fn unreadable_manifest_flagged() {
        assert_eq!(check(&names(&["ghost"]), |_| None).len(), 1);
    }

    #[test]
    fn lints_header_in_other_section_does_not_count() {
        let sneaky = "[dependencies]\nworkspace = true\n";
        assert_eq!(check(&names(&["model"]), |_| Some(sneaky.into())).len(), 1);
    }
}
