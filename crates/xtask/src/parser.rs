//! A lightweight item parser on top of the [`crate::lexer`] token stream.
//!
//! The taint and reactor-safety passes need more structure than a flat
//! ident scan: function items with their parameter/return types, impl
//! blocks (so methods get qualified names), struct fields (so the type
//! taint closure can see plaintext-bearing containers), and the call
//! expressions inside each function body. The workspace has no crates.io
//! access, so `syn` is not an option; this parser recovers exactly the
//! shape those passes consume and nothing more.
//!
//! Coverage is a tested invariant: [`ParsedFile::fully_parsed`] must hold
//! for every `.rs` file in the workspace (see `tests/analysis.rs`), so a
//! construct this parser cannot handle fails CI instead of silently
//! dropping items from the call graph.

use crate::lexer::{LexedFile, Tok, Token};

/// One identifier appearing in a type position, with the root of its
/// path when the mention is `::`-qualified (`F::Event` → root `F`,
/// `psguard_model::Event` → root `psguard_model`, bare `Event` → none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeRef {
    /// The (final) identifier.
    pub ident: String,
    /// First segment of the path when qualified.
    pub root: Option<String>,
}

/// One function parameter: pattern binding names plus type identifiers.
#[derive(Debug, Clone, Default)]
pub struct Param {
    /// Names bound by the pattern (`mut buf` → `buf`; `(a, b)` → both).
    pub names: Vec<String>,
    /// Identifiers mentioned in the declared type. For a `self`
    /// receiver this is the enclosing impl's self type.
    pub ty: Vec<TypeRef>,
}

/// One call expression (or macro invocation) inside a statement.
#[derive(Debug, Clone)]
pub struct CallExpr {
    /// Callee name (method or function identifier, macro name).
    pub name: String,
    /// `Qual::name(..)` path qualifier, when present.
    pub qual: Option<String>,
    /// For method calls, the chain of idents before the final `.`
    /// (`slot.etx.send(..)` → `["slot", "etx"]`). Empty for free calls.
    pub receiver: Vec<String>,
    /// 1-based line of the callee token.
    pub line: u32,
    /// True for `name!(..)` macro invocations.
    pub is_macro: bool,
}

/// One approximate statement of a function body: the flat facts the
/// dataflow passes consume. Statements are split on `;` and block
/// boundaries; a `match` arm list may fold into one statement, which
/// only ever over-approximates taint.
#[derive(Debug, Clone, Default)]
pub struct Stmt {
    /// 1-based line of the first token.
    pub line: u32,
    /// Names bound by a `let` / `if let` / `for` pattern in this statement.
    pub lets: Vec<String>,
    /// Identifiers in a `let` type ascription.
    pub ty: Vec<TypeRef>,
    /// Calls and macro invocations, in order.
    pub calls: Vec<CallExpr>,
    /// Root identifiers referenced (receivers, arguments, plain uses) —
    /// excludes call/macro names and field/method names after `.`.
    pub atoms: Vec<String>,
    /// Identifiers passed as `&mut name` (mutated by the statement).
    pub mut_borrows: Vec<String>,
    /// String literal contents (format-string interpolation checks).
    pub strs: Vec<String>,
    /// Statement starts with `return`.
    pub is_return: bool,
    /// Statement was terminated by `;` (false for tail expressions).
    pub ends_semi: bool,
}

/// A parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing impl/trait self type, when any (`Conn::offer`).
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Identifiers in the declared return type (empty when none).
    pub ret: Vec<TypeRef>,
    /// Whether the signature declares `-> ...` at all.
    pub has_ret: bool,
    /// Body statements (empty for `;`-terminated declarations).
    pub stmts: Vec<Stmt>,
    /// Whether the `fn` keyword sits on a test-scoped line.
    pub is_test: bool,
}

/// A struct/enum item and the type identifiers of its fields/payloads.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Identifiers appearing in field (or enum payload) types.
    pub field_types: Vec<TypeRef>,
}

/// Everything recovered from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Crate name derived from `crates/<name>/src/...`.
    pub crate_name: String,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// Struct/enum items.
    pub structs: Vec<StructItem>,
    /// `fn`-keyword item starts seen.
    pub fn_keywords_seen: u32,
    /// Item starts successfully parsed into [`FnItem`]s.
    pub fns_parsed: u32,
}

impl ParsedFile {
    /// Whether every `fn` item start was parsed (the tested invariant).
    pub fn fully_parsed(&self) -> bool {
        self.fn_keywords_seen == self.fns_parsed
    }
}

/// One source file in all three representations the passes consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Token stream + per-line scope/marker info.
    pub lexed: LexedFile,
    /// Parsed items.
    pub parsed: ParsedFile,
}

/// Lexes and parses one file.
pub fn load(rel: &str, source: &str) -> SourceFile {
    let lexed = crate::lexer::lex(source);
    let parsed = parse(rel, &lexed);
    SourceFile {
        rel: rel.to_owned(),
        lexed,
        parsed,
    }
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "pub", "impl", "trait", "struct", "enum", "mod", "use",
    "where", "dyn", "const", "static", "unsafe", "async", "await", "crate", "super", "type",
    "extern", "box", "true", "false", "union",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parses one lexed file. `rel_path` is the workspace-relative path
/// (used for the crate name and carried through to findings).
pub fn parse(rel_path: &str, lexed: &LexedFile) -> ParsedFile {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_owned();
    let mut out = ParsedFile {
        rel_path: rel_path.to_owned(),
        crate_name,
        ..ParsedFile::default()
    };
    let toks = &lexed.tokens;
    let n = toks.len();

    // Impl/trait context stack: (brace depth at which the block opened,
    // self-type name). The innermost frame qualifies `fn` items.
    let mut quals: Vec<(i32, String)> = Vec::new();
    let mut depth: i32 = 0;
    // Token spans of fn bodies, for nested-fn exclusion in stmt extraction.
    let mut body_spans: Vec<(usize, usize, usize)> = Vec::new(); // (fn idx, start, end)

    let mut i = 0usize;
    while i < n {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                while quals.last().is_some_and(|(d, _)| *d > depth) {
                    quals.pop();
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                // Header runs to the block opener (or `;` for a marker
                // trait). Self type: last path ident before `{`, taken
                // after `for` when present (`impl Trait for Type`).
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut last_ident: Option<String> = None;
                let mut after_for: Option<String> = None;
                let mut seen_for = false;
                while j < n {
                    match &toks[j].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>')
                            if !matches!(
                                toks.get(j.wrapping_sub(1)).map(|t| &t.tok),
                                Some(Tok::Punct('-'))
                            ) =>
                        {
                            angle -= 1;
                        }
                        Tok::Punct('{') | Tok::Punct(';') if angle <= 0 => break,
                        Tok::Ident(s) if s == "for" && angle <= 0 => seen_for = true,
                        Tok::Ident(s) if s == "where" && angle <= 0 => {
                            // where clause: self type is already known.
                        }
                        Tok::Ident(s) if !is_keyword(s) && angle <= 0 => {
                            if seen_for {
                                if after_for.is_none() {
                                    after_for = Some(s.clone());
                                }
                            } else {
                                last_ident = Some(s.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(name) = after_for.or(last_ident) {
                    if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('{'))) {
                        quals.push((depth + 1, name));
                    }
                }
                i = j;
            }
            Tok::Ident(kw) if kw == "struct" || kw == "enum" => {
                i = parse_struct(&mut out, toks, i, kw == "enum");
            }
            Tok::Ident(kw) if kw == "fn" => {
                // Only item starts: `fn` followed by a name. (`fn(u32)`
                // pointer types and `Fn` trait bounds don't match.)
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                    if !is_keyword(name) {
                        out.fn_keywords_seen += 1;
                        let qual = quals.last().map(|(_, q)| q.clone());
                        match parse_fn_signature(toks, i, name.clone(), qual, lexed) {
                            Some((item, body, sig_end)) => {
                                out.fns_parsed += 1;
                                let idx = out.fns.len();
                                out.fns.push(item);
                                if let Some((bs, be)) = body {
                                    body_spans.push((idx, bs, be));
                                }
                                // Resume just past the signature; bodies
                                // are rescanned so nested items parse too.
                                i = sig_end;
                                continue;
                            }
                            None => {
                                i += 1;
                                continue;
                            }
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    // Statement extraction per body, excluding nested fn body spans.
    for k in 0..body_spans.len() {
        let (idx, start, end) = body_spans[k];
        let nested: Vec<(usize, usize)> = body_spans
            .iter()
            .filter(|(_, s, e)| *s > start && *e <= end)
            .map(|(_, s, e)| (*s, *e))
            .collect();
        out.fns[idx].stmts = extract_stmts(toks, start, end, &nested);
    }
    out
}

/// Parses a struct/enum item starting at the keyword; returns the token
/// index to resume from.
fn parse_struct(out: &mut ParsedFile, toks: &[Token], kw_idx: usize, is_enum: bool) -> usize {
    let n = toks.len();
    let name = match toks.get(kw_idx + 1).map(|t| &t.tok) {
        Some(Tok::Ident(s)) if !is_keyword(s) => s.clone(),
        _ => return kw_idx + 1,
    };
    let line = toks[kw_idx].line;
    let mut j = kw_idx + 2;
    let mut angle = 0i32;
    // Skip generics/bounds to the body opener or `;`.
    while j < n {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>')
                if !matches!(toks.get(j - 1).map(|t| &t.tok), Some(Tok::Punct('-'))) =>
            {
                angle -= 1;
            }
            Tok::Punct('{') | Tok::Punct('(') if angle <= 0 => break,
            Tok::Punct(';') if angle <= 0 => {
                out.structs.push(StructItem {
                    name,
                    line,
                    field_types: Vec::new(),
                });
                return j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    if j >= n {
        return j;
    }
    let (open, close) = match toks[j].tok {
        Tok::Punct('(') => ('(', ')'),
        _ => ('{', '}'),
    };
    // Body: collect every type-position ident. For braced bodies, field
    // types sit between `:` and `,`; for tuple bodies everything inside
    // is a type. Enum payload types live inside variant parens/braces.
    // Collecting all non-keyword idents that are not field/variant names
    // (i.e. not immediately followed by `:` at field depth, for structs)
    // is precise enough for the type-taint closure; for enums, variant
    // names are included too, which is harmless.
    let mut depth = 0i32;
    let mut field_types = Vec::new();
    let body_start = j;
    while j < n {
        match &toks[j].tok {
            Tok::Punct(c) if *c == open => depth += 1,
            Tok::Punct(c) if *c == close => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            Tok::Ident(s) if !is_keyword(s) => {
                let is_field_name = !is_enum
                    && depth == 1
                    && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && !matches!(toks.get(j + 2).map(|t| &t.tok), Some(Tok::Punct(':')));
                let is_variant_name = is_enum
                    && depth == 1
                    && matches!(
                        toks.get(j + 1).map(|t| &t.tok),
                        Some(Tok::Punct('(') | Tok::Punct('{') | Tok::Punct(',') | Tok::Punct('='))
                    );
                if !is_field_name && !is_variant_name && j > body_start && !is_path_prefix(toks, j)
                {
                    field_types.push(type_ref_at(toks, j, s));
                }
            }
            _ => {}
        }
        j += 1;
    }
    out.structs.push(StructItem {
        name,
        line,
        field_types,
    });
    j
}

/// Identifiers captured inline by a format-style literal: `{ident}` or
/// `{ident:spec}`. `{{` escapes and positional/expression captures are
/// skipped.
fn format_captures(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // `{{` literal brace
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
            j += 1;
        }
        let name = &s[start..j];
        let valid = !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if valid {
            out.push(name.to_owned());
        }
        i = j + 1;
    }
    out
}

/// Whether the ident at `j` is a path-prefix segment (`foo::` in
/// `foo::Bar`) rather than the final type name.
fn is_path_prefix(toks: &[Token], j: usize) -> bool {
    matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
        && matches!(toks.get(j + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
}

/// Builds a [`TypeRef`] for the ident at `j`, resolving its path root by
/// walking back over `::` segments.
fn type_ref_at(toks: &[Token], j: usize, ident: &str) -> TypeRef {
    let mut root: Option<String> = None;
    let mut k = j;
    while k >= 2
        && matches!(toks[k - 1].tok, Tok::Punct(':'))
        && matches!(toks[k - 2].tok, Tok::Punct(':'))
    {
        // Walk over one `seg::` to its left; `::<` turbofish has no ident.
        if k >= 3 {
            if let Tok::Ident(seg) = &toks[k - 3].tok {
                root = Some(seg.clone());
                k -= 3;
                continue;
            }
        }
        break;
    }
    TypeRef {
        ident: ident.to_owned(),
        root,
    }
}

/// Parses an fn signature starting at the `fn` keyword. Returns the
/// item, the body token span when a `{ .. }` body exists, and the token
/// index just past the signature (the body opener or the `;`).
#[allow(clippy::type_complexity)]
fn parse_fn_signature(
    toks: &[Token],
    fn_idx: usize,
    name: String,
    qual: Option<String>,
    lexed: &LexedFile,
) -> Option<(FnItem, Option<(usize, usize)>, usize)> {
    let n = toks.len();
    let line = toks[fn_idx].line;
    let mut j = fn_idx + 2;

    // Generics.
    if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        let mut angle = 0i32;
        while j < n {
            match &toks[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>')
                    if !matches!(toks.get(j - 1).map(|t| &t.tok), Some(Tok::Punct('-'))) =>
                {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }

    // Parameter list.
    if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return None;
    }
    let params_start = j + 1;
    let mut depth = 1i32;
    j += 1;
    while j < n && depth > 0 {
        match &toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    let params_end = j - 1; // index of the closing ')'
    let params = parse_params(toks, params_start, params_end, qual.as_deref());

    // Return type: `-> ...` until `{`, `;`, or `where` at angle depth 0.
    let mut ret = Vec::new();
    let mut has_ret = false;
    if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('-')))
        && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('>')))
    {
        has_ret = true;
        j += 2;
        let mut angle = 0i32;
        while j < n {
            match &toks[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>')
                    if !matches!(toks.get(j - 1).map(|t| &t.tok), Some(Tok::Punct('-'))) =>
                {
                    angle -= 1;
                }
                Tok::Punct('{') | Tok::Punct(';') if angle <= 0 => break,
                Tok::Ident(s) if s == "where" && angle <= 0 => break,
                Tok::Ident(s) if !is_keyword(s) => {
                    ret.push(type_ref_at(toks, j, s));
                }
                _ => {}
            }
            j += 1;
        }
    }

    // Where clause: skip to `{` or `;`.
    let mut angle = 0i32;
    while j < n {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>')
                if !matches!(toks.get(j - 1).map(|t| &t.tok), Some(Tok::Punct('-'))) =>
            {
                angle -= 1;
            }
            Tok::Punct('{') | Tok::Punct(';') if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= n {
        return None;
    }

    let (body, resume) = match toks[j].tok {
        Tok::Punct(';') => (None, j + 1),
        Tok::Punct('{') => {
            // Find the matching close for the span; resume just inside
            // so nested items are rescanned by the main loop.
            let mut d = 1i32;
            let mut k = j + 1;
            while k < n && d > 0 {
                match &toks[k].tok {
                    Tok::Punct('{') => d += 1,
                    Tok::Punct('}') => d -= 1,
                    _ => {}
                }
                k += 1;
            }
            (Some((j + 1, k.saturating_sub(1))), j + 1)
        }
        _ => return None,
    };

    let item = FnItem {
        name,
        qual,
        line,
        params,
        ret,
        has_ret,
        stmts: Vec::new(),
        is_test: lexed.is_test_line(line),
    };
    Some((item, body, resume))
}

/// Parses the parameter list tokens in `[start, end)`, splitting on
/// top-level commas. `self_ty` substitutes the `self` receiver's type.
fn parse_params(toks: &[Token], start: usize, end: usize, self_ty: Option<&str>) -> Vec<Param> {
    let mut params = Vec::new();
    let mut piece_start = start;
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut j = start;
    while j <= end {
        let at_end = j == end;
        let split = at_end || (depth == 0 && angle <= 0 && matches!(toks[j].tok, Tok::Punct(',')));
        if split {
            if j > piece_start {
                if let Some(p) = parse_one_param(toks, piece_start, j, self_ty) {
                    params.push(p);
                }
            }
            piece_start = j + 1;
            if at_end {
                break;
            }
        } else {
            match &toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>')
                    if !matches!(toks.get(j - 1).map(|t| &t.tok), Some(Tok::Punct('-'))) =>
                {
                    angle -= 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    params
}

/// One `pattern: type` parameter (or a `self` receiver).
fn parse_one_param(
    toks: &[Token],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
) -> Option<Param> {
    // Top-level `:` (not `::`) splits pattern from type.
    let mut colon: Option<usize> = None;
    let mut depth = 0i32;
    for j in start..end {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('>')
                if !matches!(toks.get(j - 1).map(|t| &t.tok), Some(Tok::Punct('-'))) =>
            {
                depth -= 1;
            }
            Tok::Punct(':') if depth == 0 => {
                let double = matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                    || matches!(
                        toks.get(j.wrapping_sub(1)).map(|t| &t.tok),
                        Some(Tok::Punct(':'))
                    );
                if !double {
                    colon = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    match colon {
        Some(c) => {
            let mut names = Vec::new();
            for t in &toks[start..c] {
                if let Tok::Ident(s) = &t.tok {
                    if !is_keyword(s) || s == "self" {
                        names.push(s.clone());
                    }
                }
            }
            let mut ty = Vec::new();
            for j in (c + 1)..end {
                if let Tok::Ident(s) = &toks[j].tok {
                    if s == "Self" {
                        if let Some(st) = self_ty {
                            ty.push(TypeRef {
                                ident: st.to_owned(),
                                root: None,
                            });
                        }
                    } else if !is_keyword(s) && !is_path_prefix(toks, j) {
                        ty.push(type_ref_at(toks, j, s));
                    }
                }
            }
            Some(Param { names, ty })
        }
        None => {
            // Receiver form: `self`, `&self`, `&mut self`, `mut self`.
            let is_self =
                (start..end).any(|j| matches!(&toks[j].tok, Tok::Ident(s) if s == "self"));
            if is_self {
                let ty = self_ty
                    .map(|st| {
                        vec![TypeRef {
                            ident: st.to_owned(),
                            root: None,
                        }]
                    })
                    .unwrap_or_default();
                Some(Param {
                    names: vec!["self".to_owned()],
                    ty,
                })
            } else {
                None
            }
        }
    }
}

/// Splits a body token span into [`Stmt`]s, skipping nested fn spans.
fn extract_stmts(toks: &[Token], start: usize, end: usize, nested: &[(usize, usize)]) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let mut cur = Stmt::default();
    let mut paren = 0i32;
    let mut in_let_pattern = false; // between `let` and `=`
    let mut in_for_pattern = false; // between `for` and `in`

    let flush = |cur: &mut Stmt, stmts: &mut Vec<Stmt>, semi: bool| {
        if cur.line != 0 {
            cur.ends_semi = semi;
            stmts.push(std::mem::take(cur));
        } else {
            *cur = Stmt::default();
        }
    };

    let mut j = start;
    while j < end {
        // Skip nested fn bodies (their own items cover them). Also skip
        // the nested fn's signature tokens: find a span starting ahead
        // and jump when we reach its `fn` keyword is not tracked, so we
        // conservatively skip only the body span itself.
        if let Some(&(_, ne)) = nested.iter().find(|(ns, _)| *ns == j) {
            j = ne + 1;
            continue;
        }
        let t = &toks[j];
        if cur.line == 0 {
            cur.line = t.line;
        }
        match &t.tok {
            Tok::Punct(';') if paren == 0 => {
                flush(&mut cur, &mut stmts, true);
                in_let_pattern = false;
                in_for_pattern = false;
            }
            Tok::Punct('{') | Tok::Punct('}') if paren == 0 => {
                flush(&mut cur, &mut stmts, false);
                in_let_pattern = false;
                in_for_pattern = false;
            }
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct('=') if in_let_pattern => {
                // `=` (not `==`) ends the let pattern.
                let eq_next = matches!(toks.get(j + 1).map(|x| &x.tok), Some(Tok::Punct('=')));
                let eq_prev = matches!(
                    toks.get(j.wrapping_sub(1)).map(|x| &x.tok),
                    Some(Tok::Punct('='))
                );
                if !eq_next && !eq_prev {
                    in_let_pattern = false;
                }
            }
            Tok::Str(s) => {
                // Inline format captures (`"{ident}"`, `"{ident:?}"`)
                // reference bindings from inside the literal; surface
                // them as atoms so dataflow sees the mention.
                for cap in format_captures(s) {
                    cur.atoms.push(cap);
                }
                cur.strs.push(s.clone());
            }
            Tok::Ident(s) => {
                let next = toks.get(j + 1).map(|x| &x.tok);
                let prev = if j > 0 { Some(&toks[j - 1].tok) } else { None };
                if s == "let" {
                    in_let_pattern = true;
                } else if s == "for"
                    && !matches!(next, Some(Tok::Punct('<')))
                    && !matches!(prev, Some(Tok::Ident(p)) if p == "impl")
                {
                    in_for_pattern = true;
                } else if s == "in" {
                    in_for_pattern = false;
                } else if s == "return" {
                    cur.is_return = true;
                } else if !is_keyword(s) || s == "self" {
                    let followed_by_paren = matches!(next, Some(Tok::Punct('(')));
                    let followed_by_bang = matches!(next, Some(Tok::Punct('!')));
                    let after_dot = matches!(prev, Some(Tok::Punct('.')));
                    let turbofish_call = matches!(next, Some(Tok::Punct(':')))
                        && matches!(toks.get(j + 2).map(|x| &x.tok), Some(Tok::Punct(':')))
                        && matches!(toks.get(j + 3).map(|x| &x.tok), Some(Tok::Punct('<')))
                        && turbofish_is_call(toks, j + 3, end);

                    if (in_let_pattern || in_for_pattern) && !followed_by_paren {
                        if s != "self" {
                            cur.lets.push(s.clone());
                        }
                        if in_let_pattern {
                            // A `let x: Ty = ..` ascription: idents after
                            // `:` until `=` land here too; route them to
                            // `ty` when they follow a top-level colon.
                        }
                    } else if followed_by_bang {
                        // Macro invocation.
                        cur.calls.push(CallExpr {
                            name: s.clone(),
                            qual: None,
                            receiver: Vec::new(),
                            line: t.line,
                            is_macro: true,
                        });
                    } else if followed_by_paren || turbofish_call {
                        if !matches!(next, Some(Tok::Punct('('))) || !after_dot {
                            // Free/assoc call: qualifier from the path.
                        }
                        let qual = call_qualifier(toks, j);
                        let receiver = if after_dot {
                            receiver_chain(toks, j, &mut cur)
                        } else {
                            Vec::new()
                        };
                        cur.calls.push(CallExpr {
                            name: s.clone(),
                            qual,
                            receiver,
                            line: t.line,
                            is_macro: false,
                        });
                    } else if after_dot {
                        // Field access / method name without call — skip.
                    } else {
                        let qualifies_next = matches!(next, Some(Tok::Punct(':')))
                            && matches!(toks.get(j + 2).map(|x| &x.tok), Some(Tok::Punct(':')));
                        if !qualifies_next {
                            cur.atoms.push(s.clone());
                            let amp_mut = j >= 2
                                && matches!(&toks[j - 1].tok, Tok::Ident(m) if m == "mut")
                                && matches!(&toks[j - 2].tok, Tok::Punct('&'));
                            if amp_mut {
                                cur.mut_borrows.push(s.clone());
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    flush(&mut cur, &mut stmts, false);
    stmts
}

/// Whether `name::<...>` at the `<` position closes and is followed by
/// `(` — a turbofish call.
fn turbofish_is_call(toks: &[Token], lt: usize, end: usize) -> bool {
    let mut angle = 0i32;
    let mut j = lt;
    while j < end {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>')
                if !matches!(toks.get(j - 1).map(|t| &t.tok), Some(Tok::Punct('-'))) =>
            {
                angle -= 1;
                if angle == 0 {
                    return matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
                }
            }
            Tok::Punct(';') | Tok::Punct('{') => return false,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Path qualifier of a call: for `A::B::name(..)` returns the segment
/// immediately before the name (`B`).
fn call_qualifier(toks: &[Token], name_idx: usize) -> Option<String> {
    if name_idx >= 3
        && matches!(toks[name_idx - 1].tok, Tok::Punct(':'))
        && matches!(toks[name_idx - 2].tok, Tok::Punct(':'))
    {
        if let Tok::Ident(q) = &toks[name_idx - 3].tok {
            return Some(q.clone());
        }
    }
    None
}

/// For a method call `a.b.name(..)`, walks back over the `.`-chain and
/// returns the ident links (`["a", "b"]`). Chains rooted in a call
/// result (`f().name(..)`) return whatever trailing idents exist.
/// The chain's idents also count as atoms of the statement.
fn receiver_chain(toks: &[Token], name_idx: usize, cur: &mut Stmt) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = name_idx;
    // Invariant: toks[j] is an ident preceded by `.` (checked by caller
    // for the first step).
    loop {
        if j < 2 || !matches!(toks[j - 1].tok, Tok::Punct('.')) {
            break;
        }
        match &toks[j - 2].tok {
            Tok::Ident(s) if !is_keyword(s) || s == "self" => {
                chain.push(s.clone());
                j -= 2;
            }
            _ => break,
        }
    }
    chain.reverse();
    for link in &chain {
        cur.atoms.push(link.clone());
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse("crates/demo/src/lib.rs", &lex(src))
    }

    #[test]
    fn simple_fn_with_params_and_ret() {
        let p = parse_src("pub fn seal(event: &Event, epoch: u64) -> SecureEvent { todo() }\n");
        assert!(p.fully_parsed());
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "seal");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].names, vec!["event"]);
        assert_eq!(f.params[0].ty[0].ident, "Event");
        assert_eq!(f.ret[0].ident, "SecureEvent");
    }

    #[test]
    fn impl_methods_get_qualified_and_self_typed() {
        let p = parse_src(
            "impl Conn {\n  pub fn offer(&self, frame: SharedFrame) -> bool { true }\n}\n\
             impl std::fmt::Debug for Redacted {\n  fn fmt(&self) {}\n}\n",
        );
        assert!(p.fully_parsed());
        assert_eq!(p.fns[0].qual.as_deref(), Some("Conn"));
        assert_eq!(p.fns[0].params[0].ty[0].ident, "Conn");
        assert_eq!(p.fns[1].qual.as_deref(), Some("Redacted"));
    }

    #[test]
    fn generic_fn_with_where_clause() {
        let p = parse_src(
            "fn run<F>(rx: Receiver<WorkerMsg>, tx: Sender<Input<F>>)\nwhere\n  F: Clone,\n\
             F::Event: Wire,\n{ let x = rx.try_recv(); }\n",
        );
        assert!(p.fully_parsed());
        let f = &p.fns[0];
        assert_eq!(f.params.len(), 2);
        assert!(f.params[0].ty.iter().any(|t| t.ident == "WorkerMsg"));
        assert_eq!(f.stmts.len(), 1);
        assert_eq!(f.stmts[0].calls[0].name, "try_recv");
        assert_eq!(f.stmts[0].calls[0].receiver, vec!["rx"]);
    }

    #[test]
    fn qualified_type_refs_carry_roots() {
        let p = parse_src("fn f(e: &psguard_model::Event, g: F::Event) {}\n");
        let f = &p.fns[0];
        assert_eq!(f.params[0].ty[0].root.as_deref(), Some("psguard_model"));
        assert_eq!(f.params[1].ty[0].root.as_deref(), Some("F"));
    }

    #[test]
    fn calls_atoms_lets_and_mut_borrows() {
        let p = parse_src(
            "fn f(event: &Event) {\n  let bytes = event.payload();\n  \
             encode_into(&mut buf, bytes);\n  helper(Event::builder(\"t\"));\n}\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.stmts.len(), 3);
        assert_eq!(f.stmts[0].lets, vec!["bytes"]);
        assert_eq!(f.stmts[0].calls[0].receiver, vec!["event"]);
        assert!(f.stmts[1].mut_borrows.contains(&"buf".to_owned()));
        let s2 = &f.stmts[2];
        assert!(s2
            .calls
            .iter()
            .any(|c| c.name == "builder" && c.qual.as_deref() == Some("Event")));
    }

    #[test]
    fn nested_fns_parse_and_do_not_leak_stmts() {
        let p = parse_src(
            "fn outer() {\n  inner_call();\n  fn inner(x: u32) { deep_call(); }\n  after();\n}\n",
        );
        assert!(p.fully_parsed());
        assert_eq!(p.fns.len(), 2);
        let outer = p.fns.iter().find(|f| f.name == "outer").expect("outer");
        let names: Vec<&str> = outer
            .stmts
            .iter()
            .flat_map(|s| s.calls.iter().map(|c| c.name.as_str()))
            .collect();
        assert!(names.contains(&"inner_call"));
        assert!(names.contains(&"after"));
        assert!(!names.contains(&"deep_call"));
        let inner = p.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(inner.stmts[0].calls[0].name, "deep_call");
    }

    #[test]
    fn struct_fields_collected() {
        let p = parse_src(
            "pub struct Slot {\n  pub event: Event,\n  count: usize,\n}\n\
             struct Pair(Filter, u32);\nstruct Marker;\n",
        );
        assert_eq!(p.structs.len(), 3);
        assert!(p.structs[0].field_types.iter().any(|t| t.ident == "Event"));
        assert!(p.structs[1].field_types.iter().any(|t| t.ident == "Filter"));
        assert!(p.structs[2].field_types.is_empty());
    }

    #[test]
    fn trait_decl_and_fn_pointer_types_do_not_break_coverage() {
        let p = parse_src(
            "pub trait Poller {\n  fn wait(&mut self, out: &mut Vec<u32>);\n}\n\
             fn take(cb: fn(u32) -> bool) -> impl Fn(u32) { move |x| cb(x) }\n",
        );
        assert!(p.fully_parsed(), "{p:?}");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qual.as_deref(), Some("Poller"));
    }

    #[test]
    fn if_let_and_for_patterns_bind() {
        let p = parse_src(
            "fn f(events: Vec<Event>) {\n  for e in events { use_it(e); }\n  \
             if let Some(m) = next() { use_it(m); }\n}\n",
        );
        let f = &p.fns[0];
        let all_lets: Vec<&str> = f
            .stmts
            .iter()
            .flat_map(|s| s.lets.iter().map(|x| x.as_str()))
            .collect();
        assert!(all_lets.contains(&"e"), "{all_lets:?}");
        assert!(all_lets.contains(&"m"), "{all_lets:?}");
    }

    #[test]
    fn turbofish_calls_are_calls() {
        let p = parse_src("fn f() { let (tx, rx) = bounded::<Event>(4); }\n");
        let f = &p.fns[0];
        assert!(f.stmts[0].calls.iter().any(|c| c.name == "bounded"));
        assert_eq!(f.stmts[0].lets, vec!["tx", "rx"]);
    }
}
