//! The shrink-only panic allowlist.
//!
//! `crates/xtask/allowlist.txt` holds one `path = N` entry per file that
//! still has justified panic sites. A site is justified when its line
//! carries a `// PANIC-OK: <reason>` comment. The budget must match the
//! number of justified sites *exactly*: a larger budget is stale slack
//! (the list must shrink as sites are fixed), a smaller one means new
//! sites slipped in. Entries naming files that no longer exist are errors.

use std::collections::BTreeMap;

/// Parsed allowlist: workspace-relative path → budget.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Allowlist {
    pub budgets: BTreeMap<String, u32>,
}

/// A malformed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allowlist.txt:{}: {}", self.line, self.message)
    }
}

/// Parses the `path = N` format. Blank lines and `#` comments are skipped.
pub fn parse(text: &str) -> Result<Allowlist, ParseError> {
    let mut budgets = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (path, count) = line.split_once('=').ok_or_else(|| ParseError {
            line: lineno,
            message: format!("expected `path = N`, got `{line}`"),
        })?;
        let path = path.trim().to_owned();
        let count: u32 = count.trim().parse().map_err(|_| ParseError {
            line: lineno,
            message: format!("budget is not a number: `{}`", count.trim()),
        })?;
        if count == 0 {
            return Err(ParseError {
                line: lineno,
                message: format!("`{path}` has budget 0; delete the entry instead"),
            });
        }
        if budgets.insert(path.clone(), count).is_some() {
            return Err(ParseError {
                line: lineno,
                message: format!("duplicate entry for `{path}`"),
            });
        }
    }
    Ok(Allowlist { budgets })
}

/// Budget-check outcome for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetIssue {
    /// Entry names a file that does not exist in the workspace.
    MissingFile { path: String },
    /// Budget exceeds the justified-site count: slack must be removed.
    Stale {
        path: String,
        budget: u32,
        actual: u32,
    },
    /// More justified sites than budget: the list only ever shrinks, so a
    /// new PANIC-OK site needs an explicit (reviewed) budget bump.
    OverBudget {
        path: String,
        budget: u32,
        actual: u32,
    },
    /// A file has PANIC-OK sites but no allowlist entry at all.
    Unlisted { path: String, actual: u32 },
}

impl std::fmt::Display for BudgetIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetIssue::MissingFile { path } => {
                write!(
                    f,
                    "allowlist entry `{path}` names a file that does not exist"
                )
            }
            BudgetIssue::Stale {
                path,
                budget,
                actual,
            } => write!(
                f,
                "allowlist entry `{path} = {budget}` is stale: only {actual} PANIC-OK site(s) \
                 remain; shrink the budget"
            ),
            BudgetIssue::OverBudget {
                path,
                budget,
                actual,
            } => write!(
                f,
                "`{path}` has {actual} PANIC-OK site(s) but a budget of {budget}; the allowlist \
                 only shrinks — remove panic sites or justify the bump in review"
            ),
            BudgetIssue::Unlisted { path, actual } => write!(
                f,
                "`{path}` has {actual} PANIC-OK site(s) but no allowlist entry"
            ),
        }
    }
}

/// Reconciles per-file justified-site counts against the allowlist.
///
/// `exists` answers whether a workspace-relative path is a real file, so
/// the core logic stays testable without touching the filesystem.
pub fn reconcile(
    list: &Allowlist,
    justified_counts: &BTreeMap<String, u32>,
    exists: impl Fn(&str) -> bool,
) -> Vec<BudgetIssue> {
    let mut issues = Vec::new();
    for (path, &budget) in &list.budgets {
        if !exists(path) {
            issues.push(BudgetIssue::MissingFile { path: path.clone() });
            continue;
        }
        let actual = justified_counts.get(path).copied().unwrap_or(0);
        if budget > actual {
            issues.push(BudgetIssue::Stale {
                path: path.clone(),
                budget,
                actual,
            });
        } else if actual > budget {
            issues.push(BudgetIssue::OverBudget {
                path: path.clone(),
                budget,
                actual,
            });
        }
    }
    for (path, &actual) in justified_counts {
        if actual > 0 && !list.budgets.contains_key(path) {
            issues.push(BudgetIssue::Unlisted {
                path: path.clone(),
                actual,
            });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u32)]) -> BTreeMap<String, u32> {
        pairs.iter().map(|(p, n)| ((*p).to_owned(), *n)).collect()
    }

    #[test]
    fn parses_entries_comments_blanks() {
        let list = parse("# header\n\ncrates/keys/src/kdc.rs = 2\ncrates/crypto/src/aes.rs=1\n")
            .unwrap_or_default();
        assert_eq!(list.budgets.len(), 2);
        assert_eq!(list.budgets.get("crates/keys/src/kdc.rs"), Some(&2));
    }

    #[test]
    fn rejects_zero_and_duplicates_and_garbage() {
        assert!(parse("a.rs = 0\n").is_err());
        assert!(parse("a.rs = 1\na.rs = 2\n").is_err());
        assert!(parse("just words\n").is_err());
        assert!(parse("a.rs = many\n").is_err());
    }

    #[test]
    fn exact_match_is_clean() {
        let list = parse("a.rs = 2\n").unwrap_or_default();
        let issues = reconcile(&list, &counts(&[("a.rs", 2)]), |_| true);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn stale_over_and_unlisted_flagged() {
        let list = parse("a.rs = 3\nb.rs = 1\n").unwrap_or_default();
        let issues = reconcile(
            &list,
            &counts(&[("a.rs", 2), ("b.rs", 2), ("c.rs", 1)]),
            |_| true,
        );
        assert_eq!(issues.len(), 3);
        assert!(issues
            .iter()
            .any(|i| matches!(i, BudgetIssue::Stale { path, .. } if path == "a.rs")));
        assert!(issues
            .iter()
            .any(|i| matches!(i, BudgetIssue::OverBudget { path, .. } if path == "b.rs")));
        assert!(issues
            .iter()
            .any(|i| matches!(i, BudgetIssue::Unlisted { path, .. } if path == "c.rs")));
    }

    #[test]
    fn missing_file_flagged() {
        let list = parse("gone.rs = 1\n").unwrap_or_default();
        let issues = reconcile(&list, &counts(&[]), |_| false);
        assert_eq!(
            issues,
            vec![BudgetIssue::MissingFile {
                path: "gone.rs".into()
            }]
        );
    }
}
