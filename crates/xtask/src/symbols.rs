//! Cross-crate symbol table over the parsed workspace.
//!
//! Resolution is name-based: the workspace has one binary namespace of
//! function items, indexed both by bare name and by `Qual::name` for
//! methods. That is deliberately coarser than rustc's resolution, so
//! [`SymbolTable::resolve_call`] applies discipline instead of
//! over-merging: qualified calls match their exact `Qual::name` (with a
//! free-function-only fallback for module paths), and ambiguous bare
//! names resolve only with same-file preference or not at all. The
//! result slightly under-approximates reachability for colliding method
//! names — documented, and far cheaper than the hard false positives
//! that wrong edges feed into the reactor-safety pass.

use std::collections::BTreeMap;

use crate::parser::{FnItem, ParsedFile};

/// Identifier of a function node: index into [`SymbolTable::fns`].
pub type FnId = usize;

/// A function known to the analysis, with its provenance.
#[derive(Debug)]
pub struct FnNode {
    /// The parsed item.
    pub item: FnItem,
    /// Workspace-relative file.
    pub rel_path: String,
    /// Crate the file belongs to.
    pub crate_name: String,
}

impl FnNode {
    /// `Qual::name` when qualified, else `name`.
    pub fn display_name(&self) -> String {
        match &self.item.qual {
            Some(q) => format!("{q}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every non-test function item in the workspace.
    pub fns: Vec<FnNode>,
    /// Bare name → candidate fn ids (a name can resolve to several
    /// items; all of them become call edges).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// `Qual::name` → candidate fn ids.
    by_qual: BTreeMap<String, Vec<FnId>>,
    /// Struct name → field type idents, for the type-taint closure.
    pub struct_fields: BTreeMap<String, Vec<String>>,
}

impl SymbolTable {
    /// Builds the table from every parsed file. Test functions are
    /// excluded: fixtures and `#[cfg(test)]` helpers must not create
    /// edges into production reachability.
    pub fn build<'a>(files: impl IntoIterator<Item = &'a ParsedFile>) -> Self {
        let mut table = SymbolTable::default();
        for file in files {
            for item in &file.fns {
                if item.is_test {
                    continue;
                }
                let id = table.fns.len();
                table.by_name.entry(item.name.clone()).or_default().push(id);
                if let Some(q) = &item.qual {
                    table
                        .by_qual
                        .entry(format!("{q}::{}", item.name))
                        .or_default()
                        .push(id);
                }
                table.fns.push(FnNode {
                    item: item.clone(),
                    rel_path: file.rel_path.clone(),
                    crate_name: file.crate_name.clone(),
                });
            }
            for s in &file.structs {
                table
                    .struct_fields
                    .entry(s.name.clone())
                    .or_default()
                    .extend(s.field_types.iter().map(|t| t.ident.clone()));
            }
        }
        table
    }

    /// Resolves a call site into edge targets. A qualified call
    /// (`Conn::offer`) matches the exact `Qual::name` entries; when the
    /// qualifier is unknown (a module path, an std type like
    /// `TcpStream`) only *free* functions with the bare name may match —
    /// falling back to someone's method of the same name would invent
    /// edges (`TcpStream::connect` aliasing into `ThreadedClient::
    /// connect`). Unqualified and method calls resolve by bare name only
    /// when unambiguous, with same-file candidates preferred (same-
    /// module items are in scope without import). Ambiguous method
    /// names produce no edge: for the reactor-safety reachability pass
    /// a wrong edge is a hard false positive, so unresolvable calls
    /// under-approximate and the limitation is documented.
    pub fn resolve_call(&self, name: &str, qual: Option<&str>, caller_rel: &str) -> Vec<FnId> {
        if let Some(q) = qual {
            if let Some(ids) = self.by_qual.get(&format!("{q}::{name}")) {
                return ids.clone();
            }
            return self
                .by_name
                .get(name)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&i| self.fns[i].item.qual.is_none())
                        .collect()
                })
                .unwrap_or_default();
        }
        let Some(ids) = self.by_name.get(name) else {
            return Vec::new();
        };
        if ids.len() == 1 {
            return ids.clone();
        }
        let same_file: Vec<FnId> = ids
            .iter()
            .copied()
            .filter(|&i| self.fns[i].rel_path == caller_rel)
            .collect();
        if same_file.len() == 1 {
            return same_file;
        }
        Vec::new()
    }

    /// Strict resolution, for taint-*origin* checks: a qualified call
    /// matches only its exact `Qual::name` items — a qualifier that
    /// names a different type must not alias into the model's
    /// constructors via the bare-name fallback.
    pub fn resolve_strict(&self, name: &str, qual: Option<&str>) -> &[FnId] {
        match qual {
            Some(q) => self
                .by_qual
                .get(&format!("{q}::{name}"))
                .map(Vec::as_slice)
                .unwrap_or(&[]),
            None => self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// All fn ids defined in `rel_path` whose name matches.
    pub fn find_in_file(&self, rel_path: &str, name: &str) -> Option<FnId> {
        self.fns
            .iter()
            .position(|f| f.rel_path == rel_path && f.item.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    #[test]
    fn build_resolve_and_exclude_tests() {
        let a = parse(
            "crates/a/src/lib.rs",
            &lex("impl Conn { pub fn offer(&self) {} }\npub fn offer() {}\n\
                  #[cfg(test)]\nmod tests {\n  #[test]\n  fn offer_works() { offer(); }\n}\n"),
        );
        let table = SymbolTable::build(&[a]);
        assert_eq!(table.fns.len(), 2, "test fn excluded");
        let rel = "crates/a/src/lib.rs";
        assert_eq!(table.resolve_call("offer", Some("Conn"), rel).len(), 1);
        // Ambiguous bare name, but both candidates are in the caller's
        // file — still ambiguous, no edge.
        assert!(table.resolve_call("offer", None, rel).is_empty());
        // Unknown qualifier falls back to free fns only.
        let fallback = table.resolve_call("offer", Some("Unknown"), rel);
        assert_eq!(fallback.len(), 1);
        assert!(table.fns[fallback[0]].item.qual.is_none());
        assert!(table.resolve_call("missing", None, rel).is_empty());
    }

    #[test]
    fn ambiguous_method_prefers_same_file_candidate() {
        let a = parse(
            "crates/a/src/lib.rs",
            &lex("impl Conn { pub fn push(&self) {} }\n"),
        );
        let b = parse(
            "crates/b/src/lib.rs",
            &lex("impl Queue { pub fn push(&self) {} }\n"),
        );
        let table = SymbolTable::build([&a, &b]);
        let hit = table.resolve_call("push", None, "crates/a/src/lib.rs");
        assert_eq!(hit.len(), 1);
        assert_eq!(table.fns[hit[0]].rel_path, "crates/a/src/lib.rs");
        // From a third file, the name is ambiguous: no edge.
        assert!(table
            .resolve_call("push", None, "crates/c/src/lib.rs")
            .is_empty());
    }

    #[test]
    fn struct_fields_indexed() {
        let a = parse(
            "crates/a/src/lib.rs",
            &lex("pub struct Slot { event: Event, n: usize }\n"),
        );
        let table = SymbolTable::build(&[a]);
        assert!(table.struct_fields["Slot"].contains(&"Event".to_owned()));
    }
}
