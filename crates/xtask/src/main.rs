//! CLI for the workspace static-analysis pass.
//!
//! Usage: `cargo run -p psguard-xtask -- check [--format json|text]`

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask; CARGO_MANIFEST_DIR is absolute.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {
            let mut format = Format::Text;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--format" => match args.next().as_deref() {
                        Some("json") => format = Format::Json,
                        Some("text") => format = Format::Text,
                        other => {
                            eprintln!(
                                "--format expects `json` or `text`, got `{}`",
                                other.unwrap_or("<nothing>")
                            );
                            return ExitCode::FAILURE;
                        }
                    },
                    other => {
                        eprintln!("unknown flag `{other}`; try `check [--format json|text]`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            check(format)
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; try `check`");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p psguard-xtask -- check [--format json|text]");
            ExitCode::FAILURE
        }
    }
}

fn check(format: Format) -> ExitCode {
    let root = workspace_root();
    match psguard_xtask::run_check(&root) {
        Ok(report) => {
            match format {
                Format::Text => print!("{}", psguard_xtask::render(&report)),
                Format::Json => print!("{}", psguard_xtask::render_json(&report)),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("psguard-xtask: {e}");
            ExitCode::FAILURE
        }
    }
}
