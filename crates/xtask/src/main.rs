//! CLI for the workspace static-analysis pass.
//!
//! Usage: `cargo run -p psguard-xtask -- check`

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask; CARGO_MANIFEST_DIR is absolute.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => check(),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; try `check`");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p psguard-xtask -- check");
            ExitCode::FAILURE
        }
    }
}

fn check() -> ExitCode {
    let root = workspace_root();
    match psguard_xtask::run_check(&root) {
        Ok(report) => {
            print!("{}", psguard_xtask::render(&report));
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("psguard-xtask: {e}");
            ExitCode::FAILURE
        }
    }
}
