//! Project invariants enforced by `psguard-xtask check`.
//!
//! Everything here is deliberately a compile-time constant: the point of
//! the tool is that loosening an invariant is a reviewed code change, not
//! an environment tweak. DESIGN.md §12 documents how to extend each list;
//! §17 documents the taint-analysis source/sink/sanitizer tables.
//!
//! Path scopes for every rule family live in the one declarative
//! [`SCOPED_RULES`] table; `tests` asserts each configured path exists on
//! disk so a rename can't silently turn a rule into a no-op.

/// Type names that hold raw key material ("tainted" types).
///
/// A tainted type must not `#[derive(Debug)]` or `#[derive(Serialize)]`,
/// and must not have a `Display` or manual `Serialize` impl: leakage
/// through debug/display/serialization paths is the classic
/// implementation-level failure mode of confidentiality-preserving
/// pub/sub. Manual *redacting* `Debug` impls (fingerprints only) are the
/// sanctioned replacement.
pub const TAINTED_TYPES: &[&str] = &[
    // crypto: raw key bytes and expanded schedules.
    "DeriveKey",
    "AesKey",
    "Aes128",
    // crypto: reusable keyed contexts — pad-absorbed digest states are
    // key-equivalent for forging MACs, and round keys invert to the key.
    "PrfContext",
    "HmacContext",
    "AesContext",
    // keys: hierarchy roots and authorization material.
    "Kdc",
    "NaktKeySpace",
    "CategoryKeySpace",
    "StringKeySpace",
    "AuthKey",
    "ConstraintGrant",
    "Grant",
    "KeyCache",
    "CachedKdc",
    // groupkey: per-segment group keys and LKH node keys.
    "LkhTree",
    "Segment",
    "SubscriberGroupManager",
    // groupkey batching: the node-key arena holds every internal LKH
    // key, and the pending batch names departed subscribers (whose ids
    // leak membership if logged alongside key state).
    "NodeKeys",
    "RekeyBatch",
    // keys: the epoch-batched coordinator owns a full group manager.
    "GroupRekeyCoordinator",
];

/// Binding names that denote key material. A format string interpolating
/// one of these (or passing one as a format argument) is a violation even
/// when the type's `Debug` redacts — the binding may be raw bytes.
pub const TAINTED_BINDINGS: &[&str] = &[
    "secret",
    "master",
    "master_key",
    "raw_key",
    "key_bytes",
    "root_key",
    "topic_key",
    "node_key",
    "derive_key",
    "auth_key",
    "content_key",
    "group_key",
    "event_key",
    "mac_key",
    "private_key",
    "privkey",
];

/// Suffixes that also mark a binding as tainted (`*_secret`, `*_sk`).
pub const TAINTED_BINDING_SUFFIXES: &[&str] = &["_secret", "_sk"];

/// Whether a binding name denotes key material.
pub fn binding_is_tainted(name: &str) -> bool {
    TAINTED_BINDINGS.contains(&name)
        || TAINTED_BINDING_SUFFIXES
            .iter()
            .any(|suf| name.len() > suf.len() && name.ends_with(suf))
}

/// Macros whose format string / arguments are checked for tainted
/// bindings. `assert*` family is excluded on purpose: failure output goes
/// through `Debug`, which the derive rule already forces to redact.
pub const FORMAT_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln", "panic",
];

/// Derives that must not appear on a tainted type.
pub const FORBIDDEN_DERIVES: &[&str] = &["Debug", "Serialize"];

/// Traits that must not be implemented (even manually) for tainted types.
pub const FORBIDDEN_IMPLS: &[&str] = &["Display", "Serialize"];

/// Crates whose `src/` trees must be panic-free on non-test paths.
/// `bench` is excluded: it is a measurement harness of `fn main()`s where
/// aborting on a broken setup is the correct behavior.
pub const PANIC_SCOPE_CRATES: &[&str] = &[
    "analysis", "crypto", "groupkey", "keys", "model", "net", "psguard", "routing", "siena",
    "xtask",
];

/// Methods (called as `.name(`) that panic and are banned on library paths.
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that panic and are banned on library paths.
pub const PANIC_MACROS: &[&str] = &["panic", "unimplemented", "todo", "unreachable"];

/// Identifiers banned inside the determinism scope.
pub const NONDETERMINISTIC_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "sleep",
    "thread_rng",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Methods (called as `.name(`) that allocate a fresh buffer per call
/// and therefore must not appear in hot-path files: `to_bytes` is the
/// old one-copy-per-recipient serialization, `to_vec` the classic
/// borrowed-slice detour.
pub const HOT_PATH_ALLOC_METHODS: &[&str] = &["to_bytes", "to_vec"];

/// Identifiers banned inside the ciphertext-at-rest scope: the
/// plaintext event/message model and its codec. `EventLog` is a single
/// distinct identifier and does not match `Event`. Enforced as the
/// scope backstop of the taint pass (DESIGN.md §17).
pub const CIPHERTEXT_BANNED_IDENTS: &[&str] = &["Event", "Message", "Wire", "psguard_model"];

// ---------------------------------------------------------------------
// Declarative rule→scope table (all path-scoped rule families).
// ---------------------------------------------------------------------

/// A rule family's path scope. Entries are workspace-relative,
/// `/`-separated; an entry ending in `/` covers the whole directory,
/// anything else must match the file path exactly.
#[derive(Debug)]
pub struct ScopedRule {
    /// Stable rule-family key (matches the `Rule` display name).
    pub rule: &'static str,
    /// Scope entries.
    pub paths: &'static [&'static str],
}

/// Every path-scoped rule family in one place.
///
/// * `sim-determinism` — code reachable from the seeded simulator must
///   not read wall clocks, sleep, or draw OS randomness.
///   `siena/src/tcp.rs` is the real-transport boundary and is
///   deliberately *not* in scope.
/// * `hot-path-alloc` — the allocation-free dissemination hot path:
///   per-message serialization goes through the shared `FramePool`
///   (encode once, fan out `Arc` clones), so per-call allocating
///   conversions are banned. See DESIGN.md §14. The arena `MatchIndex`
///   and the sharded pipeline (DESIGN.md §18) are in scope too: a
///   steady-state query must reuse its scratch, not re-collect.
///   `index_legacy.rs` is deliberately *out* of scope — it is the
///   frozen pre-rework layout kept as the measured baseline.
/// * `thread-per-connection` — the reactor transport's contract is a
///   *fixed* thread count; an unmarked `thread::spawn` is a regression
///   back toward thread-per-connection. `threaded.rs` is deliberately
///   out of scope: it is the retained thread-per-connection baseline.
/// * `ciphertext-at-rest` — the durable event log stores already-encoded
///   opaque bytes; naming the plaintext model there means structured
///   plaintext is being (de)serialized onto the disk path.
/// * `taint-sink` — files whose raw I/O writes (`write_all` etc.) count
///   as broker-visible sinks for the confidentiality taint pass.
/// * `taint-format-sink` — files whose format macros count as
///   broker-visible debug sinks (broker-side code only; client-side
///   crates may legitimately format their own plaintext).
/// * `reactor-blocking` / `channel-cycle` — files whose channel
///   creations and blocking ops the reactor-safety pass tracks.
pub const SCOPED_RULES: &[ScopedRule] = &[
    ScopedRule {
        rule: "sim-determinism",
        paths: &[
            "crates/net/src/",
            "crates/routing/src/",
            "crates/siena/src/fault.rs",
        ],
    },
    ScopedRule {
        rule: "hot-path-alloc",
        paths: &[
            "crates/siena/src/tcp.rs",
            "crates/siena/src/threaded.rs",
            "crates/siena/src/reactor/",
            "crates/siena/src/index.rs",
            "crates/siena/src/pipeline.rs",
        ],
    },
    ScopedRule {
        rule: "thread-per-connection",
        paths: &["crates/siena/src/tcp.rs", "crates/siena/src/reactor/"],
    },
    ScopedRule {
        rule: "ciphertext-at-rest",
        paths: &["crates/siena/src/log/"],
    },
    ScopedRule {
        rule: "taint-sink",
        paths: &[
            "crates/siena/src/tcp.rs",
            "crates/siena/src/wire.rs",
            "crates/siena/src/threaded.rs",
            "crates/siena/src/reactor/",
            "crates/siena/src/log/",
        ],
    },
    ScopedRule {
        rule: "taint-format-sink",
        paths: &["crates/siena/src/"],
    },
    ScopedRule {
        rule: "reactor-blocking",
        paths: &["crates/siena/src/reactor/"],
    },
    ScopedRule {
        rule: "channel-cycle",
        paths: &["crates/siena/src/reactor/"],
    },
];

/// Whether `rel` falls in the named rule family's scope. Unknown rule
/// keys match nothing.
pub fn rule_scope_contains(rule: &str, rel: &str) -> bool {
    SCOPED_RULES
        .iter()
        .filter(|s| s.rule == rule)
        .any(|s| file_or_dir_match(s.paths, rel))
}

/// Whether a workspace-relative file path is in the panic-freedom scope.
pub fn panic_scope_contains(rel: &str) -> bool {
    PANIC_SCOPE_CRATES.iter().any(|krate| {
        let prefix = format!("crates/{krate}/src/");
        rel.starts_with(&prefix) && !rel.starts_with(&format!("{prefix}bin/"))
    })
}

/// Whether a workspace-relative file path is in the determinism scope.
pub fn determinism_scope_contains(rel: &str) -> bool {
    rule_scope_contains("sim-determinism", rel)
}

/// Whether a path matches a scope list of exact files and `dir/` prefixes.
fn file_or_dir_match(list: &[&str], rel: &str) -> bool {
    list.iter().any(|p| {
        if p.ends_with('/') {
            rel.starts_with(p)
        } else {
            rel == *p
        }
    })
}

/// Whether a workspace-relative file path is a dissemination hot path.
pub fn hot_path_contains(rel: &str) -> bool {
    rule_scope_contains("hot-path-alloc", rel)
}

/// Whether a workspace-relative file path is in the fixed-thread-count
/// (spawn-ban) scope.
pub fn spawn_scope_contains(rel: &str) -> bool {
    rule_scope_contains("thread-per-connection", rel)
}

/// Whether a workspace-relative file path must stay ciphertext-only at
/// rest.
pub fn ciphertext_scope_contains(rel: &str) -> bool {
    rule_scope_contains("ciphertext-at-rest", rel)
}

// ---------------------------------------------------------------------
// Confidentiality taint pass (DESIGN.md §17).
// ---------------------------------------------------------------------

/// Plaintext-bearing model types: a value of one of these types is a
/// taint *source*. Restricted to the types that always carry plaintext
/// content — `AttrValue`/`Constraint`/`Op` are deliberately excluded
/// because `SecureEvent`/`SecureFilter` legitimately reuse them as
/// opaque-payload containers; they still become tainted the moment they
/// flow out of a tainted `Event`/`Filter`.
pub const PLAINTEXT_SOURCE_TYPES: &[&str] = &["Event", "EventBuilder", "Filter", "Subscription"];

/// Path roots under which a qualified mention of a source type still
/// counts (`psguard_model::Event` yes, `F::Event` no — the latter is an
/// associated type of a generic transport, already sealed by contract).
pub const MODEL_PATH_ROOTS: &[&str] = &["psguard_model", "model"];

/// Functions that launder taint: a value passed through one of these is
/// sealed/encrypted and its result is broker-safe ciphertext.
/// Name-matched, so any `publish` call sanitizes — an accepted
/// approximation, reviewed in DESIGN.md §17.
pub const SANITIZER_FNS: &[&str] = &["publish", "publish_batch", "from_filter", "encrypt_cbc"];

/// Raw I/O methods that are broker-visible byte sinks *within the
/// `taint-sink` scope* (sockets, the durable log).
pub const RAW_SINK_METHODS: &[&str] = &["write_all", "write_vectored", "write"];

/// Named seed sink functions: a tainted argument reaching one of these
/// is a violation wherever the call appears.
pub const SINK_FNS: &[&str] = &["write_frame", "write_frames"];

/// Return-type identifiers considered incapable of carrying plaintext
/// content. A function whose return type mentions *only* these never
/// gets `returns_taint` from tail-expression inference (kills the
/// `fn matches(&self, e: &Event) -> bool` class of false positives).
/// `u8` is deliberately absent: `&[u8]` / `Vec<u8>` returns can be
/// plaintext payload bytes.
pub const SAFE_RETURN_IDENTS: &[&str] = &[
    "bool", "usize", "isize", "u16", "u32", "u64", "u128", "i16", "i32", "i64", "f32", "f64",
    "Ordering", "Duration",
];

/// Relative path of the panic allowlist file.
pub const ALLOWLIST_PATH: &str = "crates/xtask/allowlist.txt";

/// Relative path of the taint allowlist (shrink-only `TAINT-OK` budget,
/// same format and reconciler as the panic allowlist). Kept empty: the
/// workspace currently has no justified plaintext→sink paths.
pub const TAINT_ALLOWLIST_PATH: &str = "crates/xtask/taint_allowlist.txt";

// ---------------------------------------------------------------------
// Reactor-safety pass (DESIGN.md §17).
// ---------------------------------------------------------------------

/// Entry points of the reactor's fixed threads: (file, fn name). Code
/// reachable from these must not block (bounded-channel `send`, bare
/// `recv`, `thread::sleep`) outside `// BLOCKING-OK:` marked sites —
/// the PR 6 bug class, where one blocking send on the client I/O thread
/// stalled every connection.
pub const REACTOR_ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/siena/src/reactor/broker.rs", "run_dispatcher"),
    ("crates/siena/src/reactor/worker.rs", "run_broker_worker"),
    ("crates/siena/src/reactor/client.rs", "run_client_reactor"),
];

// ---------------------------------------------------------------------
// Workspace-lints inheritance rule.
// ---------------------------------------------------------------------

/// Crates allowed to override `[lints] workspace = true`, with the
/// exact override they must carry instead. `crypto` needs
/// `unsafe_code = "deny"` (not `forbid`) for the one zeroize volatile
/// write; `bench` for the counting `GlobalAlloc` in the wire-throughput
/// harness. `deny` still rejects unsafe everywhere except explicitly
/// `#[allow]`-marked items.
pub const LINTS_OVERRIDE_CRATES: &[(&str, &str)] = &[
    ("crypto", "unsafe_code = \"deny\""),
    ("bench", "unsafe_code = \"deny\""),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn scopes() {
        assert!(panic_scope_contains("crates/crypto/src/aes.rs"));
        assert!(!panic_scope_contains("crates/bench/src/perf.rs"));
        assert!(!panic_scope_contains("crates/crypto/src/bin/tool.rs"));
        assert!(determinism_scope_contains("crates/net/src/sim.rs"));
        assert!(determinism_scope_contains("crates/siena/src/fault.rs"));
        assert!(!determinism_scope_contains("crates/siena/src/tcp.rs"));
        assert!(hot_path_contains("crates/siena/src/tcp.rs"));
        assert!(hot_path_contains("crates/siena/src/threaded.rs"));
        assert!(hot_path_contains("crates/siena/src/reactor/broker.rs"));
        assert!(hot_path_contains("crates/siena/src/index.rs"));
        assert!(hot_path_contains("crates/siena/src/pipeline.rs"));
        assert!(!hot_path_contains("crates/siena/src/index_legacy.rs"));
        assert!(!hot_path_contains("crates/siena/src/wire.rs"));
        assert!(spawn_scope_contains("crates/siena/src/reactor/client.rs"));
        assert!(spawn_scope_contains("crates/siena/src/tcp.rs"));
        assert!(!spawn_scope_contains("crates/siena/src/threaded.rs"));
        assert!(ciphertext_scope_contains("crates/siena/src/log/mod.rs"));
        assert!(ciphertext_scope_contains("crates/siena/src/log/segment.rs"));
        assert!(!ciphertext_scope_contains("crates/siena/src/wire.rs"));
        assert!(rule_scope_contains(
            "taint-sink",
            "crates/siena/src/wire.rs"
        ));
        assert!(rule_scope_contains(
            "taint-sink",
            "crates/siena/src/log/segment.rs"
        ));
        assert!(!rule_scope_contains(
            "taint-sink",
            "crates/psguard/src/publisher.rs"
        ));
        assert!(rule_scope_contains(
            "taint-format-sink",
            "crates/siena/src/index.rs"
        ));
        assert!(!rule_scope_contains(
            "taint-format-sink",
            "crates/model/src/event.rs"
        ));
        assert!(!rule_scope_contains(
            "no-such-rule",
            "crates/siena/src/wire.rs"
        ));
    }

    #[test]
    fn tainted_bindings() {
        assert!(binding_is_tainted("master_key"));
        assert!(binding_is_tainted("session_secret"));
        assert!(!binding_is_tainted("key_count"));
        assert!(!binding_is_tainted("topic"));
    }

    /// Every configured path must exist on disk: a rename must not
    /// silently turn a rule family into a no-op.
    #[test]
    fn configured_paths_exist() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf();
        let mut checked = 0usize;
        for scoped in SCOPED_RULES {
            for p in scoped.paths {
                let on_disk = root.join(p);
                assert!(
                    on_disk.exists(),
                    "rule `{}` scope entry `{p}` does not exist on disk",
                    scoped.rule
                );
                if p.ends_with('/') {
                    assert!(on_disk.is_dir(), "`{p}` should be a directory");
                } else {
                    assert!(on_disk.is_file(), "`{p}` should be a file");
                }
                checked += 1;
            }
        }
        for krate in PANIC_SCOPE_CRATES {
            assert!(
                root.join("crates").join(krate).join("src").is_dir(),
                "panic-scope crate `{krate}` has no src/ on disk"
            );
            checked += 1;
        }
        for (file, _) in REACTOR_ENTRY_POINTS {
            assert!(
                root.join(file).is_file(),
                "reactor entry-point file `{file}` does not exist on disk"
            );
            checked += 1;
        }
        for (krate, _) in LINTS_OVERRIDE_CRATES {
            assert!(
                root.join("crates").join(krate).join("Cargo.toml").is_file(),
                "lints-override crate `{krate}` has no Cargo.toml on disk"
            );
            checked += 1;
        }
        assert!(checked > 15, "table unexpectedly small: {checked}");
    }
}
