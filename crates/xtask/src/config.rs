//! Project invariants enforced by `psguard-xtask check`.
//!
//! Everything here is deliberately a compile-time constant: the point of
//! the tool is that loosening an invariant is a reviewed code change, not
//! an environment tweak. DESIGN.md §12 documents how to extend each list.

/// Type names that hold raw key material ("tainted" types).
///
/// A tainted type must not `#[derive(Debug)]` or `#[derive(Serialize)]`,
/// and must not have a `Display` or manual `Serialize` impl: leakage
/// through debug/display/serialization paths is the classic
/// implementation-level failure mode of confidentiality-preserving
/// pub/sub. Manual *redacting* `Debug` impls (fingerprints only) are the
/// sanctioned replacement.
pub const TAINTED_TYPES: &[&str] = &[
    // crypto: raw key bytes and expanded schedules.
    "DeriveKey",
    "AesKey",
    "Aes128",
    // crypto: reusable keyed contexts — pad-absorbed digest states are
    // key-equivalent for forging MACs, and round keys invert to the key.
    "PrfContext",
    "HmacContext",
    "AesContext",
    // keys: hierarchy roots and authorization material.
    "Kdc",
    "NaktKeySpace",
    "CategoryKeySpace",
    "StringKeySpace",
    "AuthKey",
    "ConstraintGrant",
    "Grant",
    "KeyCache",
    "CachedKdc",
    // groupkey: per-segment group keys and LKH node keys.
    "LkhTree",
    "Segment",
    "SubscriberGroupManager",
];

/// Binding names that denote key material. A format string interpolating
/// one of these (or passing one as a format argument) is a violation even
/// when the type's `Debug` redacts — the binding may be raw bytes.
pub const TAINTED_BINDINGS: &[&str] = &[
    "secret",
    "master",
    "master_key",
    "raw_key",
    "key_bytes",
    "root_key",
    "topic_key",
    "node_key",
    "derive_key",
    "auth_key",
    "content_key",
    "group_key",
    "event_key",
    "mac_key",
    "private_key",
    "privkey",
];

/// Suffixes that also mark a binding as tainted (`*_secret`, `*_sk`).
pub const TAINTED_BINDING_SUFFIXES: &[&str] = &["_secret", "_sk"];

/// Whether a binding name denotes key material.
pub fn binding_is_tainted(name: &str) -> bool {
    TAINTED_BINDINGS.contains(&name)
        || TAINTED_BINDING_SUFFIXES
            .iter()
            .any(|suf| name.len() > suf.len() && name.ends_with(suf))
}

/// Macros whose format string / arguments are checked for tainted
/// bindings. `assert*` family is excluded on purpose: failure output goes
/// through `Debug`, which the derive rule already forces to redact.
pub const FORMAT_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln", "panic",
];

/// Derives that must not appear on a tainted type.
pub const FORBIDDEN_DERIVES: &[&str] = &["Debug", "Serialize"];

/// Traits that must not be implemented (even manually) for tainted types.
pub const FORBIDDEN_IMPLS: &[&str] = &["Display", "Serialize"];

/// Crates whose `src/` trees must be panic-free on non-test paths.
/// `bench` is excluded: it is a measurement harness of `fn main()`s where
/// aborting on a broken setup is the correct behavior.
pub const PANIC_SCOPE_CRATES: &[&str] = &[
    "analysis", "crypto", "groupkey", "keys", "model", "net", "psguard", "routing", "siena",
    "xtask",
];

/// Methods (called as `.name(`) that panic and are banned on library paths.
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that panic and are banned on library paths.
pub const PANIC_MACROS: &[&str] = &["panic", "unimplemented", "todo", "unreachable"];

/// Path prefixes (workspace-relative, `/`-separated) that must stay
/// deterministic: code reachable from the seeded simulator must not read
/// wall clocks, sleep, or draw OS randomness. `siena/src/tcp.rs` is the
/// real-transport boundary and is deliberately *not* in scope.
pub const DETERMINISM_SCOPE: &[&str] = &[
    "crates/net/src/",
    "crates/routing/src/",
    "crates/siena/src/fault.rs",
];

/// Identifiers banned inside the determinism scope.
pub const NONDETERMINISTIC_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "sleep",
    "thread_rng",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Files whose non-test code is the allocation-free dissemination hot
/// path: per-message serialization there must go through the shared
/// `FramePool` (encode once, fan out `Arc` clones), so per-call
/// allocating conversions are banned. Entries ending in `/` cover the
/// whole directory. See DESIGN.md §14.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/siena/src/tcp.rs",
    "crates/siena/src/threaded.rs",
    "crates/siena/src/reactor/",
];

/// Methods (called as `.name(`) that allocate a fresh buffer per call
/// and therefore must not appear in hot-path files: `to_bytes` is the
/// old one-copy-per-recipient serialization, `to_vec` the classic
/// borrowed-slice detour.
pub const HOT_PATH_ALLOC_METHODS: &[&str] = &["to_bytes", "to_vec"];

/// Paths (workspace-relative; entries ending in `/` cover the whole
/// directory) where `thread::spawn` is banned outside `// SPAWN-OK:`
/// marked sites. The reactor transport's contract is a *fixed* thread
/// count — worker pool, accept loop, dispatcher, client reactor — all
/// sized at spawn time; an unmarked spawn is a regression back toward
/// thread-per-connection. `threaded.rs` is deliberately out of scope:
/// it is the retained thread-per-connection baseline.
pub const SPAWN_SCOPE: &[&str] = &["crates/siena/src/tcp.rs", "crates/siena/src/reactor/"];

/// Paths (workspace-relative; entries ending in `/` cover the whole
/// directory) that must stay ciphertext-only at rest: the durable event
/// log stores already-encoded opaque bytes, which is what makes it
/// encrypted-at-rest for free under the honest-but-curious broker
/// model. Naming the plaintext event model (or the wire codec) there
/// means structured plaintext is being (de)serialized onto the disk
/// path.
pub const CIPHERTEXT_SCOPE: &[&str] = &["crates/siena/src/log/"];

/// Identifiers banned inside the ciphertext-at-rest scope: the
/// plaintext event/message model and its codec. `EventLog` is a single
/// distinct identifier and does not match `Event`.
pub const CIPHERTEXT_BANNED_IDENTS: &[&str] = &["Event", "Message", "Wire", "psguard_model"];

/// Relative path of the panic allowlist file.
pub const ALLOWLIST_PATH: &str = "crates/xtask/allowlist.txt";

/// Whether a workspace-relative file path is in the panic-freedom scope.
pub fn panic_scope_contains(rel: &str) -> bool {
    PANIC_SCOPE_CRATES.iter().any(|krate| {
        let prefix = format!("crates/{krate}/src/");
        rel.starts_with(&prefix) && !rel.starts_with(&format!("{prefix}bin/"))
    })
}

/// Whether a workspace-relative file path is in the determinism scope.
pub fn determinism_scope_contains(rel: &str) -> bool {
    DETERMINISM_SCOPE.iter().any(|p| rel.starts_with(p))
}

/// Whether a path matches a scope list of exact files and `dir/` prefixes.
fn file_or_dir_match(list: &[&str], rel: &str) -> bool {
    list.iter().any(|p| {
        if p.ends_with('/') {
            rel.starts_with(p)
        } else {
            rel == *p
        }
    })
}

/// Whether a workspace-relative file path is a dissemination hot path.
pub fn hot_path_contains(rel: &str) -> bool {
    file_or_dir_match(HOT_PATH_FILES, rel)
}

/// Whether a workspace-relative file path is in the fixed-thread-count
/// (spawn-ban) scope.
pub fn spawn_scope_contains(rel: &str) -> bool {
    file_or_dir_match(SPAWN_SCOPE, rel)
}

/// Whether a workspace-relative file path must stay ciphertext-only at
/// rest.
pub fn ciphertext_scope_contains(rel: &str) -> bool {
    file_or_dir_match(CIPHERTEXT_SCOPE, rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes() {
        assert!(panic_scope_contains("crates/crypto/src/aes.rs"));
        assert!(!panic_scope_contains("crates/bench/src/perf.rs"));
        assert!(!panic_scope_contains("crates/crypto/src/bin/tool.rs"));
        assert!(determinism_scope_contains("crates/net/src/sim.rs"));
        assert!(determinism_scope_contains("crates/siena/src/fault.rs"));
        assert!(!determinism_scope_contains("crates/siena/src/tcp.rs"));
        assert!(hot_path_contains("crates/siena/src/tcp.rs"));
        assert!(hot_path_contains("crates/siena/src/threaded.rs"));
        assert!(hot_path_contains("crates/siena/src/reactor/broker.rs"));
        assert!(!hot_path_contains("crates/siena/src/wire.rs"));
        assert!(spawn_scope_contains("crates/siena/src/reactor/client.rs"));
        assert!(spawn_scope_contains("crates/siena/src/tcp.rs"));
        assert!(!spawn_scope_contains("crates/siena/src/threaded.rs"));
        assert!(ciphertext_scope_contains("crates/siena/src/log/mod.rs"));
        assert!(ciphertext_scope_contains("crates/siena/src/log/segment.rs"));
        assert!(!ciphertext_scope_contains("crates/siena/src/wire.rs"));
    }

    #[test]
    fn tainted_bindings() {
        assert!(binding_is_tainted("master_key"));
        assert!(binding_is_tainted("session_secret"));
        assert!(!binding_is_tainted("key_count"));
        assert!(!binding_is_tainted("topic"));
    }
}
