//! Reactor-safety lints over the workspace call graph (DESIGN.md §17).
//!
//! Motivated by the PR 6 review fixes: one blocking `send` on the client
//! I/O thread stalled every connection. Two lints run on code reachable
//! from the reactor entry points ([`crate::config::REACTOR_ENTRY_POINTS`] —
//! dispatcher, broker worker, client reactor):
//!
//! 1. **Blocking ops** (`reactor-blocking`): a blocking `.send(..)` on a
//!    *bounded* channel, a bare `.recv()`, or a `thread::sleep` call in
//!    any reachable function. Bounded-ness is tracked by provenance:
//!    `let (tx, rx) = bounded::<T>(n)` registers both ends, `.clone()`
//!    aliases propagate, and a send through a struct field resolves via
//!    the field's name (`slot.etx.send` → `etx`). Unknown senders are
//!    allowed — unbounded sends never block. `// BLOCKING-OK: <why>` on
//!    or just above the call suppresses, for justified bounded waits
//!    (e.g. shutdown drains).
//! 2. **Bounded-channel cycles** (`channel-cycle`): two reactor
//!    components with blocking bounded sends toward each other — each
//!    can fill the other's queue while blocked, a deadlock candidate.
//!    `try_send` escapes (the PR 6 fix) break the edge.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::parser::SourceFile;
use crate::rules::{Finding, Rule};
use crate::symbols::{FnId, SymbolTable};

/// Which end of a channel a binding names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum End {
    Sender,
    Receiver,
}

/// One registered channel creation site.
#[derive(Debug)]
struct Channel {
    bounded: bool,
    file: String,
    line: u32,
}

/// Binding-name → (channel id, end) registry with `.clone()` aliasing.
#[derive(Debug, Default)]
struct Registry {
    channels: Vec<Channel>,
    ends: BTreeMap<String, Vec<(usize, End)>>,
}

impl Registry {
    fn register(&mut self, name: &str, chan: usize, end: End) {
        let ends = self.ends.entry(name.to_owned()).or_default();
        if !ends.contains(&(chan, end)) {
            ends.push((chan, end));
        }
    }

    /// Channels a `.send(..)` through `name` might block on.
    fn bounded_send_channels(&self, name: &str) -> Vec<usize> {
        self.ends
            .get(name)
            .map(|v| {
                v.iter()
                    .filter(|(c, e)| *e == End::Sender && self.channels[*c].bounded)
                    .map(|(c, _)| *c)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Channels drained through `name`.
    fn recv_channels(&self, name: &str) -> Vec<usize> {
        self.ends
            .get(name)
            .map(|v| {
                v.iter()
                    .filter(|(_, e)| *e == End::Receiver)
                    .map(|(c, _)| *c)
                    .collect()
            })
            .unwrap_or_default()
    }
}

const RECV_METHODS: &[&str] = &["recv", "try_recv", "recv_timeout"];

/// Runs both lints. `entries` is `(file, fn)` — production callers pass
/// [`crate::config::REACTOR_ENTRY_POINTS`]; fixture tests pass their own.
pub fn run(
    files: &[SourceFile],
    table: &SymbolTable,
    graph: &CallGraph,
    entries: &[(&str, &str)],
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Resolve entry points; a missing one is config rot and a hard error.
    let mut entry_ids: Vec<FnId> = Vec::new();
    for (file, name) in entries {
        match table.find_in_file(file, name) {
            Some(id) => entry_ids.push(id),
            None => findings.push(Finding {
                file: (*file).to_owned(),
                line: 1,
                rule: Rule::ReactorBlocking,
                message: format!(
                    "configured reactor entry point `{name}` not found in this file; \
                     update REACTOR_ENTRY_POINTS"
                ),
                allowlisted: false,
            }),
        }
    }
    if entry_ids.is_empty() {
        return findings;
    }

    let registry = build_registry(table);
    let union_state = graph.reach_from(&entry_ids);
    let lexed_by_rel: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel.as_str(), f)).collect();

    // Lint 1: blocking ops in reachable code.
    for (id, node) in table.fns.iter().enumerate() {
        if union_state[id].is_none() {
            continue;
        }
        let lexed = lexed_by_rel.get(node.rel_path.as_str()).map(|f| &f.lexed);
        for stmt in &node.item.stmts {
            let holds_lock = stmt.calls.iter().any(|c| !c.is_macro && c.name == "lock");
            for c in &stmt.calls {
                if c.is_macro {
                    continue;
                }
                let what = match c.name.as_str() {
                    "send" if !c.receiver.is_empty() => {
                        let via = c.receiver.last().map(String::as_str).unwrap_or("");
                        if registry.bounded_send_channels(via).is_empty() {
                            None
                        } else {
                            Some(format!(
                                "blocking `.send(..)` on the bounded channel `{via}`; \
                                 use `try_send` with an overflow policy"
                            ))
                        }
                    }
                    "recv" if !c.receiver.is_empty() => Some(
                        "bare `.recv()` blocks the reactor thread indefinitely; \
                         use `try_recv` or `recv_timeout`"
                            .to_owned(),
                    ),
                    "sleep" => Some(
                        "`thread::sleep` stalls the reactor thread; use the poller's \
                         timed wait instead"
                            .to_owned(),
                    ),
                    _ => None,
                };
                let Some(mut what) = what else { continue };
                if lexed.is_some_and(|l| l.is_blocking_ok_near(c.line)) {
                    continue;
                }
                if holds_lock {
                    what.push_str(" (a lock is held in the same statement)");
                }
                let chain = render_chain(&union_state, table, id);
                findings.push(Finding {
                    file: node.rel_path.clone(),
                    line: c.line,
                    rule: Rule::ReactorBlocking,
                    message: format!("{what}; reachable via {chain}"),
                    allowlisted: false,
                });
            }
        }
    }

    // Lint 2: bounded-channel send cycles between entry components.
    findings.extend(find_cycles(table, graph, &entry_ids, entries, &registry));

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings.dedup();
    findings
}

/// Scans every function for channel creations and `.clone()` aliases.
/// Aliasing iterates to a fixpoint so a clone of a clone still resolves.
fn build_registry(table: &SymbolTable) -> Registry {
    let mut reg = Registry::default();
    for node in &table.fns {
        for stmt in &node.item.stmts {
            for c in &stmt.calls {
                if c.is_macro || !(c.name == "bounded" || c.name == "unbounded") {
                    continue;
                }
                if stmt.lets.len() != 2 {
                    continue;
                }
                let chan = reg.channels.len();
                reg.channels.push(Channel {
                    bounded: c.name == "bounded",
                    file: node.rel_path.clone(),
                    line: c.line,
                });
                reg.register(&stmt.lets[0], chan, End::Sender);
                reg.register(&stmt.lets[1], chan, End::Receiver);
            }
        }
    }
    for _ in 0..4 {
        let mut changed = false;
        for node in &table.fns {
            for stmt in &node.item.stmts {
                for c in &stmt.calls {
                    if c.is_macro || c.name != "clone" || c.receiver.is_empty() {
                        continue;
                    }
                    let src = c.receiver.last().map(String::as_str).unwrap_or("");
                    let entries = reg.ends.get(src).cloned().unwrap_or_default();
                    if entries.is_empty() {
                        continue;
                    }
                    for target in &stmt.lets {
                        for (chan, end) in &entries {
                            let known = reg
                                .ends
                                .get(target)
                                .is_some_and(|v| v.contains(&(*chan, *end)));
                            if !known {
                                reg.register(target, *chan, *end);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    reg
}

/// Renders `entry -> … -> fn` for a finding message.
fn render_chain(
    state: &[Option<Option<crate::callgraph::Edge>>],
    table: &SymbolTable,
    target: FnId,
) -> String {
    CallGraph::path_to(state, target)
        .iter()
        .map(|&id| format!("`{}`", table.fns[id].display_name()))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Detects two entry components with blocking bounded sends toward each
/// other: component A blocking-sends on a channel drained by component
/// B, and B blocking-sends on a channel drained by A.
fn find_cycles(
    table: &SymbolTable,
    graph: &CallGraph,
    entry_ids: &[FnId],
    entries: &[(&str, &str)],
    registry: &Registry,
) -> Vec<Finding> {
    // Per-entry reachable sets.
    let comps: Vec<Vec<bool>> = entry_ids
        .iter()
        .map(|&e| graph.reach_from(&[e]).iter().map(Option::is_some).collect())
        .collect();

    // Per-component: channels blocking-sent on (with a witness site) and
    // channels drained.
    let mut sends: Vec<BTreeMap<usize, (String, u32)>> = vec![BTreeMap::new(); comps.len()];
    let mut drains: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); comps.len()];
    for (id, node) in table.fns.iter().enumerate() {
        for (ci, comp) in comps.iter().enumerate() {
            if !comp.get(id).copied().unwrap_or(false) {
                continue;
            }
            for stmt in &node.item.stmts {
                for c in &stmt.calls {
                    if c.is_macro || c.receiver.is_empty() {
                        continue;
                    }
                    let via = c.receiver.last().map(String::as_str).unwrap_or("");
                    if c.name == "send" {
                        for chan in registry.bounded_send_channels(via) {
                            sends[ci]
                                .entry(chan)
                                .or_insert((node.rel_path.clone(), c.line));
                        }
                    } else if RECV_METHODS.contains(&c.name.as_str()) {
                        for chan in registry.recv_channels(via) {
                            drains[ci].insert(chan);
                        }
                    }
                }
            }
        }
    }

    let mut findings = Vec::new();
    for a in 0..comps.len() {
        for b in (a + 1)..comps.len() {
            let a_to_b = sends[a].iter().find(|(chan, _)| drains[b].contains(chan));
            let b_to_a = sends[b].iter().find(|(chan, _)| drains[a].contains(chan));
            if let (Some((c1, site)), Some((c2, _))) = (a_to_b, b_to_a) {
                let chan1 = &registry.channels[*c1];
                let chan2 = &registry.channels[*c2];
                findings.push(Finding {
                    file: site.0.clone(),
                    line: site.1,
                    rule: Rule::ChannelCycle,
                    message: format!(
                        "bounded-channel send cycle between `{}` and `{}`: blocking sends \
                         both directions (channels created at {}:{} and {}:{}) can deadlock \
                         with both queues full; break one direction with `try_send`",
                        entries[a].1, entries[b].1, chan1.file, chan1.line, chan2.file, chan2.line,
                    ),
                    allowlisted: false,
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::load;

    fn run_on(files: &[(&str, &str)], entries: &[(&str, &str)]) -> Vec<Finding> {
        let loaded: Vec<SourceFile> = files.iter().map(|(r, s)| load(r, s)).collect();
        let table = SymbolTable::build(loaded.iter().map(|f| &f.parsed));
        let graph = CallGraph::build(&table);
        run(&loaded, &table, &graph, entries)
    }

    const FILE: &str = "crates/siena/src/reactor/demo.rs";

    #[test]
    fn blocking_send_on_bounded_channel_reachable_from_entry_flagged() {
        let f = run_on(
            &[(
                FILE,
                "fn run_client_reactor() {\n  let (etx, erx) = bounded::<Event>(64);\n  \
                 deliver(&etx);\n}\nfn deliver(etx: &Sender<Event>) {\n  \
                 etx.send(make()).ok();\n}\n",
            )],
            &[(FILE, "run_client_reactor")],
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, Rule::ReactorBlocking);
        assert!(
            f[0].message.contains("run_client_reactor"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn try_send_and_unbounded_send_are_clean() {
        let f = run_on(
            &[(
                FILE,
                "fn run_client_reactor() {\n  let (etx, erx) = bounded::<Event>(64);\n  \
                 let (atx, arx) = unbounded::<Act>();\n  etx.try_send(make()).ok();\n  \
                 atx.send(act()).ok();\n}\n",
            )],
            &[(FILE, "run_client_reactor")],
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn clone_alias_and_field_send_still_resolve() {
        let f = run_on(
            &[(
                FILE,
                "fn run_client_reactor() {\n  let (etx, erx) = bounded::<Event>(64);\n  \
                 let slot = Slot { etx: etx.clone() };\n  pump(&slot);\n}\n\
                 fn pump(slot: &Slot) {\n  slot.etx.send(make()).ok();\n}\n",
            )],
            &[(FILE, "run_client_reactor")],
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("etx"));
    }

    #[test]
    fn unreachable_code_and_blocking_ok_marker_are_not_flagged() {
        let f = run_on(
            &[(
                FILE,
                "fn run_client_reactor() {\n  let (etx, erx) = bounded::<Event>(64);\n  \
                 flush(&etx);\n}\n\
                 fn flush(etx: &Sender<Event>) {\n  \
                 // BLOCKING-OK: bounded shutdown drain, reactor is exiting\n  \
                 std::thread::sleep(NAP);\n}\n\
                 fn app_side(etx: &Sender<Event>) {\n  etx.send(make()).ok();\n}\n",
            )],
            &[(FILE, "run_client_reactor")],
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn bare_recv_and_sleep_flagged() {
        let f = run_on(
            &[(
                FILE,
                "fn run_dispatcher() {\n  let (tx, rx) = unbounded::<Msg>();\n  \
                 let m = rx.recv();\n  std::thread::sleep(NAP);\n}\n",
            )],
            &[(FILE, "run_dispatcher")],
        );
        assert_eq!(f.len(), 2, "{f:#?}");
    }

    #[test]
    fn bounded_cycle_between_components_flagged_and_try_send_escape_clean() {
        let cycle = run_on(
            &[(
                FILE,
                "fn run_dispatcher() {\n  fwd_to_worker();\n  let m = drx.recv_timeout(T);\n}\n\
                 fn run_broker_worker() {\n  fwd_to_dispatcher();\n  let m = wrx.try_recv();\n}\n\
                 fn fwd_to_worker() { wtx.send(job()).ok(); }\n\
                 fn fwd_to_dispatcher() { dtx.send(msg()).ok(); }\n\
                 fn setup() {\n  let (wtx, wrx) = bounded::<Job>(4);\n  \
                 let (dtx, drx) = bounded::<Msg>(4);\n}\n",
            )],
            &[(FILE, "run_dispatcher"), (FILE, "run_broker_worker")],
        );
        assert!(
            cycle.iter().any(|f| f.rule == Rule::ChannelCycle),
            "{cycle:#?}"
        );
        let escaped = run_on(
            &[(
                FILE,
                "fn run_dispatcher() {\n  fwd_to_worker();\n  let m = drx.recv_timeout(T);\n}\n\
                 fn run_broker_worker() {\n  fwd_to_dispatcher();\n  let m = wrx.try_recv();\n}\n\
                 fn fwd_to_worker() { wtx.send(job()).ok(); }\n\
                 fn fwd_to_dispatcher() { dtx.try_send(msg()).ok(); }\n\
                 fn setup() {\n  let (wtx, wrx) = bounded::<Job>(4);\n  \
                 let (dtx, drx) = bounded::<Msg>(4);\n}\n",
            )],
            &[(FILE, "run_dispatcher"), (FILE, "run_broker_worker")],
        );
        assert!(
            escaped.iter().all(|f| f.rule != Rule::ChannelCycle),
            "{escaped:#?}"
        );
    }

    #[test]
    fn missing_entry_point_is_config_rot() {
        let f = run_on(
            &[(FILE, "fn something_else() {}\n")],
            &[(FILE, "run_dispatcher")],
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("not found"));
    }
}
