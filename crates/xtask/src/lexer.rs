//! A hand-rolled, line-aware Rust lexer.
//!
//! The workspace has no crates.io access, so `syn` is not an option. The
//! rules in this tool only need a token stream that is faithful about the
//! things a regex gets wrong:
//!
//! * string literals (plain, raw, byte, raw-byte) — their *contents* are
//!   kept for the format-interpolation rule but never mistaken for code;
//! * comments (line, nested block) — stripped, except that a trailing
//!   `PANIC-OK:` justification marker is remembered per line;
//! * char literals vs. lifetimes;
//! * `#[cfg(test)]` / `#[test]` attributes and `mod tests` blocks, whose
//!   enclosed lines are marked as test-scoped.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A string literal's cooked content (escapes left verbatim).
    Str(String),
    /// A character or byte literal.
    Char,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexed source file with per-line scope information.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// `test_lines[n]` (1-based) is true when line `n` is inside test-only
    /// code (`#[cfg(test)]` items, `#[test]` functions, `mod tests`).
    pub test_lines: Vec<bool>,
    /// `panic_ok_lines[n]` is true when line `n` carries a
    /// `// PANIC-OK: <justification>` comment.
    pub panic_ok_lines: Vec<bool>,
    /// `spawn_ok_lines[n]` is true when line `n` carries a
    /// `// SPAWN-OK: <justification>` comment.
    pub spawn_ok_lines: Vec<bool>,
    /// `taint_ok_lines[n]` is true when line `n` carries a
    /// `// TAINT-OK: <justification>` comment.
    pub taint_ok_lines: Vec<bool>,
    /// `blocking_ok_lines[n]` is true when line `n` carries a
    /// `// BLOCKING-OK: <justification>` comment.
    pub blocking_ok_lines: Vec<bool>,
}

impl LexedFile {
    /// Whether the given 1-based line is test-scoped.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Whether the given 1-based line carries a PANIC-OK justification.
    pub fn is_panic_ok_line(&self, line: u32) -> bool {
        self.panic_ok_lines
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Whether the given 1-based line, or one of the two lines above it,
    /// carries a SPAWN-OK justification. The window exists because the
    /// justification conventionally sits in a (possibly two-line)
    /// comment immediately above the `spawn` call.
    pub fn is_spawn_ok_near(&self, line: u32) -> bool {
        (line.saturating_sub(2)..=line).any(|l| {
            self.spawn_ok_lines
                .get(l as usize)
                .copied()
                .unwrap_or(false)
        })
    }

    /// Whether the given 1-based line, or one of the two lines above it,
    /// carries a TAINT-OK justification (same window convention as
    /// SPAWN-OK: the comment sits on or just above the flagged call).
    pub fn is_taint_ok_near(&self, line: u32) -> bool {
        (line.saturating_sub(2)..=line).any(|l| {
            self.taint_ok_lines
                .get(l as usize)
                .copied()
                .unwrap_or(false)
        })
    }

    /// Whether the given 1-based line, or one of the two lines above it,
    /// carries a BLOCKING-OK justification.
    pub fn is_blocking_ok_near(&self, line: u32) -> bool {
        (line.saturating_sub(2)..=line).any(|l| {
            self.blocking_ok_lines
                .get(l as usize)
                .copied()
                .unwrap_or(false)
        })
    }
}

/// Lexes a whole source file.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let line_count = source.lines().count() + 1;
    let mut out = LexedFile {
        tokens: Vec::new(),
        test_lines: vec![false; line_count + 1],
        panic_ok_lines: vec![false; line_count + 1],
        spawn_ok_lines: vec![false; line_count + 1],
        taint_ok_lines: vec![false; line_count + 1],
        blocking_ok_lines: vec![false; line_count + 1],
    };

    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();
    let at = |idx: usize| -> char {
        if idx < n {
            chars[idx]
        } else {
            '\0'
        }
    };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == '/' => {
                // Line comment; remember PANIC-OK / SPAWN-OK markers.
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                if comment.contains("PANIC-OK:") {
                    if let Some(slot) = out.panic_ok_lines.get_mut(line as usize) {
                        *slot = true;
                    }
                }
                if comment.contains("SPAWN-OK:") {
                    if let Some(slot) = out.spawn_ok_lines.get_mut(line as usize) {
                        *slot = true;
                    }
                }
                if comment.contains("TAINT-OK:") {
                    if let Some(slot) = out.taint_ok_lines.get_mut(line as usize) {
                        *slot = true;
                    }
                }
                if comment.contains("BLOCKING-OK:") {
                    if let Some(slot) = out.blocking_ok_lines.get_mut(line as usize) {
                        *slot = true;
                    }
                }
            }
            '/' if at(i + 1) == '*' => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && at(i + 1) == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && at(i + 1) == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let tok_line = line;
                let (content, next, nl) = lex_string(&chars, i + 1);
                out.tokens.push(Token {
                    tok: Tok::Str(content),
                    line: tok_line,
                });
                line += nl;
                i = next;
            }
            'r' | 'b' if is_string_prefix(&chars, i) => {
                let tok_line = line;
                let (tok, next, nl) = lex_prefixed_literal(&chars, i);
                out.tokens.push(Token {
                    tok,
                    line: tok_line,
                });
                line += nl;
                i = next;
            }
            '\'' => {
                // Char literal or lifetime.
                if at(i + 1) == '\\' {
                    // Escaped char literal: consume to closing quote.
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                } else if at(i + 2) == '\'' {
                    i += 3;
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                } else {
                    // Lifetime: skip the quote and the label.
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                out.tokens.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Float continuation: `1.5`, but not `1.max(..)`.
                if at(i) == '.' && at(i + 1).is_ascii_digit() {
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            other => {
                out.tokens.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }

    mark_test_scopes(&mut out);
    out
}

/// Whether position `i` starts a raw/byte string or byte-char prefix
/// (`r"`, `r#"`, `b"`, `br"`, `b'`, ...), as opposed to a plain identifier.
fn is_string_prefix(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let at = |idx: usize| -> char {
        if idx < n {
            chars[idx]
        } else {
            '\0'
        }
    };
    // Previous char must not be part of an identifier (else this is the
    // tail of e.g. `attr` or `sub`).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    match chars[i] {
        'r' => at(i + 1) == '"' || (at(i + 1) == '#' && (at(i + 2) == '"' || at(i + 2) == '#')),
        'b' => {
            at(i + 1) == '"'
                || at(i + 1) == '\''
                || (at(i + 1) == 'r' && (at(i + 2) == '"' || at(i + 2) == '#'))
        }
        _ => false,
    }
}

/// Lexes a plain `"..."` string starting *after* the opening quote.
/// Returns (content, next index, newlines consumed).
fn lex_string(chars: &[char], mut i: usize) -> (String, usize, u32) {
    let n = chars.len();
    let mut content = String::new();
    let mut newlines = 0u32;
    while i < n {
        match chars[i] {
            '\\' => {
                content.push('\\');
                if i + 1 < n {
                    content.push(chars[i + 1]);
                    if chars[i + 1] == '\n' {
                        newlines += 1;
                    }
                }
                i += 2;
            }
            '"' => return (content, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                content.push(c);
                i += 1;
            }
        }
    }
    (content, i, newlines)
}

/// Lexes an `r`/`b`-prefixed literal starting at the prefix.
fn lex_prefixed_literal(chars: &[char], mut i: usize) -> (Tok, usize, u32) {
    let n = chars.len();
    let at = |idx: usize| -> char {
        if idx < n {
            chars[idx]
        } else {
            '\0'
        }
    };
    let mut raw = false;
    if chars[i] == 'b' {
        i += 1;
    }
    if at(i) == 'r' {
        raw = true;
        i += 1;
    }
    if at(i) == '\'' {
        // Byte char literal b'x' / b'\n'.
        i += 1;
        if at(i) == '\\' {
            i += 1;
        }
        i += 1;
        while i < n && chars[i] != '\'' {
            i += 1;
        }
        return (Tok::Char, i + 1, 0);
    }
    let mut hashes = 0usize;
    while at(i) == '#' {
        hashes += 1;
        i += 1;
    }
    if at(i) != '"' {
        // `r#ident` raw identifier: lex the identifier.
        let start = i;
        let mut j = i;
        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        let ident: String = chars[start..j].iter().collect();
        return (Tok::Ident(ident), j, 0);
    }
    i += 1; // opening quote
    let mut content = String::new();
    let mut newlines = 0u32;
    while i < n {
        if chars[i] == '"' && !raw {
            return (Tok::Str(content), i + 1, newlines);
        }
        if chars[i] == '"' && raw {
            // Need `hashes` following '#'s to close.
            let mut ok = true;
            for k in 0..hashes {
                if at(i + 1 + k) != '#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (Tok::Str(content), i + 1 + hashes, newlines);
            }
        }
        if chars[i] == '\\' && !raw {
            content.push('\\');
            if i + 1 < n {
                content.push(chars[i + 1]);
                if chars[i + 1] == '\n' {
                    newlines += 1;
                }
            }
            i += 2;
            continue;
        }
        if chars[i] == '\n' {
            newlines += 1;
        }
        content.push(chars[i]);
        i += 1;
    }
    (Tok::Str(content), i, newlines)
}

/// Marks lines belonging to test-only items: `#[cfg(test)]` / `#[test]`
/// attributed items and `mod tests { .. }` blocks.
fn mark_test_scopes(file: &mut LexedFile) {
    let toks = &file.tokens;
    let n = toks.len();
    let mut spans: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        match &toks[i].tok {
            Tok::Punct('#') if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) => {
                // Collect the attribute's identifiers up to the matching ']'.
                let mut j = i + 2;
                let mut depth = 1usize;
                let mut idents: Vec<&str> = Vec::new();
                while j < n && depth > 0 {
                    match &toks[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        Tok::Ident(s) => idents.push(s.as_str()),
                        _ => {}
                    }
                    j += 1;
                }
                let is_test_attr = idents.contains(&"test") && !idents.contains(&"not");
                if is_test_attr {
                    if let Some(span) = item_block_span(toks, j) {
                        spans.push(span);
                        i = j;
                        continue;
                    }
                }
                i = j;
            }
            Tok::Ident(m) if m == "mod" => {
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                    let testish = name == "tests" || name == "test" || name.ends_with("_tests");
                    if testish {
                        if let Some(span) = item_block_span(toks, i + 2) {
                            spans.push(span);
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    for (lo, hi) in spans {
        for l in lo..=hi {
            if let Some(slot) = file.test_lines.get_mut(l as usize) {
                *slot = true;
            }
        }
    }
}

/// From token index `start` (just after an attribute or `mod name`), finds
/// the item's `{ .. }` block and returns its (first, last) line span.
/// Returns `None` when a `;` ends the item before any block opens.
fn item_block_span(toks: &[Token], start: usize) -> Option<(u32, u32)> {
    let n = toks.len();
    let mut i = start;
    // Skip any further attributes.
    loop {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct('#'))
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) =>
            {
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    match &toks[i].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => break,
        }
    }
    // Find the block opener; bail on a semicolon item.
    while i < n {
        match &toks[i].tok {
            Tok::Punct(';') => return None,
            Tok::Punct('{') => {
                let first = toks[i].line;
                let mut depth = 1usize;
                let mut j = i + 1;
                let mut last = first;
                while j < n && depth > 0 {
                    match &toks[j].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => depth -= 1,
                        _ => {}
                    }
                    last = toks[j].line;
                    j += 1;
                }
                return Some((first, last));
            }
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
// unwrap in a comment
/* panic! in /* a nested */ block */
let s = "call .unwrap() here";
let r = r#"panic!("raw")"#;
let real = value;
"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "unwrap"));
        assert!(!ids.iter().any(|s| s == "panic"));
        assert!(ids.iter().any(|s| s == "real"));
    }

    #[test]
    fn string_contents_are_preserved() {
        let f = lex(r#"println!("leak {master_key}");"#);
        let strs: Vec<&str> = f
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["leak {master_key}"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let chars = f
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Char))
            .count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn cfg_test_mod_is_test_scoped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let f = lex(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(4));
    }

    #[test]
    fn cfg_not_test_is_not_test_scoped() {
        let src = "#[cfg(not(test))]\nmod real {\n    fn f() {}\n}\n";
        let f = lex(src);
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn cfg_test_use_item_does_not_swallow_rest_of_file() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn lib() { x.unwrap(); }\n";
        let f = lex(src);
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn panic_ok_marker_is_line_scoped() {
        let src = "let a = x.unwrap(); // PANIC-OK: statically sized\nlet b = y.unwrap();\n";
        let f = lex(src);
        assert!(f.is_panic_ok_line(1));
        assert!(!f.is_panic_ok_line(2));
    }

    #[test]
    fn spawn_ok_marker_covers_a_short_window_below() {
        let src = "// SPAWN-OK: fixed pool sized once\n// at startup, not per connection.\nstd::thread::spawn(f);\nstd::thread::spawn(g);\n";
        let f = lex(src);
        assert!(f.is_spawn_ok_near(3), "marker two lines above applies");
        assert!(
            !f.is_spawn_ok_near(4),
            "a marker must not leak past its window"
        );
    }

    #[test]
    fn byte_and_raw_literals() {
        let f = lex(r##"let a = b"bytes"; let c = b'x'; let d = br#"raw"#;"##);
        let strs = f
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Str(_)))
            .count();
        assert_eq!(strs, 2);
        let chars = f
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Char))
            .count();
        assert_eq!(chars, 1);
    }
}
