//! Property tests for the key hierarchies: the derive-iff-authorized
//! theorem for every matching family, grant costs, and cache coherence.

use proptest::prelude::*;
use psguard_crypto::DeriveKey;
use psguard_keys::{
    event_key_addresses, AuthKey, CategoryKeySpace, ChainDirection, EpochId, Kdc, KeyCache,
    KeyScope, Ktid, Nakt, NaktKeySpace, OpCounter, Schema, StringKeySpace, TopicScope,
};
use psguard_model::{CategoryPath, Constraint, Event, Filter, IntRange, Op};

proptest! {
    /// Category: derivable iff the authorized node is an ancestor-or-self
    /// of the event node.
    #[test]
    fn category_derive_iff_ancestor(
        auth in prop::collection::vec(0u32..4, 0..4),
        event in prop::collection::vec(0u32..4, 0..5),
    ) {
        let topic = DeriveKey::from_bytes(b"K(w)");
        let space = CategoryKeySpace::new(&topic, b"diag");
        let auth_path = CategoryPath::from_indices(auth);
        let event_path = CategoryPath::from_indices(event);
        let mut ops = OpCounter::new();
        let auth_key = space.key_for(&auth_path, &mut ops);
        let derived =
            CategoryKeySpace::derive_descendant(&auth_key, &auth_path, &event_path, &mut ops);
        prop_assert_eq!(derived.is_some(), auth_path.is_ancestor_or_self_of(&event_path));
        if let Some(k) = derived {
            prop_assert_eq!(k, space.key_for(&event_path, &mut ops));
        }
    }

    /// String prefix: derivable iff the event string extends the prefix.
    #[test]
    fn prefix_derive_iff_extension(auth in "[a-c]{0,5}", event in "[a-c]{0,6}") {
        let topic = DeriveKey::from_bytes(b"K(w)");
        let space = StringKeySpace::new(&topic, b"sym", ChainDirection::Prefix);
        let mut ops = OpCounter::new();
        let auth_key = space.key_for(&auth, &mut ops);
        let derived = space.derive_extension(&auth_key, &auth, &event, &mut ops);
        prop_assert_eq!(derived.is_some(), event.starts_with(&auth));
        if let Some(k) = derived {
            prop_assert_eq!(k, space.key_for(&event, &mut ops));
        }
    }

    /// String suffix: symmetric over reversed strings.
    #[test]
    fn suffix_derive_iff_extension(auth in "[a-c]{0,5}", event in "[a-c]{0,6}") {
        let topic = DeriveKey::from_bytes(b"K(w)");
        let space = StringKeySpace::new(&topic, b"file", ChainDirection::Suffix);
        let mut ops = OpCounter::new();
        let auth_key = space.key_for(&auth, &mut ops);
        let derived = space.derive_extension(&auth_key, &auth, &event, &mut ops);
        prop_assert_eq!(derived.is_some(), event.ends_with(&auth));
    }

    /// Grant sizes respect the paper's bound and generation walks stay
    /// within ~4·log2(R/lc) hashes (memoized tree walk).
    #[test]
    fn grant_costs_within_bounds(lo in 0i64..1000, width in 1i64..1000) {
        let r = 1024i64;
        let lo = lo.min(r - 1);
        let hi = (lo + width - 1).min(r - 1);
        let schema = Schema::builder()
            .numeric("n", IntRange::new(0, r - 1).expect("valid"), 1)
            .expect("valid nakt")
            .build();
        let kdc = Kdc::from_seed(b"prop");
        let f = Filter::for_topic("w").with(Constraint::new(
            "n",
            Op::InRange(IntRange::new(lo, hi).expect("valid")),
        ));
        let mut ops = OpCounter::new();
        let grant = kdc
            .grant(&schema, &f, EpochId(0), &TopicScope::Shared, &mut ops)
            .expect("grantable");
        let m = 10.0f64; // log2(1024)
        prop_assert!(grant.key_count() as f64 <= 2.0 * m - 2.0 + 1.0);
        prop_assert!(
            (ops.hash_ops as f64) <= 4.0 * m,
            "generation took {} hashes",
            ops.hash_ops
        );
    }

    /// The key cache never changes derived values, only their cost.
    #[test]
    fn cache_is_transparent(
        values in prop::collection::vec(0i64..256, 1..24),
        capacity in 0usize..4096,
    ) {
        let nakt = Nakt::binary(IntRange::new(0, 255).expect("valid"), 1).expect("valid");
        let topic = DeriveKey::from_bytes(b"K(w)");
        let space = NaktKeySpace::new(nakt.clone(), &topic, b"n");
        let mut ops = OpCounter::new();
        let auth = AuthKey {
            scope: KeyScope::Numeric {
                attr: "n".into(),
                ktid: Ktid::root(),
            },
            key: space.root_key().clone(),
            epoch: EpochId(0),
        };
        let mut cache = KeyCache::new(capacity);
        for v in values {
            let target = nakt.ktid_of_value(v).expect("in range");
            let via_cache = cache
                .derive_numeric_cached(&auth, &target, &mut ops)
                .expect("derivable");
            let direct = space.key_for(&target, &mut ops);
            prop_assert_eq!(via_cache, direct, "v={}", v);
        }
    }

    /// Epoch and publisher-lineage separation: grants from different
    /// (epoch, scope) pairs never share key material for the same filter.
    #[test]
    fn lineages_are_disjoint(epoch_a in 0u64..8, epoch_b in 0u64..8) {
        let schema = Schema::builder()
            .numeric("n", IntRange::new(0, 255).expect("valid"), 1)
            .expect("valid nakt")
            .build();
        let kdc = Kdc::from_seed(b"prop");
        let f = Filter::for_topic("w").with(Constraint::new("n", Op::Ge(0)));
        let mut ops = OpCounter::new();
        let a = kdc
            .grant(&schema, &f, EpochId(epoch_a), &TopicScope::Shared, &mut ops)
            .expect("grantable");
        let b = kdc
            .grant(&schema, &f, EpochId(epoch_b), &TopicScope::Shared, &mut ops)
            .expect("grantable");
        prop_assert_eq!(a == b, epoch_a == epoch_b);

        let pa = kdc
            .grant(
                &schema,
                &f,
                EpochId(epoch_a),
                &TopicScope::Publisher("A".into()),
                &mut ops,
            )
            .expect("grantable");
        prop_assert_ne!(a, pa);
    }

    /// Event-key addresses are stable and sorted.
    #[test]
    fn addresses_sorted_and_deterministic(v in 0i64..256, s in "[a-c]{1,6}") {
        let schema = Schema::builder()
            .numeric("n", IntRange::new(0, 255).expect("valid"), 1)
            .expect("valid nakt")
            .str_prefix("s", 8)
            .build();
        let e = Event::builder("w").attr("s", s).attr("n", v).build();
        let a1 = event_key_addresses(&schema, &e).expect("valid");
        let a2 = event_key_addresses(&schema, &e).expect("valid");
        prop_assert_eq!(&a1, &a2);
        prop_assert_eq!(a1.len(), 2);
        prop_assert_eq!(a1[0].attr(), Some("n"));
        prop_assert_eq!(a1[1].attr(), Some("s"));
    }
}
