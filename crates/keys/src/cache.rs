//! The key cache (§3.2.3 and Figure 11).
//!
//! When a subscriber derives an event key `K^num_{ktid_α}` from an
//! authorization key `K^num_{ktid_φ}`, every intermediate key on the path
//! is cached. A later derivation starts from the *deepest cached prefix*
//! of its target instead of the authorization key, saving
//! `|ktid_{φ'}| − |ktid_φ|` hash operations — a large win when events
//! exhibit temporal locality (e.g. consecutive stock quotes).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use psguard_crypto::{DeriveKey, DERIVE_KEY_LEN};

use crate::cost::OpCounter;
use crate::grant::{AuthKey, KeyScope};
use crate::ktid::Ktid;

/// Cache hit/derivation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found the exact key.
    pub hits: u64,
    /// Lookups that found nothing (full derivation needed).
    pub misses: u64,
    /// Lookups resolved from a cached ancestor (partial derivation).
    pub partial_hits: u64,
    /// Hash operations avoided thanks to cached ancestors.
    pub hash_ops_saved: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

/// A byte-budgeted LRU cache of derived hierarchy keys.
///
/// # Example
///
/// ```
/// use psguard_crypto::DeriveKey;
/// use psguard_keys::KeyCache;
///
/// let mut cache = KeyCache::new(1024);
/// cache.insert(b"some-label".to_vec(), DeriveKey::from_bytes(b"k"));
/// assert!(cache.get(b"some-label").is_some());
/// assert!(cache.get(b"other").is_none());
/// ```
pub struct KeyCache {
    capacity_bytes: usize,
    used_bytes: usize,
    map: HashMap<Vec<u8>, (DeriveKey, u64)>,
    order: BTreeMap<u64, Vec<u8>>,
    tick: u64,
    stats: CacheStats,
}

// Redacting Debug: the cache holds derived key material, so only shape and
// statistics are printed — never entries or labels (labels encode the key
// hierarchy paths a subscriber is authorized for).
impl fmt::Debug for KeyCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KeyCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("used_bytes", &self.used_bytes)
            .field("len", &self.map.len())
            .field("stats", &self.stats)
            .field("keys", &"<redacted>")
            .finish()
    }
}

impl KeyCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of key + label
    /// storage. A capacity of 0 disables caching.
    pub fn new(capacity_bytes: usize) -> Self {
        KeyCache {
            capacity_bytes,
            used_bytes: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn entry_cost(label: &[u8]) -> usize {
        label.len() + DERIVE_KEY_LEN
    }

    /// Current storage footprint in bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Statistics since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn touch(&mut self, label: &[u8]) {
        if let Some((_, tick)) = self.map.get_mut(label) {
            let old = *tick;
            self.tick += 1;
            *tick = self.tick;
            self.order.remove(&old);
            self.order.insert(self.tick, label.to_vec());
        }
    }

    /// Looks up a key, refreshing its recency. Does **not** update hit/miss
    /// statistics (use the deriving helpers for that).
    pub fn get(&mut self, label: &[u8]) -> Option<DeriveKey> {
        if self.map.contains_key(label) {
            self.touch(label);
            Some(self.map[label].0.clone())
        } else {
            None
        }
    }

    /// Inserts (or refreshes) a key, evicting least-recently-used entries
    /// when over budget. No-op when the cache capacity is 0 or the entry
    /// alone exceeds the budget.
    pub fn insert(&mut self, label: Vec<u8>, key: DeriveKey) {
        let cost = Self::entry_cost(&label);
        if cost > self.capacity_bytes {
            return;
        }
        if let Some((_, tick)) = self.map.remove(&label) {
            self.order.remove(&tick);
            self.used_bytes -= cost;
        }
        while self.used_bytes + cost > self.capacity_bytes {
            let Some((_, victim)) = self.order.pop_first() else {
                break;
            };
            self.used_bytes -= Self::entry_cost(&victim);
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
        self.tick += 1;
        self.order.insert(self.tick, label.clone());
        self.map.insert(label, (key, self.tick));
        self.used_bytes += cost;
    }

    /// Derives the key for NAKT element `target` from a numeric
    /// authorization key, using the deepest cached intermediate on the path
    /// (the paper's "optimal cached key"). Caches every intermediate key.
    ///
    /// Returns `None` when the authorization `ktid` is not a prefix of
    /// `target` (unauthorized).
    pub fn derive_numeric_cached(
        &mut self,
        auth: &AuthKey,
        target: &Ktid,
        ops: &mut OpCounter,
    ) -> Option<DeriveKey> {
        let KeyScope::Numeric { attr, ktid: held } = &auth.scope else {
            return None;
        };
        held.is_prefix_of(target).then_some(())?;

        // Namespace the cache lines to this authorization key: attribute
        // names repeat across topics (every numeric topic keys `value`),
        // so `(attr, ktid)` alone would collide across hierarchies and
        // hand back keys from the wrong topic or epoch.
        let namespace: Vec<u8> = {
            let mut ns = psguard_crypto::h(auth.key.as_bytes())[..8].to_vec();
            ns.extend(auth.epoch.0.to_be_bytes());
            ns
        };
        let label_for = |k: &Ktid| {
            let mut label = namespace.clone();
            label.extend(
                KeyScope::Numeric {
                    attr: attr.clone(),
                    ktid: k.clone(),
                }
                .label(),
            );
            label
        };

        // Find the deepest cached ancestor of `target` at or below `held`.
        let mut start = held.clone();
        let mut start_key = auth.key.clone();
        let full_cost = (target.depth() - held.depth()) as u64;
        let mut probe = target.clone();
        let mut found_cached = false;
        while probe.depth() >= held.depth() {
            if let Some(k) = self.get(&label_for(&probe)) {
                start = probe;
                start_key = k;
                found_cached = true;
                break;
            }
            match probe.parent() {
                Some(p) if p.depth() >= held.depth() => probe = p,
                _ => break,
            }
        }

        let remaining = target.digits()[start.depth()..].to_vec();
        if found_cached {
            if remaining.is_empty() {
                self.stats.hits += 1;
            } else {
                self.stats.partial_hits += 1;
            }
            self.stats.hash_ops_saved += full_cost - remaining.len() as u64;
        } else {
            self.stats.misses += 1;
        }

        // Walk down, caching intermediates.
        let mut key = start_key;
        let mut cur = start;
        for &d in &remaining {
            ops.add_hash(1);
            key = key.child_n(d as u32);
            cur = cur.child(d);
            self.insert(label_for(&cur), key.clone());
        }
        if remaining.is_empty() && !found_cached {
            // Target == held: cache the auth key itself.
            self.insert(label_for(target), key.clone());
        }
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochId;
    use crate::nakt::{Nakt, NaktKeySpace};
    use psguard_model::IntRange;

    fn auth_for(held: Ktid) -> (AuthKey, NaktKeySpace) {
        let nakt = Nakt::binary(IntRange::new(0, 255).unwrap(), 1).unwrap();
        let topic = DeriveKey::from_bytes(b"K(w)");
        let space = NaktKeySpace::new(nakt, &topic, b"age");
        let mut ops = OpCounter::new();
        let key = space.key_for(&held, &mut ops);
        (
            AuthKey {
                scope: KeyScope::Numeric {
                    attr: "age".into(),
                    ktid: held,
                },
                key,
                epoch: EpochId(0),
            },
            space,
        )
    }

    #[test]
    fn cached_derivation_matches_direct() {
        let (auth, space) = auth_for(Ktid::from_digits([1]));
        let mut cache = KeyCache::new(64 * 1024);
        let mut ops = OpCounter::new();
        let target = space.nakt().ktid_of_value(200).unwrap();
        let via_cache = cache
            .derive_numeric_cached(&auth, &target, &mut ops)
            .unwrap();
        let direct = space.key_for(&target, &mut ops);
        assert_eq!(via_cache, direct);
    }

    #[test]
    fn second_derivation_is_cheaper() {
        let (auth, space) = auth_for(Ktid::from_digits([1]));
        let mut cache = KeyCache::new(64 * 1024);
        let t1 = space.nakt().ktid_of_value(200).unwrap();
        let t2 = space.nakt().ktid_of_value(201).unwrap(); // adjacent leaf

        let mut ops1 = OpCounter::new();
        cache.derive_numeric_cached(&auth, &t1, &mut ops1).unwrap();
        let mut ops2 = OpCounter::new();
        cache.derive_numeric_cached(&auth, &t2, &mut ops2).unwrap();
        assert!(
            ops2.hash_ops < ops1.hash_ops,
            "temporal locality should reduce ops: {} vs {}",
            ops2.hash_ops,
            ops1.hash_ops
        );
        assert!(cache.stats().hash_ops_saved > 0);

        // Exact repeat: free.
        let mut ops3 = OpCounter::new();
        cache.derive_numeric_cached(&auth, &t1, &mut ops3).unwrap();
        assert_eq!(ops3.hash_ops, 0);
        assert!(cache.stats().hits >= 1);
    }

    #[test]
    fn unauthorized_target_refused() {
        let (auth, space) = auth_for(Ktid::from_digits([1]));
        let mut cache = KeyCache::new(1024);
        let mut ops = OpCounter::new();
        let outside = space.nakt().ktid_of_value(3).unwrap(); // under subtree 0
        assert!(cache
            .derive_numeric_cached(&auth, &outside, &mut ops)
            .is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (auth, space) = auth_for(Ktid::from_digits([1]));
        let mut cache = KeyCache::new(0);
        let t = space.nakt().ktid_of_value(200).unwrap();
        let mut ops1 = OpCounter::new();
        cache.derive_numeric_cached(&auth, &t, &mut ops1).unwrap();
        let mut ops2 = OpCounter::new();
        cache.derive_numeric_cached(&auth, &t, &mut ops2).unwrap();
        assert_eq!(ops1.hash_ops, ops2.hash_ops, "nothing should be cached");
        assert!(cache.is_empty());
    }

    #[test]
    fn hierarchies_do_not_collide_in_the_cache() {
        // Regression: every numeric topic keys the same attribute name
        // ("value" in the paper workload), so cache lines must be
        // namespaced by the authorization key, not just (attr, ktid).
        let nakt = Nakt::binary(IntRange::new(0, 255).unwrap(), 1).unwrap();
        let t1 = DeriveKey::from_bytes(b"K(topic1)");
        let t2 = DeriveKey::from_bytes(b"K(topic2)");
        let s1 = NaktKeySpace::new(nakt.clone(), &t1, b"value");
        let s2 = NaktKeySpace::new(nakt.clone(), &t2, b"value");
        let held = Ktid::root();
        let auth = |space: &NaktKeySpace| AuthKey {
            scope: KeyScope::Numeric {
                attr: "value".into(),
                ktid: held.clone(),
            },
            key: space.root_key().clone(),
            epoch: EpochId(0),
        };
        let mut cache = KeyCache::new(64 * 1024);
        let mut ops = OpCounter::new();
        let target = nakt.ktid_of_value(99).unwrap();
        let k1 = cache
            .derive_numeric_cached(&auth(&s1), &target, &mut ops)
            .unwrap();
        let k2 = cache
            .derive_numeric_cached(&auth(&s2), &target, &mut ops)
            .unwrap();
        assert_ne!(k1, k2, "cache returned a key from the wrong hierarchy");
        assert_eq!(k1, s1.key_for(&target, &mut ops));
        assert_eq!(k2, s2.key_for(&target, &mut ops));
        // Same hierarchy, different epoch: also distinct namespaces.
        let mut stale = auth(&s1);
        stale.epoch = EpochId(1);
        let k1e = cache
            .derive_numeric_cached(&stale, &target, &mut ops)
            .unwrap();
        // Key bytes identical (epoch ratcheting happens in the topic key),
        // but the lookup must not have been served from epoch-0 lines:
        // the miss counter advanced.
        assert_eq!(k1e, k1);
        assert!(cache.stats().misses >= 3);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut cache = KeyCache::new(2 * (1 + DERIVE_KEY_LEN));
        cache.insert(b"a".to_vec(), DeriveKey::from_bytes(b"1"));
        cache.insert(b"b".to_vec(), DeriveKey::from_bytes(b"2"));
        // Touch "a" so "b" is the LRU victim.
        cache.get(b"a");
        cache.insert(b"c".to_vec(), DeriveKey::from_bytes(b"3"));
        assert!(cache.get(b"a").is_some());
        assert!(cache.get(b"b").is_none());
        assert!(cache.get(b"c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut cache = KeyCache::new(1024);
        cache.insert(b"a".to_vec(), DeriveKey::from_bytes(b"1"));
        let used = cache.used_bytes();
        cache.insert(b"a".to_vec(), DeriveKey::from_bytes(b"2"));
        assert_eq!(cache.used_bytes(), used);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(b"a"), Some(DeriveKey::from_bytes(b"2")));
    }
}
