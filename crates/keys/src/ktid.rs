//! Key-tree identifiers (`ktid`): positions in an a-ary key tree.
//!
//! The paper maps a numeric value `v` to an `m`-digit identifier
//! `ktid(v)` — the path from the root of the NAKT to the leaf cell holding
//! `v`. Internal nodes are identified by proper prefixes. The fundamental
//! operation is the *prefix test*: a subscriber holding the key for
//! `ktid_φ` can derive the key for `ktid_α` iff `ktid_φ` is a prefix of
//! `ktid_α`.

/// A path in an a-ary key tree, as digits from the root. The empty path is
/// the root element `Ø`.
///
/// # Example
///
/// ```
/// use psguard_keys::Ktid;
///
/// // Figure 1: value 22 in R=(0,31), lc=4 lives at ktid 101.
/// let event = Ktid::from_digits([1, 0, 1]);
/// let auth = Ktid::from_digits([1]);
/// assert!(auth.is_prefix_of(&event));
/// assert_eq!(auth.suffix_of(&event).unwrap(), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ktid(Vec<u8>);

impl Ktid {
    /// The root element `Ø`.
    pub fn root() -> Self {
        Ktid(Vec::new())
    }

    /// Builds an identifier from digits, root-first.
    pub fn from_digits(digits: impl IntoIterator<Item = u8>) -> Self {
        Ktid(digits.into_iter().collect())
    }

    /// Builds the depth-`m` identifier of leaf cell `index` in an `arity`-ary
    /// tree (most-significant digit first).
    ///
    /// # Panics
    ///
    /// Panics if `index >= arity^m` or `arity < 2`.
    pub fn from_leaf_index(index: u64, m: usize, arity: u8) -> Self {
        assert!(arity >= 2, "arity must be at least 2");
        let capacity = (arity as u128).pow(m as u32);
        assert!(
            (index as u128) < capacity,
            "leaf index {index} out of range for depth {m} arity {arity}"
        );
        let mut digits = vec![0u8; m];
        let mut rem = index;
        for d in digits.iter_mut().rev() {
            *d = (rem % arity as u64) as u8;
            rem /= arity as u64;
        }
        Ktid(digits)
    }

    /// Interprets the digits as a leaf/cell index (root digit most
    /// significant) in an `arity`-ary tree.
    pub fn to_index(&self, arity: u8) -> u64 {
        self.0
            .iter()
            .fold(0u64, |acc, &d| acc * arity as u64 + d as u64)
    }

    /// Number of digits (depth below the root).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The digits, root-first.
    pub fn digits(&self) -> &[u8] {
        &self.0
    }

    /// Child identifier `self ‖ digit`.
    pub fn child(&self, digit: u8) -> Self {
        let mut v = self.0.clone();
        v.push(digit);
        Ktid(v)
    }

    /// Parent identifier, or `None` at the root.
    pub fn parent(&self) -> Option<Self> {
        if self.0.is_empty() {
            None
        } else {
            Some(Ktid(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Whether `self` is a (non-strict) prefix of `other` — the paper's
    /// derivability test.
    pub fn is_prefix_of(&self, other: &Ktid) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// The digits of `other` below `self`, or `None` when `self` is not a
    /// prefix. This is the path a subscriber hashes down during key
    /// derivation.
    pub fn suffix_of<'a>(&self, other: &'a Ktid) -> Option<&'a [u8]> {
        self.is_prefix_of(other).then(|| &other.0[self.0.len()..])
    }

    /// The range of leaf-cell indices covered by this subtree in a tree of
    /// total depth `m` and the given arity: `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `self.depth() > m`.
    pub fn leaf_span(&self, m: usize, arity: u8) -> (u64, u64) {
        assert!(self.depth() <= m, "ktid deeper than the tree");
        let below = (m - self.depth()) as u32;
        let width = (arity as u64).pow(below);
        let lo = self.to_index(arity) * width;
        (lo, lo + width - 1)
    }
}

impl std::fmt::Display for Ktid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return f.write_str("Ø");
        }
        for d in &self.0 {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_value_22() {
        // R=(0,31), lc=4 → 8 cells, m=3; cell of 22 = 22/4 = 5 = 0b101.
        let ktid = Ktid::from_leaf_index(5, 3, 2);
        assert_eq!(ktid, Ktid::from_digits([1, 0, 1]));
        assert_eq!(ktid.to_string(), "101");
        assert_eq!(ktid.to_index(2), 5);
    }

    #[test]
    fn root_properties() {
        let root = Ktid::root();
        assert_eq!(root.depth(), 0);
        assert_eq!(root.to_string(), "Ø");
        assert!(root.is_prefix_of(&Ktid::from_digits([1, 1])));
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn prefix_and_suffix() {
        let a = Ktid::from_digits([1]);
        let b = Ktid::from_digits([1, 0, 1]);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert_eq!(a.suffix_of(&b).unwrap(), &[0, 1]);
        assert!(b.suffix_of(&a).is_none());
        // Siblings are not prefixes.
        let c = Ktid::from_digits([0]);
        assert!(!c.is_prefix_of(&b));
    }

    #[test]
    fn leaf_span_binary() {
        // ktid=1 in a depth-3 binary tree covers cells 4..=7 (values 16..=31
        // with lc=4, matching the paper's (16, 31) example).
        let k = Ktid::from_digits([1]);
        assert_eq!(k.leaf_span(3, 2), (4, 7));
        assert_eq!(Ktid::root().leaf_span(3, 2), (0, 7));
        assert_eq!(Ktid::from_digits([1, 0, 1]).leaf_span(3, 2), (5, 5));
    }

    #[test]
    fn arity_4_roundtrip() {
        for idx in 0..64u64 {
            let k = Ktid::from_leaf_index(idx, 3, 4);
            assert_eq!(k.to_index(4), idx);
            assert_eq!(k.leaf_span(3, 4), (idx, idx));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leaf_index_out_of_range_panics() {
        Ktid::from_leaf_index(8, 3, 2);
    }

    #[test]
    fn child_parent_invert() {
        let k = Ktid::from_digits([0, 1]);
        assert_eq!(k.child(1).parent().unwrap(), k);
    }
}
