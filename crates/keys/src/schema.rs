//! Attribute schemas: what the KDC must know about each routable attribute
//! in order to build key hierarchies for it.

use std::collections::BTreeMap;

use psguard_model::IntRange;

use crate::nakt::{Nakt, NaktError};

/// The key-hierarchy family of one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrSpec {
    /// Numeric attribute backed by a NAKT.
    Numeric {
        /// The tree geometry (range, least count, arity).
        nakt: Nakt,
    },
    /// Category/ontology attribute; keys mirror the category tree.
    Category {
        /// Maximum tree depth accepted in subscriptions/events.
        max_depth: usize,
    },
    /// String attribute matched by prefix; keys form per-byte chains.
    StrPrefix {
        /// Maximum string length accepted.
        max_len: usize,
    },
    /// String attribute matched by suffix (chains over reversed bytes).
    StrSuffix {
        /// Maximum string length accepted.
        max_len: usize,
    },
}

/// Schema for one topic: which routable attributes exist and how each is
/// keyed. Attributes not in the schema are routable but not usable for
/// confidentiality (no key hierarchy).
///
/// # Example
///
/// ```
/// use psguard_keys::{Schema, AttrSpec};
/// use psguard_model::IntRange;
///
/// let schema = Schema::builder()
///     .numeric("age", IntRange::new(0, 255).unwrap(), 4)
///     .unwrap()
///     .category("diagnosis", 4)
///     .str_prefix("symbol", 8)
///     .build();
/// assert!(schema.get("age").is_some());
/// assert!(schema.get("weight").is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: BTreeMap<String, AttrSpec>,
}

impl Schema {
    /// An empty schema (plain-topic publications only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            attrs: BTreeMap::new(),
        }
    }

    /// Looks up the spec of an attribute.
    pub fn get(&self, name: &str) -> Option<&AttrSpec> {
        self.attrs.get(name)
    }

    /// Iterates over all (name, spec) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &AttrSpec)> {
        self.attrs.iter()
    }

    /// Number of keyed attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no keyed attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    attrs: BTreeMap<String, AttrSpec>,
}

impl SchemaBuilder {
    /// Adds a numeric attribute with a binary NAKT.
    ///
    /// # Errors
    ///
    /// Propagates [`NaktError`] for invalid geometry.
    pub fn numeric(
        mut self,
        name: impl Into<String>,
        range: IntRange,
        lc: u64,
    ) -> Result<Self, NaktError> {
        let nakt = Nakt::binary(range, lc)?;
        self.attrs.insert(name.into(), AttrSpec::Numeric { nakt });
        Ok(self)
    }

    /// Adds a numeric attribute with explicit arity (ablation support).
    ///
    /// # Errors
    ///
    /// Propagates [`NaktError`] for invalid geometry.
    pub fn numeric_with_arity(
        mut self,
        name: impl Into<String>,
        range: IntRange,
        lc: u64,
        arity: u8,
    ) -> Result<Self, NaktError> {
        let nakt = Nakt::with_arity(range, lc, arity)?;
        self.attrs.insert(name.into(), AttrSpec::Numeric { nakt });
        Ok(self)
    }

    /// Adds a category attribute.
    pub fn category(mut self, name: impl Into<String>, max_depth: usize) -> Self {
        self.attrs
            .insert(name.into(), AttrSpec::Category { max_depth });
        self
    }

    /// Adds a prefix-matched string attribute.
    pub fn str_prefix(mut self, name: impl Into<String>, max_len: usize) -> Self {
        self.attrs
            .insert(name.into(), AttrSpec::StrPrefix { max_len });
        self
    }

    /// Adds a suffix-matched string attribute.
    pub fn str_suffix(mut self, name: impl Into<String>, max_len: usize) -> Self {
        self.attrs
            .insert(name.into(), AttrSpec::StrSuffix { max_len });
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> Schema {
        Schema { attrs: self.attrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_all_families() {
        let s = Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 4)
            .unwrap()
            .category("diag", 4)
            .str_prefix("sym", 8)
            .str_suffix("file", 16)
            .build();
        assert_eq!(s.len(), 4);
        assert!(matches!(s.get("age"), Some(AttrSpec::Numeric { .. })));
        assert!(matches!(
            s.get("diag"),
            Some(AttrSpec::Category { max_depth: 4 })
        ));
        assert!(matches!(
            s.get("sym"),
            Some(AttrSpec::StrPrefix { max_len: 8 })
        ));
        assert!(matches!(s.get("file"), Some(AttrSpec::StrSuffix { .. })));
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn numeric_propagates_geometry_errors() {
        assert!(Schema::builder()
            .numeric("x", IntRange::new(0, 10).unwrap(), 0)
            .is_err());
    }

    #[test]
    fn redefining_attribute_overwrites() {
        let s = Schema::builder().category("a", 2).category("a", 5).build();
        assert!(matches!(
            s.get("a"),
            Some(AttrSpec::Category { max_depth: 5 })
        ));
        assert_eq!(s.len(), 1);
    }
}
