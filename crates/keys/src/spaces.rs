//! Key spaces for the non-numeric matching families described in the
//! paper's companion technical report: category (ontology) trees and
//! string prefix/suffix chains.
//!
//! All three share the NAKT's derivation discipline: the key of a node is
//! `H(parent ‖ step)`, so descendants are easy to derive and everything
//! else is one-way-hard.

use psguard_crypto::DeriveKey;
use psguard_model::CategoryPath;

use crate::cost::OpCounter;

/// Key space mirroring a category/ontology tree.
///
/// The key for path `p ‖ i` is `H(K_p ‖ i)`; a subscriber authorized for a
/// subtree holds the subtree root's key and can derive the key of any
/// descendant category, hence decrypt any event published at or below its
/// node.
///
/// # Example
///
/// ```
/// use psguard_crypto::DeriveKey;
/// use psguard_keys::{CategoryKeySpace, OpCounter};
/// use psguard_model::CategoryPath;
///
/// let topic_key = DeriveKey::from_bytes(b"K(w)");
/// let space = CategoryKeySpace::new(&topic_key, b"diagnosis");
/// let mut ops = OpCounter::new();
/// let oncology = CategoryPath::from_indices([0]);
/// let lung = CategoryPath::from_indices([0, 2]);
/// let auth = space.key_for(&oncology, &mut ops);
/// let event = space.key_for(&lung, &mut ops);
/// assert_eq!(
///     CategoryKeySpace::derive_descendant(&auth, &oncology, &lung, &mut ops),
///     Some(event)
/// );
/// ```
#[derive(Clone)]
pub struct CategoryKeySpace {
    root: DeriveKey,
}

// Redacting Debug: the root key derives every category key in the space.
// `DeriveKey`'s own Debug already prints only a fingerprint; delegate to it.
impl std::fmt::Debug for CategoryKeySpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CategoryKeySpace")
            .field("root", &self.root)
            .finish()
    }
}

impl CategoryKeySpace {
    /// Roots the space at `KH_{topic_key}(attr_name)`.
    pub fn new(topic_key: &DeriveKey, attr_name: &[u8]) -> Self {
        CategoryKeySpace {
            root: topic_key.kh(attr_name),
        }
    }

    /// The root key (KDC only).
    pub fn root_key(&self) -> &DeriveKey {
        &self.root
    }

    /// KDC-side: derive the key for any category node.
    pub fn key_for(&self, path: &CategoryPath, ops: &mut OpCounter) -> DeriveKey {
        ops.add_hash(path.depth() as u64);
        path.indices()
            .iter()
            .fold(self.root.clone(), |k, &i| k.child_n(i))
    }

    /// Subscriber-side: derive a descendant's key, or `None` when `holder`
    /// is not an ancestor-or-self of `target`.
    pub fn derive_descendant(
        holder_key: &DeriveKey,
        holder: &CategoryPath,
        target: &CategoryPath,
        ops: &mut OpCounter,
    ) -> Option<DeriveKey> {
        let suffix = holder.suffix_of(target)?;
        ops.add_hash(suffix.len() as u64);
        Some(suffix.iter().fold(holder_key.clone(), |k, &i| k.child_n(i)))
    }
}

/// Direction of a string key chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainDirection {
    /// Chain over the string's bytes front-to-back (prefix matching).
    Prefix,
    /// Chain over the string's bytes back-to-front (suffix matching).
    Suffix,
}

/// Key space for string prefix/suffix matching.
///
/// The key for string `s ‖ c` is `H(K_s ‖ c)` (bytes reversed for suffix
/// chains). A subscriber authorized for prefix `p` derives the key of any
/// string extending `p`.
///
/// # Example
///
/// ```
/// use psguard_crypto::DeriveKey;
/// use psguard_keys::{ChainDirection, OpCounter, StringKeySpace};
///
/// let topic_key = DeriveKey::from_bytes(b"K(w)");
/// let space = StringKeySpace::new(&topic_key, b"symbol", ChainDirection::Prefix);
/// let mut ops = OpCounter::new();
/// let auth = space.key_for("GOO", &mut ops);
/// let event = space.key_for("GOOG", &mut ops);
/// assert_eq!(space.derive_extension(&auth, "GOO", "GOOG", &mut ops), Some(event));
/// assert_eq!(space.derive_extension(&auth, "GOO", "MSFT", &mut ops), None);
/// ```
#[derive(Clone)]
pub struct StringKeySpace {
    root: DeriveKey,
    direction: ChainDirection,
}

// Redacting Debug: chain keys for every authorized string extend from the
// root; only the fingerprint and direction are printed.
impl std::fmt::Debug for StringKeySpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StringKeySpace")
            .field("root", &self.root)
            .field("direction", &self.direction)
            .finish()
    }
}

impl StringKeySpace {
    /// Roots the space at `KH_{topic_key}(attr_name ‖ direction)`.
    pub fn new(topic_key: &DeriveKey, attr_name: &[u8], direction: ChainDirection) -> Self {
        let mut label = attr_name.to_vec();
        label.push(match direction {
            ChainDirection::Prefix => b'>',
            ChainDirection::Suffix => b'<',
        });
        StringKeySpace {
            root: topic_key.kh(&label),
            direction,
        }
    }

    /// Chain direction.
    pub fn direction(&self) -> ChainDirection {
        self.direction
    }

    /// The root key (KDC only).
    pub fn root_key(&self) -> &DeriveKey {
        &self.root
    }

    fn oriented(&self, s: &str) -> Vec<u8> {
        match self.direction {
            ChainDirection::Prefix => s.bytes().collect(),
            ChainDirection::Suffix => s.bytes().rev().collect(),
        }
    }

    /// KDC-side: derive the key for a whole string (event side) or a
    /// prefix/suffix (authorization side).
    pub fn key_for(&self, s: &str, ops: &mut OpCounter) -> DeriveKey {
        let bytes = self.oriented(s);
        ops.add_hash(bytes.len() as u64);
        bytes
            .iter()
            .fold(self.root.clone(), |k, &b| k.child_n(b as u32))
    }

    /// Subscriber-side: derive the key of `target` from the key of
    /// `holder`, where `holder` must be a prefix (or suffix, per the chain
    /// direction) of `target`.
    pub fn derive_extension(
        &self,
        holder_key: &DeriveKey,
        holder: &str,
        target: &str,
        ops: &mut OpCounter,
    ) -> Option<DeriveKey> {
        let matches = match self.direction {
            ChainDirection::Prefix => target.starts_with(holder),
            ChainDirection::Suffix => target.ends_with(holder),
        };
        if !matches {
            return None;
        }
        let suffix: Vec<u8> = match self.direction {
            ChainDirection::Prefix => target.bytes().skip(holder.len()).collect(),
            ChainDirection::Suffix => target.bytes().rev().skip(holder.len()).collect(),
        };
        ops.add_hash(suffix.len() as u64);
        Some(
            suffix
                .iter()
                .fold(holder_key.clone(), |k, &b| k.child_n(b as u32)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic() -> DeriveKey {
        DeriveKey::from_bytes(b"K(w)")
    }

    #[test]
    fn category_root_grants_everything() {
        let space = CategoryKeySpace::new(&topic(), b"diag");
        let mut ops = OpCounter::new();
        let root_auth = space.key_for(&CategoryPath::root(), &mut ops);
        assert_eq!(&root_auth, space.root_key());
        let deep = CategoryPath::from_indices([1, 3, 0]);
        let event = space.key_for(&deep, &mut ops);
        assert_eq!(
            CategoryKeySpace::derive_descendant(&root_auth, &CategoryPath::root(), &deep, &mut ops),
            Some(event)
        );
    }

    #[test]
    fn category_sibling_refused() {
        let space = CategoryKeySpace::new(&topic(), b"diag");
        let mut ops = OpCounter::new();
        let a = CategoryPath::from_indices([0]);
        let b = CategoryPath::from_indices([1, 2]);
        let auth = space.key_for(&a, &mut ops);
        assert_eq!(
            CategoryKeySpace::derive_descendant(&auth, &a, &b, &mut ops),
            None
        );
    }

    #[test]
    fn category_ops_counted() {
        let space = CategoryKeySpace::new(&topic(), b"diag");
        let mut ops = OpCounter::new();
        space.key_for(&CategoryPath::from_indices([1, 2, 3]), &mut ops);
        assert_eq!(ops.hash_ops, 3);
    }

    #[test]
    fn prefix_chain_derives_extension_only() {
        let space = StringKeySpace::new(&topic(), b"sym", ChainDirection::Prefix);
        let mut ops = OpCounter::new();
        let auth = space.key_for("GO", &mut ops);
        let goog = space.key_for("GOOG", &mut ops);
        assert_eq!(
            space.derive_extension(&auth, "GO", "GOOG", &mut ops),
            Some(goog)
        );
        assert_eq!(space.derive_extension(&auth, "GO", "AAPL", &mut ops), None);
        // Shorter than the held prefix: refused.
        assert_eq!(space.derive_extension(&auth, "GO", "G", &mut ops), None);
    }

    #[test]
    fn suffix_chain_matches_reversed() {
        let space = StringKeySpace::new(&topic(), b"file", ChainDirection::Suffix);
        let mut ops = OpCounter::new();
        let auth = space.key_for(".log", &mut ops);
        let event = space.key_for("system.log", &mut ops);
        assert_eq!(
            space.derive_extension(&auth, ".log", "system.log", &mut ops),
            Some(event)
        );
        assert_eq!(
            space.derive_extension(&auth, ".log", "system.txt", &mut ops),
            None
        );
    }

    #[test]
    fn prefix_and_suffix_spaces_are_independent() {
        let p = StringKeySpace::new(&topic(), b"s", ChainDirection::Prefix);
        let s = StringKeySpace::new(&topic(), b"s", ChainDirection::Suffix);
        let mut ops = OpCounter::new();
        // "aba" is a palindrome, but the two spaces still give distinct keys.
        assert_ne!(p.key_for("aba", &mut ops), s.key_for("aba", &mut ops));
    }

    #[test]
    fn empty_string_key_is_root() {
        let p = StringKeySpace::new(&topic(), b"s", ChainDirection::Prefix);
        let mut ops = OpCounter::new();
        assert_eq!(&p.key_for("", &mut ops), p.root_key());
        assert_eq!(ops.hash_ops, 0);
    }
}
