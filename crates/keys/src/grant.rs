//! Authorization grants and event-key agreement.
//!
//! The KDC turns a subscription filter into a [`Grant`]: a small set of
//! [`AuthKey`]s (hierarchy-node keys). A publisher derives the event
//! encryption key `K(e)` from the topic key; an authorized subscriber
//! derives the *same* key from its grant — without the KDC knowing the
//! event, and without the publisher knowing the subscribers. Both sides
//! meet at [`combine_parts`].

use psguard_crypto::{AesKey, DeriveKey};
use psguard_model::{CategoryPath, Event};

use crate::cost::OpCounter;
use crate::epoch::EpochId;
use crate::ktid::Ktid;
use crate::nakt::NaktKeySpace;
use crate::schema::{AttrSpec, Schema};
use crate::spaces::{CategoryKeySpace, ChainDirection, StringKeySpace};

/// Identifies the key-tree element an [`AuthKey`] grants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyScope {
    /// The whole topic: the grant key is `K(w)` itself, from which every
    /// per-attribute hierarchy under the topic can be derived.
    Topic,
    /// A NAKT subtree of a numeric attribute.
    Numeric {
        /// Attribute name.
        attr: String,
        /// Subtree identifier.
        ktid: Ktid,
    },
    /// A category subtree.
    Category {
        /// Attribute name.
        attr: String,
        /// Subtree root path.
        path: CategoryPath,
    },
    /// A string-prefix chain node.
    StrPrefix {
        /// Attribute name.
        attr: String,
        /// Granted prefix.
        prefix: String,
    },
    /// A string-suffix chain node.
    StrSuffix {
        /// Attribute name.
        attr: String,
        /// Granted suffix.
        suffix: String,
    },
}

impl KeyScope {
    /// A stable byte label identifying the scope (used as a cache key).
    pub fn label(&self) -> Vec<u8> {
        match self {
            KeyScope::Topic => b"T".to_vec(),
            KeyScope::Numeric { attr, ktid } => {
                let mut v = format!("N:{attr}:").into_bytes();
                v.extend(ktid.digits());
                v
            }
            KeyScope::Category { attr, path } => {
                let mut v = format!("C:{attr}:").into_bytes();
                for i in path.indices() {
                    v.extend(i.to_be_bytes());
                }
                v
            }
            KeyScope::StrPrefix { attr, prefix } => format!("P:{attr}:{prefix}").into_bytes(),
            KeyScope::StrSuffix { attr, suffix } => format!("S:{attr}:{suffix}").into_bytes(),
        }
    }

    /// The attribute this scope concerns, or `None` for topic scope.
    pub fn attr(&self) -> Option<&str> {
        match self {
            KeyScope::Topic => None,
            KeyScope::Numeric { attr, .. }
            | KeyScope::Category { attr, .. }
            | KeyScope::StrPrefix { attr, .. }
            | KeyScope::StrSuffix { attr, .. } => Some(attr),
        }
    }
}

/// One authorization key: a hierarchy-node key plus its scope and epoch.
#[derive(Clone, PartialEq, Eq)]
pub struct AuthKey {
    /// What the key unlocks.
    pub scope: KeyScope,
    /// The node key itself.
    pub key: DeriveKey,
    /// The epoch the key is valid in.
    pub epoch: EpochId,
}

// Redacting Debug: an authorization key unlocks a whole hierarchy subtree;
// `DeriveKey`'s fingerprint-only Debug keeps the bytes out of logs.
impl std::fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthKey")
            .field("scope", &self.scope)
            .field("key", &self.key)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// Where an event's per-attribute key part lives in the key space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventKeyAddress {
    /// No keyed attributes: the plain per-topic event key.
    Plain,
    /// A NAKT leaf.
    Numeric {
        /// Attribute name.
        attr: String,
        /// Leaf identifier of the event's value.
        ktid: Ktid,
    },
    /// A category node.
    Category {
        /// Attribute name.
        attr: String,
        /// The event's category path.
        path: CategoryPath,
    },
    /// A string-chain node (direction comes from the schema).
    Str {
        /// Attribute name.
        attr: String,
        /// The event's string value.
        value: String,
    },
}

impl EventKeyAddress {
    /// The attribute name, or `None` for [`EventKeyAddress::Plain`].
    pub fn attr(&self) -> Option<&str> {
        match self {
            EventKeyAddress::Plain => None,
            EventKeyAddress::Numeric { attr, .. }
            | EventKeyAddress::Category { attr, .. }
            | EventKeyAddress::Str { attr, .. } => Some(attr),
        }
    }
}

/// Errors in event-key computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKeyError {
    /// An event attribute's value family does not match its schema spec.
    FamilyMismatch {
        /// Attribute name.
        attr: String,
    },
    /// A numeric value fell outside the attribute's NAKT range.
    OutOfRange {
        /// Attribute name.
        attr: String,
    },
    /// A string/category value exceeded the schema's declared bound.
    TooLong {
        /// Attribute name.
        attr: String,
    },
}

impl std::fmt::Display for EventKeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKeyError::FamilyMismatch { attr } => {
                write!(f, "attribute {attr}: value family does not match schema")
            }
            EventKeyError::OutOfRange { attr } => {
                write!(f, "attribute {attr}: numeric value outside NAKT range")
            }
            EventKeyError::TooLong { attr } => {
                write!(f, "attribute {attr}: value exceeds schema bound")
            }
        }
    }
}

impl std::error::Error for EventKeyError {}

/// Computes the key addresses of an event: one per keyed (schema-listed)
/// attribute present on the event, or [`EventKeyAddress::Plain`] when none
/// apply. Addresses come out sorted by attribute name (the combination
/// order).
///
/// # Errors
///
/// Returns [`EventKeyError`] when an event value violates its schema spec.
pub fn event_key_addresses(
    schema: &Schema,
    event: &Event,
) -> Result<Vec<EventKeyAddress>, EventKeyError> {
    let mut out = Vec::new();
    for (name, spec) in schema.iter() {
        let Some(value) = event.attr(name) else {
            continue;
        };
        let addr = match spec {
            AttrSpec::Numeric { nakt } => {
                let v = value
                    .as_int()
                    .ok_or_else(|| EventKeyError::FamilyMismatch { attr: name.clone() })?;
                let ktid = nakt
                    .ktid_of_value(v)
                    .map_err(|_| EventKeyError::OutOfRange { attr: name.clone() })?;
                EventKeyAddress::Numeric {
                    attr: name.clone(),
                    ktid,
                }
            }
            AttrSpec::Category { max_depth } => {
                let path = value
                    .as_category()
                    .ok_or_else(|| EventKeyError::FamilyMismatch { attr: name.clone() })?;
                if path.depth() > *max_depth {
                    return Err(EventKeyError::TooLong { attr: name.clone() });
                }
                EventKeyAddress::Category {
                    attr: name.clone(),
                    path: path.clone(),
                }
            }
            AttrSpec::StrPrefix { max_len } | AttrSpec::StrSuffix { max_len } => {
                let s = value
                    .as_str()
                    .ok_or_else(|| EventKeyError::FamilyMismatch { attr: name.clone() })?;
                if s.len() > *max_len {
                    return Err(EventKeyError::TooLong { attr: name.clone() });
                }
                EventKeyAddress::Str {
                    attr: name.clone(),
                    value: s.to_owned(),
                }
            }
        };
        out.push(addr);
    }
    if out.is_empty() {
        out.push(EventKeyAddress::Plain);
    }
    Ok(out)
}

/// Publisher-side: derives the per-address key part from the topic key
/// `K(w)` (publishers hold the hierarchy root for their topic).
pub fn part_from_topic_key(
    topic_key: &DeriveKey,
    schema: &Schema,
    addr: &EventKeyAddress,
    ops: &mut OpCounter,
) -> DeriveKey {
    match addr {
        EventKeyAddress::Plain => {
            ops.add_kh(1);
            topic_key.kh(b"__plain_event")
        }
        EventKeyAddress::Numeric { attr, ktid } => {
            ops.add_kh(1);
            let root = topic_key.kh(attr.as_bytes());
            NaktKeySpace::walk(&root, ktid.digits(), ops)
        }
        EventKeyAddress::Category { attr, path } => {
            ops.add_kh(1);
            let space = CategoryKeySpace::new(topic_key, attr.as_bytes());
            space.key_for(path, ops)
        }
        EventKeyAddress::Str { attr, value } => {
            ops.add_kh(1);
            let direction = match schema.get(attr) {
                Some(AttrSpec::StrSuffix { .. }) => ChainDirection::Suffix,
                _ => ChainDirection::Prefix,
            };
            let space = StringKeySpace::new(topic_key, attr.as_bytes(), direction);
            space.key_for(value, ops)
        }
    }
}

impl AuthKey {
    /// Subscriber-side: tries to derive an event's key part from this
    /// authorization key. Returns `None` when the event part is not in this
    /// key's scope — by the one-wayness of `H`, that derivation is
    /// computationally infeasible, which this API models as a refusal.
    pub fn derive_part(
        &self,
        schema: &Schema,
        addr: &EventKeyAddress,
        ops: &mut OpCounter,
    ) -> Option<DeriveKey> {
        match (&self.scope, addr) {
            // The topic key is the hierarchy root: everything derives.
            (KeyScope::Topic, _) => Some(part_from_topic_key(&self.key, schema, addr, ops)),
            (
                KeyScope::Numeric {
                    attr: a,
                    ktid: held,
                },
                EventKeyAddress::Numeric { attr: b, ktid },
            ) if a == b => NaktKeySpace::derive_descendant(&self.key, held, ktid, ops),
            (
                KeyScope::Category {
                    attr: a,
                    path: held,
                },
                EventKeyAddress::Category { attr: b, path },
            ) if a == b => CategoryKeySpace::derive_descendant(&self.key, held, path, ops),
            (KeyScope::StrPrefix { attr: a, prefix }, EventKeyAddress::Str { attr: b, value })
                if a == b =>
            {
                if !value.starts_with(prefix.as_str()) {
                    return None;
                }
                let suffix: Vec<u8> = value.bytes().skip(prefix.len()).collect();
                ops.add_hash(suffix.len() as u64);
                Some(
                    suffix
                        .iter()
                        .fold(self.key.clone(), |k, &b| k.child_n(b as u32)),
                )
            }
            (KeyScope::StrSuffix { attr: a, suffix }, EventKeyAddress::Str { attr: b, value })
                if a == b =>
            {
                if !value.ends_with(suffix.as_str()) {
                    return None;
                }
                let rest: Vec<u8> = value.bytes().rev().skip(suffix.len()).collect();
                ops.add_hash(rest.len() as u64);
                Some(
                    rest.iter()
                        .fold(self.key.clone(), |k, &b| k.child_n(b as u32)),
                )
            }
            _ => None,
        }
    }
}

/// Folds per-attribute key parts (already sorted by attribute name) into
/// the combined event master key, from which the AES content key and the
/// integrity (MAC) key are derived.
///
/// # Panics
///
/// Panics on an empty part list — an event always has at least one part.
pub fn combine_master(parts: &[DeriveKey], ops: &mut OpCounter) -> DeriveKey {
    assert!(
        !parts.is_empty(),
        "an event always has at least one key part"
    );
    let mut acc = parts[0].clone();
    for p in &parts[1..] {
        ops.add_kh(1);
        acc = acc.kh(p.as_bytes());
    }
    acc
}

/// Folds per-attribute key parts (already sorted by attribute name) into
/// the final AES-128 content key `K(e)`.
///
/// # Panics
///
/// Panics on an empty part list.
pub fn combine_parts(parts: &[DeriveKey], ops: &mut OpCounter) -> AesKey {
    combine_master(parts, ops).content_key()
}

/// The integrity key paired with `K(e)`: used to MAC the ciphertext
/// (encrypt-then-MAC) so a subscriber holding the wrong hierarchy keys
/// rejects deterministically instead of risking a padding false-positive.
/// (The paper's construction has no explicit integrity tag; this is a
/// reproduction-level hardening that does not alter any routing or
/// key-derivation semantics.)
pub fn mac_key(master: &DeriveKey, ops: &mut OpCounter) -> DeriveKey {
    ops.add_kh(1);
    master.kh(b"psguard-mac-key")
}

/// A subscriber's authorization for one conjunctive filter: per constrained
/// attribute, the alternative keys whose subtrees cover the constraint.
#[derive(Clone, PartialEq, Eq)]
pub struct ConstraintGrant {
    /// The constrained attribute.
    pub attr: String,
    /// Keys covering the constraint (e.g. one per canonical sub-range).
    pub alternatives: Vec<AuthKey>,
}

// Redacting Debug via AuthKey's fingerprint-only impl.
impl std::fmt::Debug for ConstraintGrant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConstraintGrant")
            .field("attr", &self.attr)
            .field("alternatives", &self.alternatives)
            .finish()
    }
}

/// A full grant for one conjunctive filter.
///
/// Obtained from [`crate::Kdc::grant`]; consumed by
/// [`Grant::event_key`] to recover `K(e)` for matching events.
#[derive(Clone, PartialEq, Eq)]
pub struct Grant {
    /// The granted topic `w`.
    pub topic: String,
    /// Epoch of validity.
    pub epoch: EpochId,
    /// Whole-topic authorization (present iff the filter had no
    /// constraints).
    pub topic_auth: Option<AuthKey>,
    /// Per-constraint authorizations.
    pub constraints: Vec<ConstraintGrant>,
}

// Redacting Debug via AuthKey's fingerprint-only impl.
impl std::fmt::Debug for Grant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Grant")
            .field("topic", &self.topic)
            .field("epoch", &self.epoch)
            .field("topic_auth", &self.topic_auth)
            .field("constraints", &self.constraints)
            .finish()
    }
}

impl Grant {
    /// Total number of authorization keys in the grant — the paper's
    /// per-subscription key count (Tables 1–2, Figure 3).
    pub fn key_count(&self) -> usize {
        self.topic_auth.iter().len()
            + self
                .constraints
                .iter()
                .map(|c| c.alternatives.len())
                .sum::<usize>()
    }

    /// Attempts to reconstruct the event key `K(e)` for an event with the
    /// given key addresses. Succeeds iff every address is derivable from
    /// this grant — i.e. the event matches the granted filter (up to
    /// least-count granularity).
    pub fn event_key(
        &self,
        schema: &Schema,
        addrs: &[EventKeyAddress],
        ops: &mut OpCounter,
    ) -> Option<AesKey> {
        self.event_master(schema, addrs, ops)
            .map(|m| m.content_key())
    }

    /// Like [`Grant::event_key`], but returns the combined event master
    /// key, from which both the content key and the MAC key derive.
    pub fn event_master(
        &self,
        schema: &Schema,
        addrs: &[EventKeyAddress],
        ops: &mut OpCounter,
    ) -> Option<DeriveKey> {
        let mut parts = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let part = self.event_key_part(schema, addr, ops)?;
            parts.push(part);
        }
        Some(combine_master(&parts, ops))
    }

    /// Derives one address' key part, trying the topic key first and then
    /// the per-constraint alternatives. Returns `None` when the grant does
    /// not cover the address (derivation is computationally infeasible).
    pub fn event_key_part(
        &self,
        schema: &Schema,
        addr: &EventKeyAddress,
        ops: &mut OpCounter,
    ) -> Option<DeriveKey> {
        if let Some(tk) = &self.topic_auth {
            if let Some(part) = tk.derive_part(schema, addr, ops) {
                return Some(part);
            }
        }
        let attr = addr.attr()?;
        let cg = self.constraints.iter().find(|c| c.attr == attr)?;
        cg.alternatives
            .iter()
            .find_map(|ak| ak.derive_part(schema, addr, ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::IntRange;

    fn schema() -> Schema {
        Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .category("diag", 6)
            .str_prefix("sym", 8)
            .build()
    }

    fn topic_key() -> DeriveKey {
        DeriveKey::from_bytes(b"K(cancerTrail)")
    }

    #[test]
    fn addresses_sorted_by_attr_and_plain_fallback() {
        let s = schema();
        let e = Event::builder("t")
            .attr("sym", "GOOG")
            .attr("age", 22i64)
            .build();
        let addrs = event_key_addresses(&s, &e).unwrap();
        assert_eq!(addrs.len(), 2);
        assert_eq!(addrs[0].attr(), Some("age"));
        assert_eq!(addrs[1].attr(), Some("sym"));

        let plain = Event::builder("t").attr("unkeyed", 5i64).build();
        assert_eq!(
            event_key_addresses(&s, &plain).unwrap(),
            vec![EventKeyAddress::Plain]
        );
    }

    #[test]
    fn address_errors() {
        let s = schema();
        let bad_family = Event::builder("t").attr("age", "not a number").build();
        assert!(matches!(
            event_key_addresses(&s, &bad_family),
            Err(EventKeyError::FamilyMismatch { .. })
        ));
        let oob = Event::builder("t").attr("age", 500i64).build();
        assert!(matches!(
            event_key_addresses(&s, &oob),
            Err(EventKeyError::OutOfRange { .. })
        ));
        let long = Event::builder("t").attr("sym", "WAYTOOLONGSYM").build();
        assert!(matches!(
            event_key_addresses(&s, &long),
            Err(EventKeyError::TooLong { .. })
        ));
    }

    #[test]
    fn publisher_and_subscriber_agree_numeric() {
        let s = schema();
        let tk = topic_key();
        let e = Event::builder("t").attr("age", 22i64).build();
        let addrs = event_key_addresses(&s, &e).unwrap();
        let mut ops = OpCounter::new();
        let pub_part = part_from_topic_key(&tk, &s, &addrs[0], &mut ops);

        // Authorization for ages 16..=31 (ktid = prefix of the event leaf).
        let nakt = match s.get("age").unwrap() {
            AttrSpec::Numeric { nakt } => nakt.clone(),
            _ => unreachable!(),
        };
        let cover = nakt
            .canonical_cover(&IntRange::new(16, 31).unwrap())
            .unwrap();
        assert_eq!(cover.len(), 1);
        let space = NaktKeySpace::new(nakt, &tk, b"age");
        let auth = AuthKey {
            scope: KeyScope::Numeric {
                attr: "age".into(),
                ktid: cover[0].clone(),
            },
            key: space.key_for(&cover[0], &mut ops),
            epoch: EpochId(0),
        };
        let sub_part = auth.derive_part(&s, &addrs[0], &mut ops).unwrap();
        assert_eq!(pub_part, sub_part);
    }

    #[test]
    fn unauthorized_numeric_part_refused() {
        let s = schema();
        let tk = topic_key();
        let mut ops = OpCounter::new();
        let nakt = match s.get("age").unwrap() {
            AttrSpec::Numeric { nakt } => nakt.clone(),
            _ => unreachable!(),
        };
        // Authorized for 0..=127; event at 200.
        let cover = nakt
            .canonical_cover(&IntRange::new(0, 127).unwrap())
            .unwrap();
        let space = NaktKeySpace::new(nakt.clone(), &tk, b"age");
        let auth = AuthKey {
            scope: KeyScope::Numeric {
                attr: "age".into(),
                ktid: cover[0].clone(),
            },
            key: space.key_for(&cover[0], &mut ops),
            epoch: EpochId(0),
        };
        let addr = EventKeyAddress::Numeric {
            attr: "age".into(),
            ktid: nakt.ktid_of_value(200).unwrap(),
        };
        assert!(auth.derive_part(&s, &addr, &mut ops).is_none());
    }

    #[test]
    fn topic_scope_derives_any_part() {
        let s = schema();
        let tk = topic_key();
        let auth = AuthKey {
            scope: KeyScope::Topic,
            key: tk.clone(),
            epoch: EpochId(0),
        };
        let mut ops = OpCounter::new();
        for addr in [
            EventKeyAddress::Plain,
            EventKeyAddress::Str {
                attr: "sym".into(),
                value: "GOOG".into(),
            },
            EventKeyAddress::Category {
                attr: "diag".into(),
                path: CategoryPath::from_indices([1, 2]),
            },
        ] {
            let from_auth = auth.derive_part(&s, &addr, &mut ops).unwrap();
            let from_pub = part_from_topic_key(&tk, &s, &addr, &mut ops);
            assert_eq!(from_auth, from_pub);
        }
    }

    #[test]
    fn string_prefix_grant_semantics() {
        let s = schema();
        let tk = topic_key();
        let mut ops = OpCounter::new();
        let space = StringKeySpace::new(&tk, b"sym", ChainDirection::Prefix);
        let auth = AuthKey {
            scope: KeyScope::StrPrefix {
                attr: "sym".into(),
                prefix: "GO".into(),
            },
            key: space.key_for("GO", &mut ops),
            epoch: EpochId(0),
        };
        let goog = EventKeyAddress::Str {
            attr: "sym".into(),
            value: "GOOG".into(),
        };
        let msft = EventKeyAddress::Str {
            attr: "sym".into(),
            value: "MSFT".into(),
        };
        assert!(auth.derive_part(&s, &goog, &mut ops).is_some());
        assert!(auth.derive_part(&s, &msft, &mut ops).is_none());
    }

    #[test]
    fn attr_mismatch_refused() {
        let s = schema();
        let tk = topic_key();
        let mut ops = OpCounter::new();
        let auth = AuthKey {
            scope: KeyScope::StrPrefix {
                attr: "sym".into(),
                prefix: "".into(),
            },
            key: StringKeySpace::new(&tk, b"sym", ChainDirection::Prefix).key_for("", &mut ops),
            epoch: EpochId(0),
        };
        let other_attr = EventKeyAddress::Str {
            attr: "other".into(),
            value: "GOOG".into(),
        };
        assert!(auth.derive_part(&s, &other_attr, &mut ops).is_none());
    }

    #[test]
    fn combine_parts_is_order_sensitive_and_deterministic() {
        let mut ops = OpCounter::new();
        let a = DeriveKey::from_bytes(b"a");
        let b = DeriveKey::from_bytes(b"b");
        let ab = combine_parts(&[a.clone(), b.clone()], &mut ops);
        let ba = combine_parts(&[b.clone(), a.clone()], &mut ops);
        assert_ne!(ab, ba);
        assert_eq!(combine_parts(&[a.clone(), b.clone()], &mut ops), ab);
        assert_eq!(
            combine_parts(std::slice::from_ref(&a), &mut ops),
            a.content_key()
        );
    }

    #[test]
    fn scope_labels_unique() {
        let scopes = [
            KeyScope::Topic,
            KeyScope::Numeric {
                attr: "a".into(),
                ktid: Ktid::from_digits([1]),
            },
            KeyScope::Numeric {
                attr: "a".into(),
                ktid: Ktid::from_digits([1, 0]),
            },
            KeyScope::Category {
                attr: "a".into(),
                path: CategoryPath::from_indices([1]),
            },
            KeyScope::StrPrefix {
                attr: "a".into(),
                prefix: "x".into(),
            },
            KeyScope::StrSuffix {
                attr: "a".into(),
                suffix: "x".into(),
            },
        ];
        let labels: std::collections::HashSet<_> = scopes.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), scopes.len());
    }
}
