//! Operation-cost accounting for key generation and derivation.
//!
//! Tables 1 and 2 of the paper report key-management costs in microseconds;
//! the underlying unit is the number of hash (`H`) and keyed-hash (`KH`)
//! invocations. Every derivation routine in this crate threads an
//! [`OpCounter`] so experiments can report exact operation counts, and the
//! bench harness converts them to wall-clock time.

/// Counts primitive operations performed during key management.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounter {
    /// One-way hash (`H`) invocations — child-key derivations.
    pub hash_ops: u64,
    /// Keyed hash (`KH`) invocations — hierarchy-root derivations.
    pub kh_ops: u64,
}

impl OpCounter {
    /// A fresh, zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` one-way hash operations.
    pub fn add_hash(&mut self, n: u64) {
        self.hash_ops += n;
    }

    /// Records `n` keyed-hash operations.
    pub fn add_kh(&mut self, n: u64) {
        self.kh_ops += n;
    }

    /// Total primitive operations (`H` and `KH` cost about the same: one or
    /// two compression-function calls).
    pub fn total(&self) -> u64 {
        self.hash_ops + self.kh_ops
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &OpCounter) {
        self.hash_ops += other.hash_ops;
        self.kh_ops += other.kh_ops;
    }
}

impl std::ops::Add for OpCounter {
    type Output = OpCounter;

    fn add(self, rhs: OpCounter) -> OpCounter {
        OpCounter {
            hash_ops: self.hash_ops + rhs.hash_ops,
            kh_ops: self.kh_ops + rhs.kh_ops,
        }
    }
}

impl std::fmt::Display for OpCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} H + {} KH", self.hash_ops, self.kh_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut c = OpCounter::new();
        c.add_hash(3);
        c.add_kh(2);
        assert_eq!(c.total(), 5);
        c.merge(&OpCounter {
            hash_ops: 1,
            kh_ops: 0,
        });
        assert_eq!(c.hash_ops, 4);
    }

    #[test]
    fn add_operator() {
        let a = OpCounter {
            hash_ops: 1,
            kh_ops: 2,
        };
        let b = OpCounter {
            hash_ops: 10,
            kh_ops: 20,
        };
        assert_eq!((a + b).total(), 33);
    }

    #[test]
    fn display() {
        let c = OpCounter {
            hash_ops: 7,
            kh_ops: 1,
        };
        assert_eq!(c.to_string(), "7 H + 1 KH");
    }
}
