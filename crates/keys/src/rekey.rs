//! Epoch-batched group rekeying: the glue between the KDC's epoch
//! ratchet and the subscriber-group baseline's batched LKH flush
//! (ROADMAP item 3).
//!
//! The baseline crate ([`psguard_groupkey`]) can stage membership
//! changes and settle them as one dirty-path-union update per segment.
//! This module decides *when* that flush happens — at the topic's epoch
//! boundary, or early when a pending-change high-water mark is reached
//! — and fuses it with the key-space rotation: the flush derives the
//! next epoch's group seed from the stateless KDC and rotates the
//! manager's master in the same call, so every key handed out after the
//! flush already belongs to the new epoch.

use psguard_groupkey::{RekeyReport, RekeyStrategy, SubscriberGroupManager, SubscriberId};
use psguard_model::IntRange;

use crate::cost::OpCounter;
use crate::epoch::{EpochId, RekeyWindow};
use crate::kdc::Kdc;

/// Drives one topic's subscriber-group manager through epoch-batched
/// rekey cycles.
///
/// # Example
///
/// ```
/// use psguard_groupkey::RekeyStrategy;
/// use psguard_keys::{EpochSchedule, GroupRekeyCoordinator, Kdc, OpCounter, RekeyWindow};
/// use psguard_model::IntRange;
///
/// let kdc = Kdc::from_seed(b"master");
/// let mut ops = OpCounter::new();
/// let window = RekeyWindow::new(EpochSchedule::new(1000), "trades", 0, 64);
/// let mut coord = GroupRekeyCoordinator::new(
///     IntRange::new(0, 255).unwrap(),
///     RekeyStrategy::Lkh,
///     &kdc,
///     window,
///     &mut ops,
/// );
/// coord.queue_join(7, IntRange::new(0, 127).unwrap());
/// // Not due yet: the join stays queued, no rekey traffic.
/// assert!(coord.maybe_flush(&kdc, 1, &mut ops).is_none());
/// // Past the boundary the batch settles in one update.
/// let (epoch, report) = coord.maybe_flush(&kdc, 5000, &mut ops).unwrap();
/// assert!(report.keys_to_newcomer > 0);
/// assert!(coord.manager().can_decrypt(7, 64));
/// # let _ = epoch;
/// ```
pub struct GroupRekeyCoordinator {
    manager: SubscriberGroupManager,
    window: RekeyWindow,
}

impl std::fmt::Debug for GroupRekeyCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The manager holds live group keys; print only the window.
        f.debug_struct("GroupRekeyCoordinator")
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

impl GroupRekeyCoordinator {
    /// Creates a coordinator whose manager is seeded from the window's
    /// starting epoch via [`Kdc::group_seed`].
    pub fn new(
        range: IntRange,
        strategy: RekeyStrategy,
        kdc: &Kdc,
        window: RekeyWindow,
        ops: &mut OpCounter,
    ) -> Self {
        let seed = kdc.group_seed(window.topic(), window.epoch(), ops);
        GroupRekeyCoordinator {
            manager: SubscriberGroupManager::new(range, strategy, seed.as_bytes()),
            window,
        }
    }

    /// The underlying group manager (read-only; mutate via the queue
    /// and flush methods so the window's accounting stays truthful).
    pub fn manager(&self) -> &SubscriberGroupManager {
        &self.manager
    }

    /// The batching window.
    pub fn window(&self) -> &RekeyWindow {
        &self.window
    }

    /// Queues a join for the next flush. The subscriber gains access
    /// only once the batch settles (epoch semantics: authorizations
    /// activate at the boundary they were priced for).
    pub fn queue_join(&mut self, s: SubscriberId, range: IntRange) {
        self.manager.queue_join(s, range);
        self.window.note(1);
    }

    /// Queues a leave (lazy revocation): the subscriber is dropped from
    /// the authorization set immediately but the key trees rotate at
    /// the next flush.
    pub fn queue_leave(&mut self, s: SubscriberId) {
        self.manager.leave_lazy(s);
        self.window.note(1);
    }

    /// Flushes iff the window is due at `now_ms`, returning the epoch
    /// the batch settled into and its (batched) rekey cost.
    pub fn maybe_flush(
        &mut self,
        kdc: &Kdc,
        now_ms: u64,
        ops: &mut OpCounter,
    ) -> Option<(EpochId, RekeyReport)> {
        if !self.window.due(now_ms) {
            return None;
        }
        Some(self.flush_now(kdc, now_ms, ops))
    }

    /// Unconditional flush: advances the window, derives the new
    /// epoch's group seed, rotates the manager's master and settles the
    /// pending batch — one atomic step.
    pub fn flush_now(
        &mut self,
        kdc: &Kdc,
        now_ms: u64,
        ops: &mut OpCounter,
    ) -> (EpochId, RekeyReport) {
        let epoch = self.window.advance(now_ms);
        let seed = kdc.group_seed(self.window.topic(), epoch, ops);
        let report = self.manager.epoch_rekey_rotating(seed.as_bytes());
        (epoch, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochSchedule;

    fn coord(max_pending: usize) -> (Kdc, GroupRekeyCoordinator) {
        let kdc = Kdc::from_seed(b"master");
        let mut ops = OpCounter::new();
        let window = RekeyWindow::new(EpochSchedule::new(1000), "t", 0, max_pending);
        let c = GroupRekeyCoordinator::new(
            IntRange::new(0, 63).unwrap(),
            RekeyStrategy::Lkh,
            &kdc,
            window,
            &mut ops,
        );
        (kdc, c)
    }

    #[test]
    fn queued_join_activates_at_boundary_flush() {
        let (kdc, mut c) = coord(1000);
        let mut ops = OpCounter::new();
        c.queue_join(1, IntRange::new(0, 31).unwrap());
        assert!(c.maybe_flush(&kdc, 10, &mut ops).is_none());
        assert!(!c.manager().can_decrypt(1, 10));
        let (_, report) = c.maybe_flush(&kdc, 5000, &mut ops).expect("due");
        assert!(report.keys_to_newcomer > 0);
        assert!(c.manager().can_decrypt(1, 10));
        assert!(!c.manager().can_decrypt(1, 40));
    }

    #[test]
    fn high_water_mark_forces_early_flush() {
        let (kdc, mut c) = coord(3);
        let mut ops = OpCounter::new();
        for s in 0..3 {
            c.queue_join(s, IntRange::new(0, 63).unwrap());
        }
        let e0 = c.window().epoch();
        // Clock has not moved, yet the batch is over the mark.
        let (e1, _) = c.maybe_flush(&kdc, 0, &mut ops).expect("high water");
        assert_eq!(e1, e0.next());
        assert_eq!(c.window().pending(), 0);
        assert_eq!(c.manager().subscriber_count(), 3);
    }

    #[test]
    fn storm_settles_as_one_batch() {
        let (kdc, mut c) = coord(10_000);
        let mut ops = OpCounter::new();
        for s in 0..64 {
            c.queue_join(s, IntRange::new(0, 63).unwrap());
        }
        c.flush_now(&kdc, 0, &mut ops);
        // Revocation storm: half the members leave inside one window.
        for s in 0..32 {
            c.queue_leave(s);
        }
        assert_eq!(c.window().pending(), 32);
        let (_, batched) = c.flush_now(&kdc, 10_000, &mut ops);
        for s in 0..32u64 {
            assert!(!c.manager().can_decrypt(s, 1));
        }
        for s in 32..64u64 {
            assert!(c.manager().can_decrypt(s, 1));
        }
        // The union of 32 root paths in a 64-leaf tree is far below the
        // naive 32 separate O(log n) rekeys.
        assert!(batched.messages_to_members > 0);
        assert!(batched.messages_to_members < 32 * 12);
    }

    #[test]
    fn debug_redacts_manager_state() {
        let (_, c) = coord(4);
        let dbg = format!("{c:?}");
        assert!(dbg.contains("window"));
        assert!(!dbg.contains("segments"));
    }
}
