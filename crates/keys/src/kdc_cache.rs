//! A caching front for the KDC (§5.1): "for a KDC with limited computing
//! power, one could cache the derived keys to trade-off computing power
//! with main memory utilization."
//!
//! Because the KDC is a pure function of `(master, request)`, whole
//! grants are cacheable by request. The cache is bounded LRU; being a
//! pure memo, replicas may cache independently without any coherence.

use std::collections::{BTreeMap, HashMap};

use psguard_model::Filter;

use crate::cost::OpCounter;
use crate::epoch::EpochId;
use crate::grant::Grant;
use crate::kdc::{Kdc, KdcError, TopicScope};
use crate::schema::Schema;

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GrantCacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that required derivation.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

/// An LRU-memoizing wrapper around [`Kdc`].
///
/// # Example
///
/// ```
/// use psguard_keys::{CachedKdc, EpochId, Kdc, OpCounter, Schema, TopicScope};
/// use psguard_model::Filter;
///
/// let mut kdc = CachedKdc::new(Kdc::from_seed(b"m"), 128);
/// let schema = Schema::new();
/// let f = Filter::for_topic("w");
/// let mut ops = OpCounter::new();
/// let a = kdc.grant(&schema, &f, EpochId(0), &TopicScope::Shared, &mut ops).unwrap();
/// let before = ops.total();
/// let b = kdc.grant(&schema, &f, EpochId(0), &TopicScope::Shared, &mut ops).unwrap();
/// assert_eq!(a, b);
/// assert_eq!(ops.total(), before); // second answer cost nothing
/// assert_eq!(kdc.stats().hits, 1);
/// ```
pub struct CachedKdc {
    kdc: Kdc,
    capacity: usize,
    map: HashMap<String, (Grant, u64)>,
    order: BTreeMap<u64, String>,
    tick: u64,
    stats: GrantCacheStats,
}

// Redacting Debug: cached grants carry authorization keys, and the KDC
// inside holds the master secret — neither may reach debug output.
impl std::fmt::Debug for CachedKdc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedKdc")
            .field("kdc", &self.kdc)
            .field("capacity", &self.capacity)
            .field("len", &self.map.len())
            .field("stats", &self.stats)
            .field("grants", &"<redacted>")
            .finish()
    }
}

impl CachedKdc {
    /// Wraps a KDC with a grant cache holding up to `capacity` grants.
    /// `capacity == 0` disables caching (pure passthrough).
    pub fn new(kdc: Kdc, capacity: usize) -> Self {
        CachedKdc {
            kdc,
            capacity,
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            stats: GrantCacheStats::default(),
        }
    }

    /// The wrapped (stateless) KDC.
    pub fn inner(&self) -> &Kdc {
        &self.kdc
    }

    /// Cache statistics.
    pub fn stats(&self) -> GrantCacheStats {
        self.stats
    }

    /// Number of cached grants.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn request_key(filter: &Filter, epoch: EpochId, scope: &TopicScope) -> String {
        let scope_tag = match scope {
            TopicScope::Shared => "shared".to_owned(),
            TopicScope::Publisher(p) => format!("pub:{p}"),
        };
        format!("{filter}|{epoch}|{scope_tag}")
    }

    /// Like [`Kdc::grant`], but memoized. Cache hits cost zero hash
    /// operations.
    ///
    /// # Errors
    ///
    /// Propagates [`KdcError`] (errors are not cached).
    pub fn grant(
        &mut self,
        schema: &Schema,
        filter: &Filter,
        epoch: EpochId,
        scope: &TopicScope,
        ops: &mut OpCounter,
    ) -> Result<Grant, KdcError> {
        let key = Self::request_key(filter, epoch, scope);
        if let Some((grant, tick)) = self.map.get_mut(&key) {
            let grant = grant.clone();
            let old = *tick;
            self.tick += 1;
            *tick = self.tick;
            self.order.remove(&old);
            self.order.insert(self.tick, key.clone());
            self.stats.hits += 1;
            return Ok(grant);
        }
        self.stats.misses += 1;
        let grant = self.kdc.grant(schema, filter, epoch, scope, ops)?;
        if self.capacity > 0 {
            while self.map.len() >= self.capacity {
                let Some((_, victim)) = self.order.pop_first() else {
                    break;
                };
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
            self.tick += 1;
            self.order.insert(self.tick, key.clone());
            self.map.insert(key, (grant.clone(), self.tick));
        }
        Ok(grant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::{Constraint, IntRange, Op};

    fn schema() -> Schema {
        Schema::builder()
            .numeric("age", IntRange::new(0, 255).expect("valid"), 1)
            .expect("valid nakt")
            .build()
    }

    fn filter(lo: i64) -> Filter {
        Filter::for_topic("w").with(Constraint::new("age", Op::Ge(lo)))
    }

    #[test]
    fn hit_skips_derivation() {
        let mut kdc = CachedKdc::new(Kdc::from_seed(b"m"), 16);
        let s = schema();
        let mut ops = OpCounter::new();
        let a = kdc
            .grant(&s, &filter(10), EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        let cost_first = ops.total();
        assert!(cost_first > 0);
        let b = kdc
            .grant(&s, &filter(10), EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(ops.total(), cost_first, "hit must cost nothing");
        assert_eq!(kdc.stats().hits, 1);
        assert_eq!(kdc.stats().misses, 1);
    }

    #[test]
    fn distinct_requests_distinct_entries() {
        let mut kdc = CachedKdc::new(Kdc::from_seed(b"m"), 16);
        let s = schema();
        let mut ops = OpCounter::new();
        let base = kdc
            .grant(&s, &filter(10), EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        // Different epoch and different scope must not hit.
        let other_epoch = kdc
            .grant(&s, &filter(10), EpochId(1), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert_ne!(base, other_epoch);
        let other_scope = kdc
            .grant(
                &s,
                &filter(10),
                EpochId(0),
                &TopicScope::Publisher("P".into()),
                &mut ops,
            )
            .unwrap();
        assert_ne!(base, other_scope);
        assert_eq!(kdc.stats().misses, 3);
        assert_eq!(kdc.len(), 3);
    }

    #[test]
    fn lru_eviction() {
        let mut kdc = CachedKdc::new(Kdc::from_seed(b"m"), 2);
        let s = schema();
        let mut ops = OpCounter::new();
        for lo in [1i64, 2, 3] {
            kdc.grant(&s, &filter(lo), EpochId(0), &TopicScope::Shared, &mut ops)
                .unwrap();
        }
        assert_eq!(kdc.len(), 2);
        assert_eq!(kdc.stats().evictions, 1);
        // The oldest (lo=1) was evicted: requesting it again misses.
        kdc.grant(&s, &filter(1), EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert_eq!(kdc.stats().misses, 4);
    }

    #[test]
    fn zero_capacity_is_passthrough() {
        let mut kdc = CachedKdc::new(Kdc::from_seed(b"m"), 0);
        let s = schema();
        let mut ops = OpCounter::new();
        kdc.grant(&s, &filter(1), EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        kdc.grant(&s, &filter(1), EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert!(kdc.is_empty());
        assert_eq!(kdc.stats().hits, 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let mut kdc = CachedKdc::new(Kdc::from_seed(b"m"), 4);
        let s = schema();
        let mut ops = OpCounter::new();
        let bad = Filter::any();
        assert!(kdc
            .grant(&s, &bad, EpochId(0), &TopicScope::Shared, &mut ops)
            .is_err());
        assert!(kdc.is_empty());
        assert_eq!(kdc.stats().misses, 1);
    }

    #[test]
    fn cached_grants_match_stateless_kdc() {
        let plain = Kdc::from_seed(b"m");
        let mut cached = CachedKdc::new(plain.replicate(), 8);
        let s = schema();
        let mut ops = OpCounter::new();
        let via_cache = cached
            .grant(&s, &filter(42), EpochId(2), &TopicScope::Shared, &mut ops)
            .unwrap();
        let direct = plain
            .grant(&s, &filter(42), EpochId(2), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert_eq!(via_cache, direct);
    }
}
