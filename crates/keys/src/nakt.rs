//! The Numeric Attribute Key Tree (NAKT) — §3.1 of the paper.
//!
//! A NAKT arranges the cells of a numeric attribute's range in an a-ary
//! tree (binary by default — the paper proves a = 2 minimizes the number of
//! authorization keys). The tree has two faces:
//!
//! * **geometry** ([`Nakt`]): mapping values to leaf identifiers, subtree
//!   spans, and the canonical decomposition of an arbitrary subscription
//!   range into the minimal set of aligned subtrees;
//! * **keys** ([`NaktKeySpace`]): one [`DeriveKey`] per tree element, with
//!   children derivable from parents (`K_{ktid‖b} = H(K_ktid ‖ b)`) but not
//!   conversely.

use psguard_crypto::DeriveKey;
use psguard_model::IntRange;

use crate::cost::OpCounter;
use crate::ktid::Ktid;

/// Errors raised by NAKT construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaktError {
    /// `lc` must be ≥ 1.
    ZeroLeastCount,
    /// Arity must be ≥ 2.
    BadArity {
        /// The offending arity.
        arity: u8,
    },
    /// The queried value lies outside the attribute range.
    ValueOutOfRange {
        /// The offending value.
        value: i64,
        /// The attribute range.
        range: IntRange,
    },
    /// The queried range does not intersect the attribute range.
    RangeOutOfRange {
        /// The offending range.
        query: IntRange,
        /// The attribute range.
        range: IntRange,
    },
}

impl std::fmt::Display for NaktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NaktError::ZeroLeastCount => write!(f, "least count must be at least 1"),
            NaktError::BadArity { arity } => write!(f, "arity must be at least 2, got {arity}"),
            NaktError::ValueOutOfRange { value, range } => {
                write!(f, "value {value} outside attribute range {range}")
            }
            NaktError::RangeOutOfRange { query, range } => {
                write!(
                    f,
                    "range {query} does not intersect attribute range {range}"
                )
            }
        }
    }
}

impl std::error::Error for NaktError {}

/// NAKT geometry: the shape of the tree, independent of any key material.
///
/// # Example
///
/// ```
/// use psguard_keys::{Ktid, Nakt};
/// use psguard_model::IntRange;
///
/// // Figure 1 of the paper: R = (0, 31), lc = 4 → depth 3 binary tree.
/// let nakt = Nakt::binary(IntRange::new(0, 31).unwrap(), 4).unwrap();
/// assert_eq!(nakt.depth(), 3);
/// assert_eq!(nakt.ktid_of_value(22).unwrap(), Ktid::from_digits([1, 0, 1]));
///
/// // The subscription (16, 31) is exactly the subtree "1".
/// let cover = nakt.canonical_cover(&IntRange::new(16, 31).unwrap()).unwrap();
/// assert_eq!(cover, vec![Ktid::from_digits([1])]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nakt {
    range: IntRange,
    lc: u64,
    arity: u8,
    depth: usize,
    cells: u64,
}

impl Nakt {
    /// Builds a binary NAKT over `range` with least count `lc`.
    ///
    /// # Errors
    ///
    /// Returns [`NaktError::ZeroLeastCount`] when `lc == 0`.
    pub fn binary(range: IntRange, lc: u64) -> Result<Self, NaktError> {
        Self::with_arity(range, lc, 2)
    }

    /// Builds an a-ary NAKT (used by the arity ablation; the paper proves
    /// binary optimal).
    ///
    /// # Errors
    ///
    /// Returns [`NaktError::ZeroLeastCount`] or [`NaktError::BadArity`].
    pub fn with_arity(range: IntRange, lc: u64, arity: u8) -> Result<Self, NaktError> {
        if lc == 0 {
            return Err(NaktError::ZeroLeastCount);
        }
        if arity < 2 {
            return Err(NaktError::BadArity { arity });
        }
        let raw_cells = range.len().div_ceil(lc);
        // Pad to the next power of the arity so the tree is complete.
        let mut depth = 0usize;
        let mut cells = 1u64;
        while cells < raw_cells {
            cells *= arity as u64;
            depth += 1;
        }
        Ok(Nakt {
            range,
            lc,
            arity,
            depth,
            cells,
        })
    }

    /// The attribute's value range `R(num)`.
    pub fn range(&self) -> IntRange {
        self.range
    }

    /// The least count `lc(num)` — the smallest subscribable granule.
    pub fn lc(&self) -> u64 {
        self.lc
    }

    /// Tree arity `a`.
    pub fn arity(&self) -> u8 {
        self.arity
    }

    /// Tree depth `m = log_a(|R|/lc)` (after padding to a complete tree).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of leaf cells (a power of the arity).
    pub fn cell_count(&self) -> u64 {
        self.cells
    }

    /// Total number of elements (internal + leaf) in the complete tree.
    pub fn element_count(&self) -> u64 {
        // Geometric series 1 + a + … + a^m.
        let a = self.arity as u64;
        (0..=self.depth as u32).map(|d| a.pow(d)).sum()
    }

    /// The cell index holding value `v`: `⌊(v − lo)/lc⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`NaktError::ValueOutOfRange`] when `v` is outside the range.
    pub fn cell_of(&self, v: i64) -> Result<u64, NaktError> {
        if !self.range.contains(v) {
            return Err(NaktError::ValueOutOfRange {
                value: v,
                range: self.range,
            });
        }
        Ok(((v - self.range.lo()) as u64) / self.lc)
    }

    /// The leaf identifier `ktid(v)` for an event value.
    ///
    /// # Errors
    ///
    /// Returns [`NaktError::ValueOutOfRange`] when `v` is outside the range.
    pub fn ktid_of_value(&self, v: i64) -> Result<Ktid, NaktError> {
        Ok(Ktid::from_leaf_index(
            self.cell_of(v)?,
            self.depth,
            self.arity,
        ))
    }

    /// The value-space span of a subtree, clamped to the attribute range.
    pub fn value_span(&self, ktid: &Ktid) -> IntRange {
        let (lo_cell, hi_cell) = ktid.leaf_span(self.depth, self.arity);
        let lo = self.range.lo() + (lo_cell * self.lc) as i64;
        let hi = self.range.lo() + ((hi_cell + 1) * self.lc) as i64 - 1;
        // A subtree always spans at least one cell, so lo ≤ hi holds and the
        // clamp to the attribute range keeps it that way; fall back to the
        // full range rather than panicking if that invariant ever breaks.
        IntRange::new(lo, hi.min(self.range.hi())).unwrap_or(self.range)
    }

    /// The canonical decomposition: the minimal set of aligned subtrees
    /// whose leaf cells exactly cover the subscription range (the paper's
    /// set `SS`, e.g. `(8, 19) → {(8, 15), (16, 19)}` for lc = 1).
    ///
    /// The query is first clamped to the attribute range and snapped
    /// outward to cell boundaries (a subscription cannot be finer than the
    /// least count).
    ///
    /// # Errors
    ///
    /// Returns [`NaktError::RangeOutOfRange`] when the query is disjoint
    /// from the attribute range.
    pub fn canonical_cover(&self, query: &IntRange) -> Result<Vec<Ktid>, NaktError> {
        let clamped = query
            .clamp_to(&self.range)
            .ok_or(NaktError::RangeOutOfRange {
                query: *query,
                range: self.range,
            })?;
        let lo_cell = ((clamped.lo() - self.range.lo()) as u64) / self.lc;
        let hi_cell = ((clamped.hi() - self.range.lo()) as u64) / self.lc;
        let mut out = Vec::new();
        self.cover_rec(&Ktid::root(), lo_cell, hi_cell, &mut out);
        Ok(out)
    }

    fn cover_rec(&self, node: &Ktid, lo: u64, hi: u64, out: &mut Vec<Ktid>) {
        let (node_lo, node_hi) = node.leaf_span(self.depth, self.arity);
        if node_hi < lo || node_lo > hi {
            return; // disjoint
        }
        if lo <= node_lo && node_hi <= hi {
            out.push(node.clone()); // maximal aligned subtree
            return;
        }
        for d in 0..self.arity {
            self.cover_rec(&node.child(d), lo, hi, out);
        }
    }

    /// Paper bound: any subscription range needs at most
    /// `2(a−1)·log_a(|R|/lc) − 2` authorization keys (= `2·log2 − 2` for the
    /// optimal binary tree). Trees of depth ≤ 1 degenerate to one key.
    pub fn max_auth_keys(&self) -> u64 {
        let m = self.depth as u64;
        if m <= 1 {
            return 1;
        }
        2 * (self.arity as u64 - 1) * m - 2
    }
}

/// Key material over a NAKT: the root key plus on-demand derivation.
///
/// The root is `K_Ø^num = KH_{K(w)}(num)` where `K(w)` is the topic key.
///
/// # Example
///
/// ```
/// use psguard_crypto::DeriveKey;
/// use psguard_keys::{Ktid, Nakt, NaktKeySpace, OpCounter};
/// use psguard_model::IntRange;
///
/// let nakt = Nakt::binary(IntRange::new(0, 31).unwrap(), 4).unwrap();
/// let topic_key = DeriveKey::from_bytes(b"K(cancerTrail)");
/// let space = NaktKeySpace::new(nakt, &topic_key, b"age");
///
/// let mut ops = OpCounter::new();
/// let auth = space.key_for(&Ktid::from_digits([1]), &mut ops);
/// let event = space.key_for(&Ktid::from_digits([1, 0, 1]), &mut ops);
/// // A subscriber holding `auth` derives `event` by hashing down "01".
/// let derived = NaktKeySpace::derive_descendant(
///     &auth,
///     &Ktid::from_digits([1]),
///     &Ktid::from_digits([1, 0, 1]),
///     &mut ops,
/// )
/// .unwrap();
/// assert_eq!(derived, event);
/// ```
#[derive(Clone)]
pub struct NaktKeySpace {
    nakt: Nakt,
    root: DeriveKey,
}

// Redacting Debug: the root key derives the whole subtree of element keys;
// print the tree geometry and the root's fingerprint only.
impl std::fmt::Debug for NaktKeySpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NaktKeySpace")
            .field("nakt", &self.nakt)
            .field("root", &self.root)
            .finish()
    }
}

impl NaktKeySpace {
    /// Creates the key space for attribute `attr_name`, rooted at
    /// `KH_{topic_key}(attr_name)`.
    pub fn new(nakt: Nakt, topic_key: &DeriveKey, attr_name: &[u8]) -> Self {
        NaktKeySpace {
            nakt,
            root: topic_key.kh(attr_name),
        }
    }

    /// The tree geometry.
    pub fn nakt(&self) -> &Nakt {
        &self.nakt
    }

    /// The root key `K_Ø^num`. Held only by the KDC.
    pub fn root_key(&self) -> &DeriveKey {
        &self.root
    }

    /// Derives the key for any tree element by hashing down from the root.
    /// Costs `ktid.depth()` hash operations.
    pub fn key_for(&self, ktid: &Ktid, ops: &mut OpCounter) -> DeriveKey {
        Self::walk(&self.root, ktid.digits(), ops)
    }

    /// Hashes `key` down a digit path: one `H` per digit.
    pub fn walk(key: &DeriveKey, digits: &[u8], ops: &mut OpCounter) -> DeriveKey {
        ops.add_hash(digits.len() as u64);
        digits.iter().fold(key.clone(), |k, &d| k.child_n(d as u32))
    }

    /// Subscriber-side derivation: computes the key for `target` from the
    /// key for `holder` when `holder` is a prefix of `target`; returns
    /// `None` otherwise (the subscriber is not authorized).
    pub fn derive_descendant(
        holder_key: &DeriveKey,
        holder: &Ktid,
        target: &Ktid,
        ops: &mut OpCounter,
    ) -> Option<DeriveKey> {
        let suffix = holder.suffix_of(target)?;
        Some(Self::walk(holder_key, suffix, ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> Nakt {
        Nakt::binary(IntRange::new(0, 31).unwrap(), 4).unwrap()
    }

    #[test]
    fn figure1_geometry() {
        let n = figure1();
        assert_eq!(n.depth(), 3);
        assert_eq!(n.cell_count(), 8);
        assert_eq!(n.element_count(), 15);
        assert_eq!(n.value_span(&Ktid::root()), IntRange::new(0, 31).unwrap());
        assert_eq!(
            n.value_span(&Ktid::from_digits([1])),
            IntRange::new(16, 31).unwrap()
        );
        assert_eq!(
            n.value_span(&Ktid::from_digits([1, 0, 1])),
            IntRange::new(20, 23).unwrap()
        );
    }

    #[test]
    fn paper_cover_example_8_19() {
        // lc = 1 over (0, 31): SS(8, 19) = {(8, 15), (16, 19)}.
        let n = Nakt::binary(IntRange::new(0, 31).unwrap(), 1).unwrap();
        let cover = n.canonical_cover(&IntRange::new(8, 19).unwrap()).unwrap();
        let spans: Vec<IntRange> = cover.iter().map(|k| n.value_span(k)).collect();
        assert_eq!(
            spans,
            vec![
                IntRange::new(8, 15).unwrap(),
                IntRange::new(16, 19).unwrap()
            ]
        );
    }

    #[test]
    fn cover_is_disjoint_exact_and_within_bound() {
        let n = Nakt::binary(IntRange::new(0, 255).unwrap(), 1).unwrap();
        for (lo, hi) in [(0, 255), (1, 254), (7, 9), (100, 100), (0, 127), (128, 130)] {
            let q = IntRange::new(lo, hi).unwrap();
            let cover = n.canonical_cover(&q).unwrap();
            assert!(cover.len() as u64 <= n.max_auth_keys().max(1), "{q}");
            // Exactly the queried cells, each exactly once.
            let mut cells = vec![false; 256];
            for k in &cover {
                let (a, b) = k.leaf_span(n.depth(), 2);
                for c in a..=b {
                    assert!(!cells[c as usize], "overlap at {c} for {q}");
                    cells[c as usize] = true;
                }
            }
            for v in 0..256i64 {
                assert_eq!(cells[v as usize], q.contains(v), "v={v} q={q}");
            }
        }
    }

    #[test]
    fn cover_clamps_to_range() {
        let n = Nakt::binary(IntRange::new(0, 31).unwrap(), 1).unwrap();
        let cover = n
            .canonical_cover(&IntRange::new(-10, 100).unwrap())
            .unwrap();
        assert_eq!(cover, vec![Ktid::root()]);
        assert!(matches!(
            n.canonical_cover(&IntRange::new(40, 50).unwrap()),
            Err(NaktError::RangeOutOfRange { .. })
        ));
    }

    #[test]
    fn least_count_snaps_outward() {
        // lc = 4: subscribing to (17, 18) grants the whole cell (16, 19).
        let n = figure1();
        let cover = n.canonical_cover(&IntRange::new(17, 18).unwrap()).unwrap();
        assert_eq!(cover.len(), 1);
        assert_eq!(n.value_span(&cover[0]), IntRange::new(16, 19).unwrap());
    }

    #[test]
    fn non_power_of_two_range_pads() {
        let n = Nakt::binary(IntRange::new(0, 99).unwrap(), 1).unwrap();
        assert_eq!(n.cell_count(), 128);
        assert_eq!(n.depth(), 7);
        // Values beyond 99 are unreachable: ktid_of_value rejects them.
        assert!(n.ktid_of_value(99).is_ok());
        assert!(n.ktid_of_value(100).is_err());
    }

    #[test]
    fn construction_errors() {
        let r = IntRange::new(0, 10).unwrap();
        assert_eq!(Nakt::binary(r, 0), Err(NaktError::ZeroLeastCount));
        assert_eq!(
            Nakt::with_arity(r, 1, 1),
            Err(NaktError::BadArity { arity: 1 })
        );
    }

    #[test]
    fn key_derivation_matches_kdc_walk() {
        let n = figure1();
        let topic = DeriveKey::from_bytes(b"K(w)");
        let space = NaktKeySpace::new(n, &topic, b"age");
        let mut ops = OpCounter::new();
        let auth = space.key_for(&Ktid::from_digits([1]), &mut ops);
        assert_eq!(ops.hash_ops, 1);
        let event = space.key_for(&Ktid::from_digits([1, 0, 1]), &mut ops);
        let derived = NaktKeySpace::derive_descendant(
            &auth,
            &Ktid::from_digits([1]),
            &Ktid::from_digits([1, 0, 1]),
            &mut ops,
        )
        .unwrap();
        assert_eq!(derived, event);
    }

    #[test]
    fn derivation_refused_for_non_prefix() {
        let topic = DeriveKey::from_bytes(b"K(w)");
        let space = NaktKeySpace::new(figure1(), &topic, b"age");
        let mut ops = OpCounter::new();
        let auth = space.key_for(&Ktid::from_digits([0]), &mut ops);
        // Sibling subtree: not derivable.
        assert!(NaktKeySpace::derive_descendant(
            &auth,
            &Ktid::from_digits([0]),
            &Ktid::from_digits([1, 0, 1]),
            &mut ops,
        )
        .is_none());
        // Ancestor: not derivable either.
        assert!(NaktKeySpace::derive_descendant(
            &auth,
            &Ktid::from_digits([0]),
            &Ktid::root(),
            &mut ops,
        )
        .is_none());
    }

    #[test]
    fn sibling_keys_differ() {
        let topic = DeriveKey::from_bytes(b"K(w)");
        let space = NaktKeySpace::new(figure1(), &topic, b"age");
        let mut ops = OpCounter::new();
        let a = space.key_for(&Ktid::from_digits([0]), &mut ops);
        let b = space.key_for(&Ktid::from_digits([1]), &mut ops);
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_attributes_distinct_roots() {
        let topic = DeriveKey::from_bytes(b"K(w)");
        let a = NaktKeySpace::new(figure1(), &topic, b"age");
        let b = NaktKeySpace::new(figure1(), &topic, b"price");
        assert_ne!(a.root_key(), b.root_key());
    }

    #[test]
    fn max_keys_bound_formula() {
        let n = Nakt::binary(IntRange::new(0, 1023).unwrap(), 1).unwrap();
        assert_eq!(n.max_auth_keys(), 2 * 10 - 2);
        let n4 = Nakt::with_arity(IntRange::new(0, 1023).unwrap(), 1, 4).unwrap();
        assert_eq!(n4.max_auth_keys(), 2 * 3 * 5 - 2);
    }
}
