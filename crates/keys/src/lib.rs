//! Hierarchical key derivation for PSGuard — the paper's core
//! key-management contribution (§3).
//!
//! PSGuard disassociates keys from subscriber groups: an **authorization
//! key** `K(f)` is bound to a subscription filter and an **encryption key**
//! `K(e)` to an event, embedded in a common hierarchical key space so that
//! `K(e)` is efficiently derivable from `K(f)` **iff** the event matches
//! the filter. Key-management cost is therefore independent of the number
//! of subscribers.
//!
//! The pieces:
//!
//! * [`Nakt`] / [`NaktKeySpace`] — the Numeric Attribute Key Tree for range
//!   subscriptions on numeric attributes (§3.1, Figure 1);
//! * [`CategoryKeySpace`] / [`StringKeySpace`] — ontology-subtree and
//!   string prefix/suffix matching (companion technical report);
//! * [`Kdc`] — the *stateless* key distribution center issuing topic keys,
//!   routing tokens and [`Grant`]s;
//! * [`Grant`] / [`AuthKey`] — a subscriber's capability for one filter and
//!   one epoch;
//! * [`KeyCache`] — the derived-key LRU cache of §3.2.3 (Figure 11);
//! * [`EpochSchedule`] — per-topic epoch scheduling and lazy revocation;
//! * [`RekeyWindow`] / [`GroupRekeyCoordinator`] — epoch-batched group
//!   rekeying for the subscriber-group baseline (membership changes
//!   queue per window and settle as one batched LKH update, atomic with
//!   key-space rotation);
//! * [`OpCounter`] — hash-operation accounting behind Tables 1–2.
//!
//! # End-to-end example
//!
//! ```
//! use psguard_crypto::{cbc_decrypt, cbc_encrypt, Aes128};
//! use psguard_keys::{event_key_addresses, part_from_topic_key, combine_parts,
//!                    EpochId, Kdc, OpCounter, Schema, TopicScope};
//! use psguard_model::{Constraint, Event, Filter, IntRange, Op};
//!
//! let kdc = Kdc::from_seed(b"secret");
//! let schema = Schema::builder()
//!     .numeric("age", IntRange::new(0, 255).unwrap(), 1)?
//!     .build();
//! let mut ops = OpCounter::new();
//!
//! // Publisher: encrypt an event.
//! let event = Event::builder("cancerTrail").attr("age", 22i64).build();
//! let topic_key = kdc.topic_key("cancerTrail", EpochId(0), &TopicScope::Shared, &mut ops);
//! let addrs = event_key_addresses(&schema, &event)?;
//! let parts: Vec<_> = addrs
//!     .iter()
//!     .map(|a| part_from_topic_key(&topic_key, &schema, a, &mut ops))
//!     .collect();
//! let k_e = combine_parts(&parts, &mut ops);
//! let ct = cbc_encrypt(&Aes128::new(k_e.as_bytes()), &[0u8; 16], b"record");
//!
//! // Subscriber: obtain a grant for ages 16..=31 and decrypt.
//! let filter = Filter::for_topic("cancerTrail")
//!     .with(Constraint::new("age", Op::Ge(16)))
//!     .with(Constraint::new("age", Op::Le(31)));
//! let grant = kdc.grant(&schema, &filter, EpochId(0), &TopicScope::Shared, &mut ops)?;
//! let k_sub = grant.event_key(&schema, &addrs, &mut ops).expect("authorized");
//! let pt = cbc_decrypt(&Aes128::new(k_sub.as_bytes()), &[0u8; 16], &ct)?;
//! assert_eq!(pt, b"record");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cost;
mod epoch;
mod grant;
mod kdc;
mod kdc_cache;
mod ktid;
mod nakt;
mod rekey;
mod schema;
mod spaces;

pub use cache::{CacheStats, KeyCache};
pub use cost::OpCounter;
pub use epoch::{EpochId, EpochSchedule, RekeyWindow};
pub use grant::{
    combine_master, combine_parts, event_key_addresses, mac_key, part_from_topic_key, AuthKey,
    ConstraintGrant, EventKeyAddress, EventKeyError, Grant, KeyScope,
};
pub use kdc::{Kdc, KdcError, TopicScope};
pub use kdc_cache::{CachedKdc, GrantCacheStats};
pub use ktid::Ktid;
pub use nakt::{Nakt, NaktError, NaktKeySpace};
pub use rekey::GroupRekeyCoordinator;
pub use schema::{AttrSpec, Schema, SchemaBuilder};
pub use spaces::{CategoryKeySpace, ChainDirection, StringKeySpace};
