//! The stateless Key Distribution Center (KDC).
//!
//! Every key in PSGuard derives from the KDC's master key `rk(KDC)`:
//!
//! * topic keys `K(w) = KH_{rk}(w ‖ epoch)` (epoch ratcheting gives lazy
//!   revocation for free);
//! * per-publisher topic keys `K_P(w) = KH_{rk}(P ‖ w ‖ epoch)` isolating
//!   publishers on a shared topic (§3.1 "Multiple Publishers");
//! * routing tokens `T(w) = F_{rk}(w)` for secure content-based routing;
//! * authorization keys: hierarchy-node keys covering a subscription
//!   filter.
//!
//! Because every answer is a pure function of `(master, request)`, the KDC
//! keeps **no state** about subscribers or subscriptions — it can be
//! replicated on demand with no consistency protocol ([`Kdc::replicate`]).

use psguard_crypto::{prf, DeriveKey, Token};
use psguard_model::{Filter, IntRange, Op};

use crate::cost::OpCounter;
use crate::epoch::EpochId;
use crate::grant::{AuthKey, ConstraintGrant, Grant, KeyScope};
use crate::nakt::NaktKeySpace;
use crate::schema::{AttrSpec, Schema};
use crate::spaces::{CategoryKeySpace, ChainDirection, StringKeySpace};

/// Identifies which topic-key lineage a grant or publication uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicScope {
    /// One key shared by all publishers of the topic.
    Shared,
    /// A per-publisher key `K_P(w)`: subscribers authorized against
    /// publisher `P` cannot read other publishers' events (and vice versa).
    Publisher(String),
}

/// Errors raised when the KDC processes a grant request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KdcError {
    /// Grants require a concrete topic (wildcard filters have no key root).
    MissingTopic,
    /// A constraint's operator family cannot be keyed under the attribute's
    /// schema spec.
    UnsupportedConstraint {
        /// The attribute name.
        attr: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The constraints on an attribute are mutually unsatisfiable (empty
    /// range).
    Unsatisfiable {
        /// The attribute name.
        attr: String,
    },
}

impl std::fmt::Display for KdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KdcError::MissingTopic => write!(f, "grant requests require a concrete topic"),
            KdcError::UnsupportedConstraint { attr, reason } => {
                write!(f, "constraint on {attr} cannot be keyed: {reason}")
            }
            KdcError::Unsatisfiable { attr } => {
                write!(f, "constraints on {attr} are unsatisfiable")
            }
        }
    }
}

impl std::error::Error for KdcError {}

/// The stateless KDC.
///
/// # Example
///
/// ```
/// use psguard_keys::{EpochId, Kdc, OpCounter, Schema, TopicScope};
/// use psguard_model::{Constraint, Filter, IntRange, Op};
///
/// let kdc = Kdc::from_seed(b"deployment master secret");
/// let schema = Schema::builder()
///     .numeric("age", IntRange::new(0, 255).unwrap(), 1)
///     .unwrap()
///     .build();
/// let filter = Filter::for_topic("cancerTrail")
///     .with(Constraint::new("age", Op::Ge(16)))
///     .with(Constraint::new("age", Op::Le(31)));
/// let mut ops = OpCounter::new();
/// let grant = kdc
///     .grant(&schema, &filter, EpochId(0), &TopicScope::Shared, &mut ops)
///     .unwrap();
/// assert_eq!(grant.key_count(), 1); // (16,31) is one aligned subtree
/// ```
#[derive(Clone)]
pub struct Kdc {
    master: DeriveKey,
}

impl std::fmt::Debug for Kdc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Kdc { master: <redacted> }")
    }
}

impl Kdc {
    /// Creates a KDC whose master key is derived from a seed.
    pub fn from_seed(seed: &[u8]) -> Self {
        Kdc {
            master: DeriveKey::from_bytes(seed),
        }
    }

    /// Creates a KDC from an existing master key (e.g. loaded from an HSM).
    pub fn from_master(master: DeriveKey) -> Self {
        Kdc { master }
    }

    /// Clones this KDC as a replica. Replicas share only the master key and
    /// need no consistency protocol — the KDC is stateless by construction.
    pub fn replicate(&self) -> Kdc {
        self.clone()
    }

    /// The epoch-ratcheted topic key for the given lineage. Handed to
    /// publishers (their write credential) and embedded in grants.
    pub fn topic_key(
        &self,
        topic: &str,
        epoch: EpochId,
        scope: &TopicScope,
        ops: &mut OpCounter,
    ) -> DeriveKey {
        ops.add_kh(1);
        let label = match scope {
            TopicScope::Shared => format!("topic:{topic}:{}", epoch.0),
            TopicScope::Publisher(p) => format!("pubtopic:{p}:{topic}:{}", epoch.0),
        };
        self.master.kh(label.as_bytes())
    }

    /// The routing token `T(w) = F_{rk}(w)` for tokenized content-based
    /// routing. Tokens identify topics pseudonymously to brokers and do not
    /// ratchet with epochs (brokers hold long-lived routing state).
    pub fn routing_token(&self, topic: &str) -> Token {
        prf(self.master.as_bytes(), format!("token:{topic}").as_bytes())
    }

    /// The per-epoch seed for a topic's subscriber-**group** key tree —
    /// the master the LKH baseline's
    /// [`psguard_groupkey::SubscriberGroupManager`] derives from.
    ///
    /// Rotating this seed at the epoch flush (see
    /// [`crate::GroupRekeyCoordinator`]) makes the batched membership
    /// settle atomic with the key-space ratchet, and keeps the KDC
    /// stateless: the seed is a pure function of `(master, topic,
    /// epoch)`, so replicas agree without coordination.
    pub fn group_seed(&self, topic: &str, epoch: EpochId, ops: &mut OpCounter) -> DeriveKey {
        ops.add_kh(1);
        self.master
            .kh(format!("groupseed:{topic}:{}", epoch.0).as_bytes())
    }

    /// Issues a grant for one conjunctive filter, valid for `epoch`.
    ///
    /// Constraints on attributes absent from the schema are routable-only:
    /// they are matched by brokers but play no role in confidentiality, so
    /// the grant skips them.
    ///
    /// # Errors
    ///
    /// * [`KdcError::MissingTopic`] for wildcard filters;
    /// * [`KdcError::UnsupportedConstraint`] when an operator cannot be
    ///   keyed under the attribute's family;
    /// * [`KdcError::Unsatisfiable`] when an attribute's constraints have
    ///   an empty intersection.
    pub fn grant(
        &self,
        schema: &Schema,
        filter: &Filter,
        epoch: EpochId,
        scope: &TopicScope,
        ops: &mut OpCounter,
    ) -> Result<Grant, KdcError> {
        let topic = filter.topic().ok_or(KdcError::MissingTopic)?;
        let topic_key = self.topic_key(topic, epoch, scope, ops);

        // Group keyed constraints by attribute, carrying the schema spec so
        // the dispatch below never has to re-look it up.
        let mut by_attr: std::collections::BTreeMap<&str, (&AttrSpec, Vec<&Op>)> =
            Default::default();
        for c in filter.constraints() {
            if let Some(spec) = schema.get(c.name().as_str()) {
                by_attr
                    .entry(c.name().as_str())
                    .or_insert_with(|| (spec, Vec::new()))
                    .1
                    .push(c.op());
            }
        }

        if by_attr.is_empty() {
            // Whole-topic authorization: the topic key itself.
            return Ok(Grant {
                topic: topic.to_owned(),
                epoch,
                topic_auth: Some(AuthKey {
                    scope: KeyScope::Topic,
                    key: topic_key,
                    epoch,
                }),
                constraints: Vec::new(),
            });
        }

        let mut constraints = Vec::new();
        for (attr, (spec, cs)) in by_attr {
            let cg = match spec {
                AttrSpec::Numeric { nakt } => {
                    self.numeric_grant(attr, &cs, nakt, &topic_key, epoch, ops)?
                }
                AttrSpec::Category { .. } => {
                    self.category_grant(attr, &cs, &topic_key, epoch, ops)?
                }
                AttrSpec::StrPrefix { .. } => {
                    self.string_grant(attr, &cs, &topic_key, epoch, ChainDirection::Prefix, ops)?
                }
                AttrSpec::StrSuffix { .. } => {
                    self.string_grant(attr, &cs, &topic_key, epoch, ChainDirection::Suffix, ops)?
                }
            };
            constraints.push(cg);
        }

        Ok(Grant {
            topic: topic.to_owned(),
            epoch,
            topic_auth: None,
            constraints,
        })
    }

    fn numeric_grant(
        &self,
        attr: &str,
        ops_on_attr: &[&Op],
        nakt: &crate::nakt::Nakt,
        topic_key: &DeriveKey,
        epoch: EpochId,
        ops: &mut OpCounter,
    ) -> Result<ConstraintGrant, KdcError> {
        // Intersect all numeric constraints into one interval.
        let mut lo = nakt.range().lo();
        let mut hi = nakt.range().hi();
        for op in ops_on_attr {
            let (l, h) = op_interval(op).ok_or_else(|| KdcError::UnsupportedConstraint {
                attr: attr.to_owned(),
                reason: format!("operator {op} is not numeric"),
            })?;
            if let Some(l) = l {
                lo = lo.max(l);
            }
            if let Some(h) = h {
                hi = hi.min(h);
            }
        }
        let range = IntRange::new(lo, hi).ok_or(KdcError::Unsatisfiable {
            attr: attr.to_owned(),
        })?;
        let cover = nakt
            .canonical_cover(&range)
            .map_err(|_| KdcError::Unsatisfiable {
                attr: attr.to_owned(),
            })?;
        let space = NaktKeySpace::new(nakt.clone(), topic_key, attr.as_bytes());
        ops.add_kh(1); // space root derivation
                       // Derive the cover keys with a shared walk: consecutive canonical
                       // sub-ranges share long tree prefixes, so memoizing intermediate
                       // node keys keeps generation at the paper's ~4·log2(R/lc) hashes
                       // instead of re-walking from the root per element.
        let mut memo: std::collections::HashMap<crate::ktid::Ktid, DeriveKey> =
            std::collections::HashMap::new();
        memo.insert(crate::ktid::Ktid::root(), space.root_key().clone());
        let mut key_for_memoized = |ktid: &crate::ktid::Ktid, ops: &mut OpCounter| {
            let mut ancestor = ktid.clone();
            // The root is seeded into the memo above, so walking parents
            // always terminates at a memoized node.
            while !memo.contains_key(&ancestor) {
                match ancestor.parent() {
                    Some(p) => ancestor = p,
                    None => break,
                }
            }
            let mut key = memo
                .get(&ancestor)
                .cloned()
                .unwrap_or_else(|| space.root_key().clone());
            // `ancestor` is a parent chain of `ktid`, hence always a prefix.
            let suffix: Vec<u8> = ancestor.suffix_of(ktid).unwrap_or(&[]).to_vec();
            let mut cur = ancestor;
            for &d in &suffix {
                ops.add_hash(1);
                key = key.child_n(d as u32);
                cur = cur.child(d);
                memo.insert(cur.clone(), key.clone());
            }
            key
        };
        let alternatives = cover
            .into_iter()
            .map(|ktid| AuthKey {
                key: key_for_memoized(&ktid, ops),
                scope: KeyScope::Numeric {
                    attr: attr.to_owned(),
                    ktid,
                },
                epoch,
            })
            .collect();
        Ok(ConstraintGrant {
            attr: attr.to_owned(),
            alternatives,
        })
    }

    fn category_grant(
        &self,
        attr: &str,
        ops_on_attr: &[&Op],
        topic_key: &DeriveKey,
        epoch: EpochId,
        ops: &mut OpCounter,
    ) -> Result<ConstraintGrant, KdcError> {
        // The most specific (deepest) path must be a descendant of all
        // others; otherwise the conjunction is unsatisfiable.
        let mut paths = Vec::new();
        for op in ops_on_attr {
            match op {
                Op::CategoryIn(p) => paths.push(p.clone()),
                Op::Eq(psguard_model::AttrValue::Category(p)) => paths.push(p.clone()),
                other => {
                    return Err(KdcError::UnsupportedConstraint {
                        attr: attr.to_owned(),
                        reason: format!("operator {other} is not a category constraint"),
                    })
                }
            }
        }
        let deepest = paths
            .iter()
            .max_by_key(|p| p.depth())
            .ok_or_else(|| KdcError::Unsatisfiable {
                attr: attr.to_owned(),
            })?
            .clone();
        if !paths.iter().all(|p| p.is_ancestor_or_self_of(&deepest)) {
            return Err(KdcError::Unsatisfiable {
                attr: attr.to_owned(),
            });
        }
        let space = CategoryKeySpace::new(topic_key, attr.as_bytes());
        ops.add_kh(1);
        let key = space.key_for(&deepest, ops);
        Ok(ConstraintGrant {
            attr: attr.to_owned(),
            alternatives: vec![AuthKey {
                scope: KeyScope::Category {
                    attr: attr.to_owned(),
                    path: deepest,
                },
                key,
                epoch,
            }],
        })
    }

    fn string_grant(
        &self,
        attr: &str,
        ops_on_attr: &[&Op],
        topic_key: &DeriveKey,
        epoch: EpochId,
        direction: ChainDirection,
        ops: &mut OpCounter,
    ) -> Result<ConstraintGrant, KdcError> {
        let mut anchors: Vec<String> = Vec::new();
        for op in ops_on_attr {
            match (op, direction) {
                (Op::StrPrefix(p), ChainDirection::Prefix) => anchors.push(p.clone()),
                (Op::StrSuffix(s), ChainDirection::Suffix) => anchors.push(s.clone()),
                (Op::Eq(psguard_model::AttrValue::Str(s)), _) => anchors.push(s.clone()),
                (other, _) => {
                    return Err(KdcError::UnsupportedConstraint {
                        attr: attr.to_owned(),
                        reason: format!(
                            "operator {other} does not fit the attribute's chain direction"
                        ),
                    })
                }
            }
        }
        // Longest anchor must extend all others.
        let longest = anchors
            .iter()
            .max_by_key(|s| s.len())
            .ok_or_else(|| KdcError::Unsatisfiable {
                attr: attr.to_owned(),
            })?
            .clone();
        let consistent = anchors.iter().all(|a| match direction {
            ChainDirection::Prefix => longest.starts_with(a.as_str()),
            ChainDirection::Suffix => longest.ends_with(a.as_str()),
        });
        if !consistent {
            return Err(KdcError::Unsatisfiable {
                attr: attr.to_owned(),
            });
        }
        let space = StringKeySpace::new(topic_key, attr.as_bytes(), direction);
        ops.add_kh(1);
        let key = space.key_for(&longest, ops);
        let scope = match direction {
            ChainDirection::Prefix => KeyScope::StrPrefix {
                attr: attr.to_owned(),
                prefix: longest,
            },
            ChainDirection::Suffix => KeyScope::StrSuffix {
                attr: attr.to_owned(),
                suffix: longest,
            },
        };
        Ok(ConstraintGrant {
            attr: attr.to_owned(),
            alternatives: vec![AuthKey { scope, key, epoch }],
        })
    }
}

/// The closed interval a numeric operator denotes (`None` = unbounded).
fn op_interval(op: &Op) -> Option<(Option<i64>, Option<i64>)> {
    match op {
        Op::Lt(u) => Some((None, Some(u - 1))),
        Op::Le(u) => Some((None, Some(*u))),
        Op::Gt(l) => Some((Some(l + 1), None)),
        Op::Ge(l) => Some((Some(*l), None)),
        Op::InRange(r) => Some((Some(r.lo()), Some(r.hi()))),
        Op::Eq(psguard_model::AttrValue::Int(v)) => Some((Some(*v), Some(*v))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::Constraint;

    fn schema() -> Schema {
        Schema::builder()
            .numeric("age", IntRange::new(0, 255).unwrap(), 1)
            .unwrap()
            .category("diag", 6)
            .str_prefix("sym", 8)
            .str_suffix("file", 16)
            .build()
    }

    fn kdc() -> Kdc {
        Kdc::from_seed(b"master")
    }

    #[test]
    fn whole_topic_grant() {
        let mut ops = OpCounter::new();
        let g = kdc()
            .grant(
                &schema(),
                &Filter::for_topic("w"),
                EpochId(0),
                &TopicScope::Shared,
                &mut ops,
            )
            .unwrap();
        assert!(g.topic_auth.is_some());
        assert_eq!(g.key_count(), 1);
    }

    #[test]
    fn numeric_range_split_into_cover() {
        // (8, 19) over (0, 255): {8-15, 16-19} → 2 keys... in a 256-leaf
        // tree the canonical cover of [8,19] is {8..15, 16..19(=16..19 as
        // two nodes 16-17? no: 16..19 is aligned (16, width 4)}. Expect 2.
        let mut ops = OpCounter::new();
        let f = Filter::for_topic("w").with(Constraint::new(
            "age",
            Op::InRange(IntRange::new(8, 19).unwrap()),
        ));
        let g = kdc()
            .grant(&schema(), &f, EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert_eq!(g.key_count(), 2);
        assert!(g.topic_auth.is_none());
    }

    #[test]
    fn ge_le_pair_intersects() {
        let mut ops = OpCounter::new();
        let f = Filter::for_topic("w")
            .with(Constraint::new("age", Op::Ge(16)))
            .with(Constraint::new("age", Op::Le(31)));
        let g = kdc()
            .grant(&schema(), &f, EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        // (16, 31) is one aligned subtree in a 256-leaf binary tree.
        assert_eq!(g.key_count(), 1);
    }

    #[test]
    fn unsatisfiable_numeric() {
        let mut ops = OpCounter::new();
        let f = Filter::for_topic("w")
            .with(Constraint::new("age", Op::Ge(100)))
            .with(Constraint::new("age", Op::Le(50)));
        assert!(matches!(
            kdc().grant(&schema(), &f, EpochId(0), &TopicScope::Shared, &mut ops),
            Err(KdcError::Unsatisfiable { .. })
        ));
    }

    #[test]
    fn unsupported_operator_family() {
        let mut ops = OpCounter::new();
        let f = Filter::for_topic("w").with(Constraint::new("age", Op::StrPrefix("x".into())));
        assert!(matches!(
            kdc().grant(&schema(), &f, EpochId(0), &TopicScope::Shared, &mut ops),
            Err(KdcError::UnsupportedConstraint { .. })
        ));
    }

    #[test]
    fn wildcard_filter_rejected() {
        let mut ops = OpCounter::new();
        assert_eq!(
            kdc()
                .grant(
                    &schema(),
                    &Filter::any(),
                    EpochId(0),
                    &TopicScope::Shared,
                    &mut ops
                )
                .unwrap_err(),
            KdcError::MissingTopic
        );
    }

    #[test]
    fn epochs_ratchet_topic_keys() {
        let mut ops = OpCounter::new();
        let k = kdc();
        let k0 = k.topic_key("w", EpochId(0), &TopicScope::Shared, &mut ops);
        let k1 = k.topic_key("w", EpochId(1), &TopicScope::Shared, &mut ops);
        assert_ne!(k0, k1);
    }

    #[test]
    fn per_publisher_keys_are_isolated() {
        let mut ops = OpCounter::new();
        let k = kdc();
        let shared = k.topic_key("w", EpochId(0), &TopicScope::Shared, &mut ops);
        let pa = k.topic_key(
            "w",
            EpochId(0),
            &TopicScope::Publisher("A".into()),
            &mut ops,
        );
        let pb = k.topic_key(
            "w",
            EpochId(0),
            &TopicScope::Publisher("B".into()),
            &mut ops,
        );
        assert_ne!(pa, pb);
        assert_ne!(pa, shared);
    }

    #[test]
    fn replicas_agree_without_shared_state() {
        let mut ops = OpCounter::new();
        let a = kdc();
        let b = a.replicate();
        let f = Filter::for_topic("w").with(Constraint::new("age", Op::Ge(10)));
        let ga = a
            .grant(&schema(), &f, EpochId(3), &TopicScope::Shared, &mut ops)
            .unwrap();
        let gb = b
            .grant(&schema(), &f, EpochId(3), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert_eq!(ga, gb);
        assert_eq!(a.routing_token("w"), b.routing_token("w"));
    }

    #[test]
    fn routing_tokens_distinct_per_topic() {
        let k = kdc();
        assert_ne!(k.routing_token("a"), k.routing_token("b"));
    }

    #[test]
    fn group_seeds_ratchet_and_replicate() {
        let mut ops = OpCounter::new();
        let k = kdc();
        let s0 = k.group_seed("w", EpochId(0), &mut ops);
        let s1 = k.group_seed("w", EpochId(1), &mut ops);
        assert_ne!(s0, s1);
        assert_ne!(s0, k.group_seed("v", EpochId(0), &mut ops));
        // Stateless: a replica derives the identical seed.
        assert_eq!(s0, k.replicate().group_seed("w", EpochId(0), &mut ops));
    }

    #[test]
    fn non_schema_constraints_ignored_for_keys() {
        let mut ops = OpCounter::new();
        let f = Filter::for_topic("w")
            .with(Constraint::new("unkeyed", Op::Gt(0)))
            .with(Constraint::new("age", Op::Ge(0)));
        let g = kdc()
            .grant(&schema(), &f, EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert_eq!(g.constraints.len(), 1);
        assert_eq!(g.constraints[0].attr, "age");
    }

    #[test]
    fn string_grants() {
        let mut ops = OpCounter::new();
        let f = Filter::for_topic("w").with(Constraint::new("sym", Op::StrPrefix("GO".into())));
        let g = kdc()
            .grant(&schema(), &f, EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert_eq!(g.key_count(), 1);
        let f = Filter::for_topic("w").with(Constraint::new("file", Op::StrSuffix(".log".into())));
        let g = kdc()
            .grant(&schema(), &f, EpochId(0), &TopicScope::Shared, &mut ops)
            .unwrap();
        assert!(matches!(
            g.constraints[0].alternatives[0].scope,
            KeyScope::StrSuffix { .. }
        ));
    }

    #[test]
    fn conflicting_prefixes_unsatisfiable() {
        let mut ops = OpCounter::new();
        let f = Filter::for_topic("w")
            .with(Constraint::new("sym", Op::StrPrefix("GO".into())))
            .with(Constraint::new("sym", Op::StrPrefix("MS".into())));
        assert!(matches!(
            kdc().grant(&schema(), &f, EpochId(0), &TopicScope::Shared, &mut ops),
            Err(KdcError::Unsatisfiable { .. })
        ));
    }
}
