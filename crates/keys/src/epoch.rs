//! Epoch-based subscription lifetimes and lazy revocation (§2.1, §3.1).
//!
//! Every authorization is valid for exactly one epoch. At an epoch
//! boundary the KDC's topic key ratchets (the epoch number is mixed into
//! `K(w)`), so stale grants can no longer derive fresh event keys — the
//! "lazy revocation" of group-key systems, without any rekey messages.
//!
//! To avoid flash crowds at epoch boundaries, boundaries are spread
//! per topic ([`EpochSchedule::offset_for`]); the schedule can also adapt
//! the epoch length per topic from subscription history
//! ([`EpochSchedule::adaptive_len`]).

/// An epoch number for some topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochId(pub u64);

impl EpochId {
    /// The following epoch.
    pub fn next(self) -> EpochId {
        EpochId(self.0 + 1)
    }
}

impl std::fmt::Display for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epoch{}", self.0)
    }
}

/// Per-topic epoch scheduling.
///
/// # Example
///
/// ```
/// use psguard_keys::{EpochId, EpochSchedule};
///
/// let sched = EpochSchedule::new(3_600_000); // one hour
/// let e = sched.epoch_at("cancerTrail", 7_200_000);
/// assert!(e >= EpochId(1));
/// // Different topics roll over at different instants.
/// let off_a = sched.offset_for("topicA");
/// let off_b = sched.offset_for("topicB");
/// assert!(off_a < 3_600_000 && off_b < 3_600_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSchedule {
    len_ms: u64,
}

impl EpochSchedule {
    /// Creates a schedule with the given base epoch length in
    /// milliseconds.
    ///
    /// # Panics
    ///
    /// Panics when `len_ms == 0`.
    pub fn new(len_ms: u64) -> Self {
        assert!(len_ms > 0, "epoch length must be positive");
        EpochSchedule { len_ms }
    }

    /// The base epoch length.
    pub fn len_ms(&self) -> u64 {
        self.len_ms
    }

    /// A deterministic per-topic phase offset in `[0, len_ms)`, spreading
    /// epoch boundaries across topics (an FNV-1a hash of the topic name).
    pub fn offset_for(&self, topic: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in topic.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h % self.len_ms
    }

    /// The epoch holding instant `now_ms` for `topic`.
    pub fn epoch_at(&self, topic: &str, now_ms: u64) -> EpochId {
        EpochId((now_ms + self.offset_for(topic)) / self.len_ms)
    }

    /// Milliseconds until `topic`'s next epoch boundary after `now_ms`.
    pub fn until_next_boundary(&self, topic: &str, now_ms: u64) -> u64 {
        let shifted = now_ms + self.offset_for(topic);
        self.len_ms - (shifted % self.len_ms)
    }

    /// Adapts the epoch length from subscription history: topics with high
    /// churn (many subscriptions per epoch) get shorter epochs so pricing
    /// and revocation track demand; quiet topics get longer epochs. The
    /// result is clamped to `[len/4, len*4]`.
    ///
    /// The paper leaves the concrete policy open ("outside the scope");
    /// this simple inverse-proportional rule reproduces the intent.
    pub fn adaptive_len(&self, recent_subscriptions_per_epoch: &[u64]) -> u64 {
        if recent_subscriptions_per_epoch.is_empty() {
            return self.len_ms;
        }
        let avg = recent_subscriptions_per_epoch.iter().sum::<u64>()
            / recent_subscriptions_per_epoch.len() as u64;
        // Target ~16 subscriptions per epoch.
        let scaled = if avg == 0 {
            self.len_ms * 4
        } else {
            self.len_ms * 16 / avg.max(1)
        };
        scaled.clamp(self.len_ms / 4, self.len_ms * 4).max(1)
    }
}

/// A per-topic batching window for group-key membership changes.
///
/// The subscriber-group baseline used to rekey on every membership
/// change. With batching (ROADMAP item 3) changes queue until the
/// topic's next epoch boundary — or until a pending-change high-water
/// mark forces an early flush — and then settle as **one**
/// dirty-path-union LKH update, atomic with the epoch's key-space
/// rotation (see [`crate::GroupRekeyCoordinator`]).
///
/// # Example
///
/// ```
/// use psguard_keys::{EpochSchedule, RekeyWindow};
///
/// let mut w = RekeyWindow::new(EpochSchedule::new(1000), "trades", 0, 64);
/// w.note(3);
/// assert_eq!(w.pending(), 3);
/// assert!(!w.due(1)); // neither boundary nor high-water mark reached
/// assert!(w.due(5000)); // epoch boundary passed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RekeyWindow {
    schedule: EpochSchedule,
    topic: String,
    epoch: EpochId,
    max_pending: usize,
    pending: usize,
}

impl RekeyWindow {
    /// Opens a window for `topic` at instant `now_ms`. `max_pending` is
    /// the high-water mark that forces a flush before the boundary
    /// (clamped to at least 1).
    pub fn new(schedule: EpochSchedule, topic: &str, now_ms: u64, max_pending: usize) -> Self {
        let epoch = schedule.epoch_at(topic, now_ms);
        RekeyWindow {
            schedule,
            topic: topic.to_owned(),
            epoch,
            max_pending: max_pending.max(1),
            pending: 0,
        }
    }

    /// The topic this window batches changes for.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The epoch the current batch will settle into.
    pub fn epoch(&self) -> EpochId {
        self.epoch
    }

    /// Membership changes queued since the last flush.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Records `changes` queued membership operations.
    pub fn note(&mut self, changes: usize) {
        self.pending = self.pending.saturating_add(changes);
    }

    /// Whether the batch must flush now: the topic's epoch boundary has
    /// passed, or the pending count reached the high-water mark.
    pub fn due(&self, now_ms: u64) -> bool {
        self.pending >= self.max_pending || self.schedule.epoch_at(&self.topic, now_ms) > self.epoch
    }

    /// Advances to the epoch the flushed batch settles into and clears
    /// the pending counter. An early (high-water) flush still ratchets
    /// forward so the rotated key space is fresh.
    pub fn advance(&mut self, now_ms: u64) -> EpochId {
        let clock = self.schedule.epoch_at(&self.topic, now_ms);
        self.epoch = if clock > self.epoch {
            clock
        } else {
            self.epoch.next()
        };
        self.pending = 0;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_advance_with_time() {
        let s = EpochSchedule::new(1000);
        let e0 = s.epoch_at("t", 0);
        let e1 = s.epoch_at("t", 5000);
        assert!(e1 > e0);
        assert_eq!(e0.next().0, e0.0 + 1);
    }

    #[test]
    fn offsets_are_stable_and_spread() {
        let s = EpochSchedule::new(3_600_000);
        assert_eq!(s.offset_for("a"), s.offset_for("a"));
        // Among many topics at least two distinct offsets exist.
        let offsets: std::collections::HashSet<u64> = (0..50)
            .map(|i| s.offset_for(&format!("topic{i}")))
            .collect();
        assert!(
            offsets.len() > 10,
            "offsets too clustered: {}",
            offsets.len()
        );
    }

    #[test]
    fn boundary_countdown_consistent() {
        let s = EpochSchedule::new(1000);
        let now = 12_345;
        let dt = s.until_next_boundary("t", now);
        assert!((1..=1000).contains(&dt));
        let before = s.epoch_at("t", now + dt - 1);
        let after = s.epoch_at("t", now + dt);
        assert_eq!(after.0, before.0 + 1);
    }

    #[test]
    fn adaptive_len_scales_inverse_to_churn() {
        let s = EpochSchedule::new(1000);
        let busy = s.adaptive_len(&[64, 64, 64]);
        let quiet = s.adaptive_len(&[1, 1]);
        assert!(busy < quiet);
        assert_eq!(s.adaptive_len(&[]), 1000);
        // Clamped into [250, 4000].
        assert!(busy >= 250);
        assert!(quiet <= 4000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        EpochSchedule::new(0);
    }

    #[test]
    fn window_due_on_boundary_or_high_water() {
        let sched = EpochSchedule::new(1000);
        let off = sched.offset_for("t");
        let start = 1000 - off; // exactly a boundary for "t"
        let mut w = RekeyWindow::new(sched, "t", start, 4);
        assert_eq!(w.pending(), 0);
        assert!(!w.due(start));
        assert!(!w.due(start + 999));
        // Boundary passed → due regardless of the pending count.
        assert!(w.due(start + 1000));
        // High-water mark → due before the boundary.
        w.note(4);
        assert!(w.due(start));
    }

    #[test]
    fn window_advance_always_ratchets() {
        let sched = EpochSchedule::new(1000);
        let mut w = RekeyWindow::new(sched, "t", 0, 2);
        let e0 = w.epoch();
        w.note(2);
        // Early flush (clock still inside the epoch): still moves ahead.
        let e1 = w.advance(0);
        assert_eq!(e1, e0.next());
        assert_eq!(w.pending(), 0);
        // Boundary flush jumps to the wall-clock epoch.
        let e2 = w.advance(10_000);
        assert!(e2 > e1);
    }
}
