//! Matching fast-path benchmarks: the counting `MatchIndex` against the
//! linear filter scan, at subscription-table sizes from 100 to 100 000.
//!
//! The workload models a realistic broker: subscriptions spread over 64
//! topics, each with a numeric range constraint; events hit one topic
//! with one numeric attribute. `matching_scaling` (a bin target) runs
//! the same comparison and emits machine-readable `BENCH_matching.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psguard_model::{Constraint, Event, Filter, IntRange, Op};
use psguard_siena::{Peer, SubscriptionTable};

const TOPICS: usize = 64;

fn build_table(subscriptions: usize) -> SubscriptionTable<Filter> {
    let mut table = SubscriptionTable::new();
    for i in 0..subscriptions {
        let lo = (i % 50) as i64;
        let filter = Filter::for_topic(format!("topic{:02}", i % TOPICS)).with(Constraint::new(
            "x",
            Op::InRange(IntRange::new(lo, lo + 30).expect("valid range")),
        ));
        table.insert(Peer::Local(i as u32), filter);
    }
    table
}

fn events() -> Vec<Event> {
    (0..TOPICS)
        .map(|t| {
            Event::builder(format!("topic{:02}", t))
                .attr("x", (t % 60) as i64)
                .build()
        })
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let evs = events();
    let mut group = c.benchmark_group("matching");
    for n in [100usize, 1_000, 10_000, 100_000] {
        let mut table = build_table(n);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| {
                i = (i + 1) % evs.len();
                black_box(table.matching_peers(black_box(&evs[i])))
            })
        });
        // The linear reference gets slow past 10k; skip the largest size
        // to keep bench wall time sane (the scaling bin covers it).
        if n <= 10_000 {
            let mut j = 0usize;
            group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
                b.iter(|| {
                    j = (j + 1) % evs.len();
                    black_box(table.matching_peers_linear(black_box(&evs[j])))
                })
            });
        }
    }
    group.finish();
}

fn bench_insert_with_duplicates(c: &mut Criterion) {
    // Duplicate-heavy subscribe churn: the hash short-circuit turns the
    // old O(n) duplicate scan into a lookup.
    let subs: Vec<Filter> = (0..4_096)
        .map(|i| Filter::for_topic(format!("t{}", i % 32)))
        .collect();
    c.bench_function("table_insert_4096_dup_heavy", |b| {
        b.iter(|| {
            let mut table: SubscriptionTable<Filter> = SubscriptionTable::new();
            for (i, f) in subs.iter().enumerate() {
                table.insert(Peer::Local((i % 64) as u32), f.clone());
            }
            black_box(table.len())
        })
    });
}

criterion_group!(benches, bench_matching, bench_insert_with_duplicates);
criterion_main!(benches);
