//! Microbenchmarks of the cryptographic primitives — the per-operation
//! costs that Tables 1–2 and Figure 5 are built from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use psguard_crypto::{
    cbc_decrypt, cbc_encrypt, hmac_sha1, prf, prf_verify, Aes128, DeriveKey, Md5, Sha1,
};

fn bench_hashes(c: &mut Criterion) {
    let data = [0xabu8; 64];
    c.bench_function("sha1_64B", |b| b.iter(|| Sha1::digest(black_box(&data))));
    c.bench_function("md5_64B", |b| b.iter(|| Md5::digest(black_box(&data))));
    c.bench_function("hmac_sha1_64B", |b| {
        b.iter(|| hmac_sha1(black_box(b"key"), black_box(&data)))
    });
}

fn bench_key_derivation_step(c: &mut Criterion) {
    let key = DeriveKey::from_bytes(b"node");
    c.bench_function("child_derivation_H", |b| {
        b.iter(|| black_box(&key).child(1))
    });
    c.bench_function("kh_root_derivation", |b| {
        b.iter(|| black_box(&key).kh(b"age"))
    });
}

fn bench_aes(c: &mut Criterion) {
    let cipher = Aes128::new(&[7u8; 16]);
    let mut block = [0u8; 16];
    c.bench_function("aes128_block", |b| {
        b.iter(|| cipher.encrypt_block(black_box(&mut block)))
    });
    let iv = [0u8; 16];
    let payload = vec![0u8; 256];
    c.bench_function("aes128_cbc_encrypt_256B", |b| {
        b.iter(|| cbc_encrypt(&cipher, &iv, black_box(&payload)))
    });
    let ct = cbc_encrypt(&cipher, &iv, &payload);
    c.bench_function("aes128_cbc_decrypt_256B", |b| {
        b.iter(|| cbc_decrypt(&cipher, &iv, black_box(&ct)).expect("valid"))
    });
}

fn bench_tokenization(c: &mut Criterion) {
    let token = prf(b"master", b"topic");
    let tag = prf(token.as_bytes(), b"nonce-bytes-0123");
    c.bench_function("token_match_prf_verify", |b| {
        b.iter(|| prf_verify(black_box(&token), black_box(b"nonce-bytes-0123"), &tag))
    });
}

criterion_group!(
    benches,
    bench_hashes,
    bench_key_derivation_step,
    bench_aes,
    bench_tokenization
);
criterion_main!(benches);
