//! Baseline (subscriber-group) benchmarks: join cost growth with the
//! active population, direct vs LKH rekeying — the microbench view of
//! Figures 3–5's macro trends.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psguard_groupkey::{LkhTree, RekeyStrategy, SubscriberGroupManager};
use psguard_model::IntRange;

fn bench_join_cost_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_join_after_n");
    for n in [8u64, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut mgr = SubscriberGroupManager::new(
                        IntRange::new(0, 1023).expect("valid"),
                        RekeyStrategy::Direct,
                        b"bench",
                    );
                    for s in 0..n {
                        mgr.join(s, IntRange::new(200, 800).expect("valid"));
                    }
                    mgr
                },
                |mut mgr| black_box(mgr.join(u64::MAX, IntRange::new(300, 700).expect("valid"))),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_lkh_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("rekey_strategy");
    for (label, strategy) in [
        ("direct", RekeyStrategy::Direct),
        ("lkh", RekeyStrategy::Lkh),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut mgr = SubscriberGroupManager::new(
                    IntRange::new(0, 255).expect("valid"),
                    strategy,
                    b"bench",
                );
                let mut msgs = 0u64;
                for s in 0..64u64 {
                    msgs += mgr
                        .join(s, IntRange::new(10, 240).expect("valid"))
                        .total_messages();
                }
                black_box(msgs)
            })
        });
    }
    group.finish();
}

fn bench_lkh_tree_ops(c: &mut Criterion) {
    c.bench_function("lkh_join_at_1024", |b| {
        b.iter_batched(
            || {
                let mut tree = LkhTree::new(b"bench");
                for m in 0..1024 {
                    tree.join(m);
                }
                tree
            },
            |mut tree| black_box(tree.join(u64::MAX)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_join_cost_growth,
    bench_lkh_vs_direct,
    bench_lkh_tree_ops
);
criterion_main!(benches);
