//! Broker-substrate benchmarks: matching throughput, the covering
//! optimization ablation, and the wire codec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psguard_model::{Constraint, Event, Filter, IntRange, Op};
use psguard_siena::{Broker, Peer, SubscriptionTable, Wire};

fn filters(n: usize) -> Vec<Filter> {
    (0..n)
        .map(|i| {
            Filter::for_topic(format!("topic{:02}", i % 16)).with(Constraint::new(
                "x",
                Op::InRange(IntRange::new((i % 50) as i64, (i % 50 + 30) as i64).expect("valid")),
            ))
        })
        .collect()
}

fn bench_broker_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_publish");
    for n in [16usize, 64, 256] {
        let mut broker: Broker<Filter> = Broker::new(true);
        for (i, f) in filters(n).into_iter().enumerate() {
            broker.subscribe(Peer::Local(i as u32), f);
        }
        let event = Event::builder("topic05").attr("x", 20i64).build();
        group.bench_with_input(BenchmarkId::from_parameter(n), &event, |b, e| {
            b.iter(|| broker.publish(Peer::Parent, black_box(e.clone())))
        });
    }
    group.finish();
}

/// Covering ablation: how much upstream table growth the covering test
/// suppresses when many subscribers share interests.
fn bench_covering_ablation(c: &mut Criterion) {
    // 256 subscriptions over 16 distinct filters.
    let subs: Vec<Filter> = (0..256)
        .map(|i| Filter::for_topic(format!("t{}", i % 16)))
        .collect();
    c.bench_function("table_insert_with_covering_256", |b| {
        b.iter(|| {
            let mut table: SubscriptionTable<Filter> = SubscriptionTable::new();
            let mut forwarded = 0u32;
            for (i, f) in subs.iter().enumerate() {
                if table.insert(Peer::Local(i as u32), f.clone()) {
                    forwarded += 1;
                }
            }
            black_box(forwarded) // 16 with covering; 256 without
        })
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let event = Event::builder("stocks")
        .publisher("nasdaq")
        .attr("price", 95i64)
        .attr("sym", "GOOG")
        .payload(vec![0u8; 256])
        .build();
    c.bench_function("wire_encode_event_256B", |b| {
        b.iter(|| black_box(&event).to_bytes())
    });
    let bytes = event.to_bytes();
    c.bench_function("wire_decode_event_256B", |b| {
        b.iter(|| Event::from_bytes(black_box(&bytes)).expect("valid"))
    });
}

criterion_group!(
    benches,
    bench_broker_publish,
    bench_covering_ablation,
    bench_wire_codec
);
criterion_main!(benches);
