//! Key-management benchmarks: grant generation and event-key derivation
//! across range sizes, the arity ablation (the paper proves binary trees
//! optimal), and the key cache.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use psguard_crypto::DeriveKey;
use psguard_keys::{
    AuthKey, EpochId, Kdc, KeyCache, KeyScope, Ktid, Nakt, NaktKeySpace, OpCounter, Schema,
    TopicScope,
};
use psguard_model::{Constraint, Event, Filter, IntRange, Op};

fn bench_grant_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdc_grant");
    for exp in [8u32, 12, 16] {
        let r = 1i64 << exp;
        let schema = Schema::builder()
            .numeric("num", IntRange::new(0, r - 1).expect("valid"), 1)
            .expect("valid nakt")
            .build();
        let kdc = Kdc::from_seed(b"bench");
        let filter = Filter::for_topic("w").with(Constraint::new(
            "num",
            Op::InRange(IntRange::new(1, r - 2).expect("valid")),
        ));
        group.bench_with_input(
            BenchmarkId::new("worst_case_range", format!("R=2^{exp}")),
            &filter,
            |b, f| {
                b.iter(|| {
                    let mut ops = OpCounter::new();
                    kdc.grant(
                        &schema,
                        black_box(f),
                        EpochId(0),
                        &TopicScope::Shared,
                        &mut ops,
                    )
                    .expect("grantable")
                })
            },
        );
    }
    group.finish();
}

fn bench_event_key_derivation(c: &mut Criterion) {
    let schema = Schema::builder()
        .numeric("num", IntRange::new(0, 65_535).expect("valid"), 1)
        .expect("valid nakt")
        .build();
    let kdc = Kdc::from_seed(b"bench");
    let filter = Filter::for_topic("w").with(Constraint::new(
        "num",
        Op::InRange(IntRange::new(0, 32_767).expect("valid")),
    ));
    let mut ops = OpCounter::new();
    let grant = kdc
        .grant(&schema, &filter, EpochId(0), &TopicScope::Shared, &mut ops)
        .expect("grantable");
    let event = Event::builder("w").attr("num", 12_345i64).build();
    let addrs = psguard_keys::event_key_addresses(&schema, &event).expect("valid");
    c.bench_function("subscriber_event_key_derivation_R64k", |b| {
        b.iter(|| {
            let mut ops = OpCounter::new();
            grant
                .event_key(&schema, black_box(&addrs), &mut ops)
                .expect("authorized")
        })
    });
}

/// The arity ablation: a = 2 minimizes authorization keys per grant
/// (§3.1's optimality claim), even though deeper trees cost more hashes
/// per derivation step count.
fn bench_arity_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("nakt_arity");
    for arity in [2u8, 4, 8, 16] {
        let nakt =
            Nakt::with_arity(IntRange::new(0, 4095).expect("valid"), 1, arity).expect("valid");
        let q = IntRange::new(100, 3000).expect("valid");
        // Report the key count alongside timing via the bench id.
        let keys = nakt.canonical_cover(&q).expect("in range").len();
        group.bench_function(
            BenchmarkId::new("cover", format!("a={arity} keys={keys}")),
            |b| b.iter(|| nakt.canonical_cover(black_box(&q)).expect("in range")),
        );
    }
    group.finish();
}

fn bench_key_cache(c: &mut Criterion) {
    let nakt = Nakt::binary(IntRange::new(0, 65_535).expect("valid"), 1).expect("valid");
    let topic = DeriveKey::from_bytes(b"K(w)");
    let space = NaktKeySpace::new(nakt.clone(), &topic, b"num");
    let mut ops = OpCounter::new();
    let auth = AuthKey {
        scope: KeyScope::Numeric {
            attr: "num".into(),
            ktid: Ktid::root(),
        },
        key: space.root_key().clone(),
        epoch: EpochId(0),
    };
    // A locality stream of adjacent leaves.
    let targets: Vec<Ktid> = (10_000..10_064)
        .map(|v| nakt.ktid_of_value(v).expect("in range"))
        .collect();

    c.bench_function("derive_64_events_no_cache", |b| {
        b.iter(|| {
            let mut ops = OpCounter::new();
            for t in &targets {
                NaktKeySpace::derive_descendant(&auth.key, &Ktid::root(), t, &mut ops)
                    .expect("derivable");
            }
        })
    });
    c.bench_function("derive_64_events_with_cache", |b| {
        b.iter(|| {
            let mut cache = KeyCache::new(64 * 1024);
            let mut ops = OpCounter::new();
            for t in &targets {
                cache
                    .derive_numeric_cached(&auth, t, &mut ops)
                    .expect("derivable");
            }
        })
    });
    let _ = &mut ops;
}

criterion_group!(
    benches,
    bench_grant_generation,
    bench_event_key_derivation,
    bench_arity_ablation,
    bench_key_cache
);
criterion_main!(benches);
