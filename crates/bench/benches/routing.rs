//! Secure-routing benchmarks: tokenized matching and multi-path
//! machinery.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use psguard_crypto::prf;
use psguard_routing::{
    simulate, zipf_frequencies, AttackSimConfig, MultipathTree, RoutableTag, SecureEvent,
    SecureFilter,
};
use psguard_siena::FilterSemantics;

fn bench_secure_match(c: &mut Criterion) {
    let token = prf(b"master", b"topic");
    let filter = SecureFilter {
        token,
        constraints: vec![psguard_model::Constraint::new(
            "age",
            psguard_model::Op::Ge(10),
        )],
    };
    let event = SecureEvent {
        tag: RoutableTag::with_nonce(&token, [7u8; 16]),
        event: psguard_model::Event::builder("")
            .attr("age", 42i64)
            .payload(vec![0u8; 256])
            .build(),
        iv: [0u8; 16],
        epoch: 0,
        mac: [0u8; 20],
    };
    c.bench_function("secure_filter_match_hit", |b| {
        b.iter(|| FilterSemantics::matches(black_box(&filter), black_box(&event)))
    });
    let other = SecureFilter {
        token: prf(b"master", b"other"),
        constraints: vec![],
    };
    c.bench_function("secure_filter_match_miss", |b| {
        b.iter(|| FilterSemantics::matches(black_box(&other), black_box(&event)))
    });
}

fn bench_multipath(c: &mut Criterion) {
    let tree = MultipathTree::new(10, 3).expect("valid");
    let leaf = tree.leaf_digits(777);
    c.bench_function("variant_path_depth3", |b| {
        b.iter(|| tree.variant_path(black_box(&leaf), 7).expect("valid"))
    });
    let freqs = zipf_frequencies(128, 0.9);
    c.bench_function("paths_per_token_128", |b| {
        b.iter(|| MultipathTree::paths_per_token(black_box(&freqs), 10))
    });
}

fn bench_attack_sim(c: &mut Criterion) {
    let config = AttackSimConfig {
        arity: 8,
        depth: 3,
        token_freqs: zipf_frequencies(64, 0.9),
        ind_max: 5,
        events: 10_000,
        seed: 1,
    };
    c.bench_function("attack_sim_10k_events", |b| {
        b.iter(|| simulate(black_box(&config)).expect("valid"))
    });
    let obs = simulate(&config).expect("valid");
    c.bench_function("collusive_entropy_estimate", |b| {
        b.iter(|| obs.collusive_s_app(black_box(0.2), 3))
    });
}

criterion_group!(
    benches,
    bench_secure_match,
    bench_multipath,
    bench_attack_sim
);
criterion_main!(benches);
