//! Reduced-N oracle check for the `e2e_scaling` macro-bench path: every
//! scenario kind replayed event-by-event through the secure
//! `ShardedPipeline` (the exact trace→pipeline mapping the bench uses,
//! churn and revocations included), with each event's delivered peer
//! set compared against a brute-force scan of the live subscriptions.

use std::collections::HashSet;

use psguard_analysis::{ChurnKind, ScenarioConfig, ScenarioKind, ScenarioTrace, Subscription};
use psguard_crypto::{prf, Token};
use psguard_model::{Constraint, Event, IntRange, Op};
use psguard_routing::{RoutableTag, SecureEvent, SecureFilter};
use psguard_siena::{Peer, ShardedPipeline};

fn topic_token(t: u32) -> Token {
    prf(b"e2e-smoke", format!("topic{t:03}").as_bytes())
}

fn secure_filter(s: &Subscription) -> SecureFilter {
    SecureFilter {
        token: topic_token(s.topic),
        constraints: vec![Constraint::new(
            "x",
            Op::InRange(IntRange::new(s.lo, s.hi).expect("trace ranges ordered")),
        )],
    }
}

fn secure_event(topic: u32, value: i64, seq: u64) -> SecureEvent {
    let mut nonce = [0u8; 16];
    nonce[..8].copy_from_slice(&seq.to_le_bytes());
    SecureEvent {
        tag: RoutableTag::with_nonce(&topic_token(topic), nonce),
        event: Event::builder("").attr("x", value).build(),
        iv: [0u8; 16],
        epoch: 0,
        mac: [0u8; 20],
    }
}

#[test]
fn every_scenario_matches_the_brute_force_oracle() {
    for (i, kind) in ScenarioKind::ALL.into_iter().enumerate() {
        let cfg = ScenarioConfig {
            kind,
            topics: 8,
            zipf_s: 1.1,
            subscribers: 24,
            events: 96,
            value_range: 64,
            sub_width: 32,
            seed: 0x51A + i as u64,
        };
        let trace = ScenarioTrace::generate(&cfg);
        let label = kind.name();

        let mut pipeline: ShardedPipeline<SecureFilter> =
            ShardedPipeline::with_capacity(true, 3, trace.initial.len());
        let mut live: Vec<Subscription> = Vec::new();
        for s in &trace.initial {
            pipeline.subscribe(Peer::Local(s.client), secure_filter(s));
            live.push(*s);
        }

        let mut churn = trace.churn.iter().peekable();
        let mut revs = trace.revocations.iter().peekable();
        let mut scenario_deliveries = 0usize;
        for (at, p) in trace.publishes.iter().enumerate() {
            while let Some(c) = churn.peek().filter(|c| c.at_event <= at) {
                match c.kind {
                    ChurnKind::Join => {
                        pipeline.subscribe(Peer::Local(c.sub.client), secure_filter(&c.sub));
                        live.push(c.sub);
                    }
                    ChurnKind::Leave => {
                        assert!(
                            pipeline.unsubscribe(Peer::Local(c.sub.client), &secure_filter(&c.sub)),
                            "{label}: leave of an absent subscription"
                        );
                        let pos = live
                            .iter()
                            .position(|s| s == &c.sub)
                            .expect("oracle tracks every live sub");
                        live.swap_remove(pos);
                    }
                }
                churn.next();
            }
            while let Some(r) = revs.peek().filter(|r| r.at_event <= at) {
                live.retain(|s| {
                    if s.client == r.client {
                        assert!(
                            pipeline.unsubscribe(Peer::Local(s.client), &secure_filter(s)),
                            "{label}: revocation of an absent subscription"
                        );
                        false
                    } else {
                        true
                    }
                });
                revs.next();
            }

            let event = secure_event(p.topic, p.value, at as u64);
            let deliveries = pipeline.publish_batch(Peer::Parent, std::slice::from_ref(&event));
            let mut got: Vec<Peer> = deliveries.for_event(0).to_vec();
            got.sort_unstable();

            let mut expected: Vec<Peer> = live
                .iter()
                .filter(|s| s.topic == p.topic && (s.lo..=s.hi).contains(&p.value))
                .map(|s| Peer::Local(s.client))
                .collect::<HashSet<_>>()
                .into_iter()
                .collect();
            expected.sort_unstable();
            assert_eq!(
                got, expected,
                "{label}: delivered set diverges from oracle at event {at} ({p:?})"
            );
            scenario_deliveries += got.len();
        }
        assert!(
            scenario_deliveries > 0,
            "{label}: degenerate scenario (no deliveries at all)"
        );
    }
}
