//! Shared measurement and JSON-emission helpers for the scaling
//! benches (`matching_scaling`, `pipeline_scaling`, `e2e_scaling`).
//!
//! Each bin used to carry its own copy of the wall-clock sampling loop
//! and a hand-rolled `writeln!` JSON encoder; tweaks to one (like the
//! 200 ms sampling floor that fixed run-to-run jitter at 100k
//! subscriptions) never reached the others. This module is the single
//! copy: [`measure`] for events-per-second sampling and [`Json`] for
//! the `BENCH_*.json` files the CI publishes as artifacts.

use std::fmt::Write as _;
use std::time::Instant;

/// One measured cell: rate per second plus how many iterations the
/// sampling window actually absorbed (landing the count in the JSON
/// lets a reader judge each number's stability).
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Iterations (or passes) per second.
    pub per_sec: f64,
    /// Iterations sampled inside the timed window.
    pub iters: usize,
}

/// Samples `run` — called with the iteration number — until both
/// `min_iters` iterations and `min_ms` of wall time have elapsed,
/// after `warmup` untimed calls. Sub-50 ms windows under-sample large
/// configurations (a handful of calls per window makes BENCH numbers
/// jitter run-to-run); the scaling bins use 200 ms or more.
pub fn measure(
    warmup: usize,
    min_iters: usize,
    min_ms: u128,
    mut run: impl FnMut(usize),
) -> Measured {
    for i in 0..warmup {
        run(i);
    }
    let mut iters = 0usize;
    let start = Instant::now();
    while iters < min_iters || start.elapsed().as_millis() < min_ms {
        run(iters);
        iters += 1;
    }
    Measured {
        per_sec: iters as f64 / start.elapsed().as_secs_f64(),
        iters,
    }
}

/// A JSON value for the `BENCH_*.json` files: enough of the format to
/// replace the bins' hand-rolled string building, rendered with the
/// layout the existing files use (top-level object multi-line, one row
/// object per line inside arrays, numbers with fixed decimals).
#[derive(Debug, Clone)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An integer.
    Int(u64),
    /// A float rendered with the given number of decimals.
    Float(f64, usize),
    /// A string (escaped minimally; bench names and units only).
    Str(String),
    /// An array; elements render one per line.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds `key: value`, returning `self` for chaining. No-op (in
    /// release the same) on non-objects — the builder is only ever
    /// called on [`Json::obj`] results.
    pub fn field(mut self, key: &str, value: Json) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value));
        }
        self
    }

    /// A string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// A float with one decimal (rates).
    pub fn f1(x: f64) -> Json {
        Json::Float(x, 1)
    }

    /// A float with two decimals (speedups).
    pub fn f2(x: f64) -> Json {
        Json::Float(x, 2)
    }

    /// Renders the document: top-level object with one field per line,
    /// nested rows compact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x, d) => {
                let _ = write!(out, "{x:.d$}", d = *d);
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        _ => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, usize::MAX); // rows render compact
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if depth == usize::MAX {
                    // Compact: one line.
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        let _ = write!(out, "\"{k}\": ");
                        v.write(out, usize::MAX);
                        if i + 1 < fields.len() {
                            out.push_str(", ");
                        }
                    }
                    out.push('}');
                } else {
                    out.push_str("{\n");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        indent(out, depth + 1);
                        let _ = write!(out, "\"{k}\": ");
                        v.write(out, depth + 1);
                        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                    }
                    indent(out, depth);
                    out.push('}');
                }
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    if depth != usize::MAX {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Writes `doc` to `path` and logs the write; panicking on I/O failure
/// is correct in a bench binary (the artifact is the whole point).
pub fn write_bench_json(path: &str, doc: &Json) {
    std::fs::write(path, doc.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// Asserts a measured ratio floor with a uniform message — the CI gate
/// used by the scaling bins' full (non-smoke) modes.
pub fn assert_floor(label: &str, ratio: f64, floor: f64) {
    assert!(
        ratio >= floor,
        "{label}: expected >= {floor:.2}x, got {ratio:.2}x"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_honors_iteration_and_time_floors() {
        let mut calls = 0usize;
        let m = measure(2, 10, 0, |_| calls += 1);
        assert_eq!(m.iters, 10);
        assert_eq!(calls, 12, "2 warmup + 10 timed");
        assert!(m.per_sec > 0.0);

        let m = measure(0, 1, 20, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        // Sleep granularity overshoots 2 ms, so just check the window
        // forced more than the single required iteration.
        assert!(m.iters >= 3, "20 ms window at ~2 ms/iter: {}", m.iters);
    }

    #[test]
    fn json_renders_rows_compact_and_top_level_pretty() {
        let doc = Json::obj()
            .field("bench", Json::str("demo"))
            .field("smoke", Json::Bool(false))
            .field(
                "sizes",
                Json::Arr(vec![
                    Json::obj()
                        .field("subscriptions", Json::Int(100))
                        .field("eps", Json::f1(1234.56))
                        .field("speedup", Json::f2(2.5)),
                    Json::obj().field("subscriptions", Json::Int(1000)),
                ]),
            );
        let s = doc.render();
        assert_eq!(
            s,
            "{\n  \"bench\": \"demo\",\n  \"smoke\": false,\n  \"sizes\": [\n    \
             {\"subscriptions\": 100, \"eps\": 1234.6, \"speedup\": 2.50},\n    \
             {\"subscriptions\": 1000}\n  ]\n}\n"
        );
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(Json::str("a\"b\\c").render(), "\"a\\\"b\\\\c\"\n");
    }
}
