//! Table 5 — theoretical lower bound on the messaging-cost ratio
//! `C_subscribergroup : C_psguard` vs. subscription width `φR`
//! (NS = 10³, R = 10⁴).

use psguard_analysis::{cost_ratio_lower_bound, TextTable};

fn main() {
    let (ns, r) = (1e3, 1e4);
    println!("Table 5: Theoretical Lower Bound on cost ratio (NS = 10^3, R = 10^4)\n");

    let mut table = TextTable::new(&["phi_R", "C_subscribergroup : C_psguard"]);
    for exp in [1i32, 2, 3, 4] {
        let phi = 10f64.powi(exp);
        table.row(&[
            &format!("10^{exp}"),
            &format!("{:.2}", cost_ratio_lower_bound(ns, r, phi)),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference: 1.81, 9.04, 60.18, 451.81 — the subscriber-group");
    println!("approach costs 2–3 orders of magnitude more as ranges widen.");
}
