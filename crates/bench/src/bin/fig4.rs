//! Figure 4 — average number of keys per publisher vs. the number of
//! subscribers NS, PSGuard vs SubscriberGroup. A PSGuard publisher holds
//! one topic key per topic; a subscriber-group publisher must hold every
//! group key of every topic it publishes on.

use psguard_analysis::TextTable;
use psguard_bench::keymgmt::{run_key_management, NS_SWEEP};

fn main() {
    println!("Figure 4: Num Keys per Publisher vs NS (publisher on all 128 topics)\n");
    let mut table = TextTable::new(&[
        "NS",
        "PSGuard",
        "SubscriberGroup (subset, cap 2^12)",
        "SubscriberGroup (interval)",
        "subset ratio",
    ]);
    for ns in NS_SWEEP {
        let s = run_key_management(ns, 42);
        table.row(&[
            &format!("{ns}"),
            &format!("{:.0}", s.psguard_keys_per_pub),
            &format!("{:.0}", s.group_keys_per_pub),
            &format!("{:.0}", s.group_keys_per_pub_interval),
            &format!("{:.1}x", s.group_keys_per_pub / s.psguard_keys_per_pub),
        ]);
    }
    println!("{}", table.render());
    println!("Shape check (paper): PSGuard constant in NS; SubscriberGroup grows");
    println!("with NS (more subscribers -> more interval groups per topic).");
}
