//! Table 2 — average key-management costs vs. subscription width `φR`
//! (R = 10³, lc = 1): keys, generation µs and derivation µs for uniformly
//! random subscription ranges, model vs. measured.

use psguard_analysis::{nakt_avg_costs, summarize, TextTable};
use psguard_bench::{hash_cost_us, hashes_to_us};
use psguard_keys::{EpochId, Kdc, OpCounter, Schema, TopicScope};
use psguard_model::{Constraint, Event, Filter, IntRange, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let hash_us = hash_cost_us();
    const R: i64 = 1000;
    const TRIALS: usize = 400;
    println!("Table 2: Avg Cost (R = 10^3, lc = 1, {TRIALS} random ranges); host hash = {hash_us:.3} µs/op\n");

    let schema = Schema::builder()
        .numeric("num", IntRange::new(0, R - 1).expect("valid"), 1)
        .expect("valid nakt")
        .build();
    let kdc = Kdc::from_seed(b"table2");
    let mut rng = StdRng::seed_from_u64(2);

    let mut table = TextTable::new(&[
        "phi_R",
        "# Keys (model)",
        "# Keys (measured)",
        "Key Gen µs (model)",
        "Key Gen µs (measured)",
        "Key Derive µs (model)",
        "Key Derive µs (measured)",
    ]);

    for phi in [10i64, 100, 1000] {
        let model = nakt_avg_costs(R as f64, phi as f64);
        let mut keys = Vec::new();
        let mut gen = Vec::new();
        let mut derive = Vec::new();
        for _ in 0..TRIALS {
            let lo = rng.gen_range(0..=(R - phi).max(0));
            let hi = (lo + phi - 1).min(R - 1);
            let filter = Filter::for_topic("w").with(Constraint::new(
                "num",
                Op::InRange(IntRange::new(lo, hi).expect("valid")),
            ));
            let mut gen_ops = OpCounter::new();
            let grant = kdc
                .grant(
                    &schema,
                    &filter,
                    EpochId(0),
                    &TopicScope::Shared,
                    &mut gen_ops,
                )
                .expect("grantable");
            keys.push(grant.key_count() as f64);
            gen.push(gen_ops.total() as f64);

            // Derive the key of a random matching event.
            let v = rng.gen_range(lo..=hi);
            let addrs = psguard_keys::event_key_addresses(
                &schema,
                &Event::builder("w").attr("num", v).build(),
            )
            .expect("valid event");
            let mut d_ops = OpCounter::new();
            grant
                .event_key(&schema, &addrs, &mut d_ops)
                .expect("matching event is derivable");
            derive.push(d_ops.total() as f64);
        }
        table.row(&[
            &format!("{phi}"),
            &format!("{:.2}", model.keys),
            &format!("{:.2}", summarize(&keys).mean),
            &format!("{:.2}", hashes_to_us(model.gen_hashes, hash_us)),
            &format!("{:.2}", hashes_to_us(summarize(&gen).mean, hash_us)),
            &format!("{:.2}", hashes_to_us(model.derive_hashes, hash_us)),
            &format!("{:.2}", hashes_to_us(summarize(&derive).mean, hash_us)),
        ]);
    }

    println!("{}", table.render());
    println!("Paper reference: φR=10 → 3.32 keys, 14.20 µs gen, 3.02 µs derive;");
    println!(
        "φR=10^3 → 9.97 keys, 20.25 µs gen, 9.10 µs derive. Shape: all columns grow with log2(φR)."
    );
}
