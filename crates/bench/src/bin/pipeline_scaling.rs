//! End-to-end dissemination throughput: serial broker vs. sharded pipeline.
//!
//! Routes pools of secure (tokenized) events through tables of
//! {100, 1k, 10k, 100k} subscriptions, comparing the serial
//! `Broker::publish` loop (one cloned delivery per recipient) against
//! `ShardedPipeline::publish_batch` with {1, 2, 4, 8} shards (prepared
//! PRF probe contexts, reused scratch, clone-free `BatchDeliveries`).
//! Also microbenchmarks the PRF-verify fast path: one-shot `prf_verify`
//! (re-deriving HMAC pads per probe) vs. a reusable `PrfContext`.
//!
//! Writes machine-readable results to `BENCH_pipeline.json` in the
//! current directory. Pass `--smoke` for a seconds-long CI variant that
//! skips the throughput assertions.

use psguard_bench::support::{assert_floor, measure, write_bench_json, Json, Measured};
use psguard_crypto::{prf, prf_verify, PrfContext, Token};
use psguard_model::{Constraint, Event, Op};
use psguard_routing::{RoutableTag, SecureEvent, SecureFilter};
use psguard_siena::{Broker, Peer, ShardedPipeline};

/// Distinct topics (= live tokens each event is probed against).
const TOPICS: usize = 128;
/// Events per measured pool; larger than the probe-memo capacity so
/// repeated passes keep paying for PRF probes on both paths.
const POOL: usize = 2_048;
/// Events per `publish_batch` call.
const BATCH: usize = 256;
/// Encrypted payload bytes per event.
const PAYLOAD: usize = 1_024;

fn topic_token(t: usize) -> Token {
    prf(b"bench-master", format!("topic{t:03}").as_bytes())
}

/// `n` subscriptions spread over the topics, each with a range
/// constraint about half the events satisfy — a realistic mix of token
/// probing, predicate counting, and high fanout at large `n`.
fn subscriptions(n: usize) -> Vec<(Peer, SecureFilter)> {
    (0..n)
        .map(|i| {
            let filter = SecureFilter {
                token: topic_token(i % TOPICS),
                constraints: vec![Constraint::new("x", Op::Ge((i % 50) as i64))],
            };
            (Peer::Local(i as u32), filter)
        })
        .collect()
}

fn event_pool() -> Vec<SecureEvent> {
    (0..POOL)
        .map(|i| {
            let mut nonce = [0u8; 16];
            nonce[..8].copy_from_slice(&(i as u64).to_le_bytes());
            SecureEvent {
                tag: RoutableTag::with_nonce(&topic_token(i % TOPICS), nonce),
                event: Event::builder("")
                    .attr("x", (i % 50) as i64)
                    .payload(vec![0xAB; PAYLOAD])
                    .build(),
                iv: [0u8; 16],
                epoch: 0,
                mac: [0u8; 20],
            }
        })
        .collect()
}

/// Events/second over whole pool passes: at least `min_passes` passes
/// and `min_ms` of wall time per cell (one warm-up pass first).
fn measure_pool(min_passes: usize, min_ms: u128, mut run_pass: impl FnMut()) -> Measured {
    let m = measure(1, min_passes, min_ms, |_| run_pass());
    Measured {
        per_sec: m.per_sec * POOL as f64,
        iters: m.iters,
    }
}

struct ShardCell {
    shards: usize,
    eps: f64,
    passes: usize,
    batch_work: u64,
}

struct Row {
    subscriptions: usize,
    serial_eps: f64,
    serial_passes: usize,
    cells: Vec<ShardCell>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Full-mode cells must sample several whole pool passes: a cell that
    // crosses the wall-time floor after a single pass reports whatever
    // scheduling noise that one pass absorbed (observed as a 1.42x
    // outlier between 2.1x neighbors at 10k subscriptions).
    let (sizes, shard_counts, min_passes, min_ms): (&[usize], &[usize], usize, u128) = if smoke {
        (&[100, 1_000], &[1, 2], 1, 10)
    } else {
        (&[100, 1_000, 10_000, 100_000], &[1, 2, 4, 8], 4, 600)
    };

    let pool = event_pool();
    let mut rows = Vec::new();
    for &n in sizes {
        let subs = subscriptions(n);

        let mut broker: Broker<SecureFilter> = Broker::new(true);
        for (peer, filter) in &subs {
            broker.subscribe(*peer, filter.clone());
        }
        let serial = measure_pool(min_passes, min_ms, || {
            for e in &pool {
                std::hint::black_box(broker.publish(Peer::Parent, e.clone()));
            }
        });
        drop(broker);

        let mut cells = Vec::new();
        for &shards in shard_counts {
            let mut pipeline: ShardedPipeline<SecureFilter> =
                ShardedPipeline::with_capacity(true, shards, n);
            for (peer, filter) in &subs {
                pipeline.subscribe(*peer, filter.clone());
            }
            let m = measure_pool(min_passes, min_ms, || {
                for batch in pool.chunks(BATCH) {
                    std::hint::black_box(pipeline.publish_batch(Peer::Parent, batch));
                }
            });
            let batch_work = pipeline.last_batch_work();
            println!(
                "n={n:>6}  shards={shards}  pipeline {:>12.0} ev/s ({} passes)  speedup {:>6.2}x",
                m.per_sec,
                m.iters,
                m.per_sec / serial.per_sec
            );
            cells.push(ShardCell {
                shards,
                eps: m.per_sec,
                passes: m.iters,
                batch_work,
            });
        }
        println!(
            "n={n:>6}  serial   {:>12.0} ev/s ({} passes)",
            serial.per_sec, serial.iters
        );
        rows.push(Row {
            subscriptions: n,
            serial_eps: serial.per_sec,
            serial_passes: serial.iters,
            cells,
        });
    }

    // PRF-verify microbench: the per-probe cost with and without the
    // reusable keyed context, single-threaded.
    let token = topic_token(0);
    let ctx = PrfContext::for_token(&token);
    let probes: Vec<([u8; 16], Token)> = (0..1_024u64)
        .map(|i| {
            let mut nonce = [0u8; 16];
            nonce[..8].copy_from_slice(&i.to_le_bytes());
            let tag = prf(token.as_bytes(), &nonce);
            (nonce, tag)
        })
        .collect();
    let oneshot = measure(1, 8, min_ms, |_| {
        for (nonce, tag) in &probes {
            std::hint::black_box(prf_verify(&token, nonce, tag));
        }
    });
    let oneshot_vps = oneshot.per_sec * probes.len() as f64;
    let context = measure(1, 8, min_ms, |_| {
        for (nonce, tag) in &probes {
            std::hint::black_box(ctx.verify(nonce, tag));
        }
    });
    let context_vps = context.per_sec * probes.len() as f64;
    let prf_speedup = context_vps / oneshot_vps;
    println!(
        "prf-verify  one-shot {oneshot_vps:>12.0} /s  context {context_vps:>12.0} /s  speedup {prf_speedup:.2}x"
    );

    let doc = Json::obj()
        .field("bench", Json::str("pipeline_scaling"))
        .field("unit", Json::str("events_per_second"))
        .field("topics", Json::Int(TOPICS as u64))
        .field("pool", Json::Int(POOL as u64))
        .field("batch", Json::Int(BATCH as u64))
        .field("payload_bytes", Json::Int(PAYLOAD as u64))
        .field("smoke", Json::Bool(smoke))
        .field(
            "prf_context",
            Json::obj()
                .field("oneshot_vps", Json::f1(oneshot_vps))
                .field("oneshot_passes", Json::Int(oneshot.iters as u64))
                .field("context_vps", Json::f1(context_vps))
                .field("context_passes", Json::Int(context.iters as u64))
                .field("speedup", Json::f2(prf_speedup)),
        )
        .field(
            "sizes",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("subscriptions", Json::Int(r.subscriptions as u64))
                            .field("serial_eps", Json::f1(r.serial_eps))
                            .field("serial_passes", Json::Int(r.serial_passes as u64))
                            .field(
                                "shards",
                                Json::Arr(
                                    r.cells
                                        .iter()
                                        .map(|c| {
                                            Json::obj()
                                                .field("shards", Json::Int(c.shards as u64))
                                                .field("eps", Json::f1(c.eps))
                                                .field("passes", Json::Int(c.passes as u64))
                                                .field("speedup", Json::f2(c.eps / r.serial_eps))
                                                .field("batch_work", Json::Int(c.batch_work))
                                        })
                                        .collect(),
                                ),
                            )
                    })
                    .collect(),
            ),
        );
    write_bench_json("BENCH_pipeline.json", &doc);

    if smoke {
        println!("smoke mode: skipping throughput assertions");
        return;
    }
    let at_100k = rows
        .iter()
        .find(|r| r.subscriptions == 100_000)
        .expect("100k row");
    // Which shard count wins is machine-dependent (on a single-core box
    // anything past one shard is oversharding), so the floor applies to
    // the best cell, not a pinned shard count.
    let speedup = at_100k
        .cells
        .iter()
        .map(|c| c.eps / at_100k.serial_eps)
        .fold(0.0f64, f64::max);
    assert_floor(
        "pipeline (best shard count) vs serial broker at 100k",
        speedup,
        3.0,
    );
    assert_floor("PrfContext vs one-shot prf_verify", prf_speedup, 1.5);
}
