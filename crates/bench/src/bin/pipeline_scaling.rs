//! End-to-end dissemination throughput: serial broker vs. sharded pipeline.
//!
//! Routes pools of secure (tokenized) events through tables of
//! {100, 1k, 10k, 100k} subscriptions, comparing the serial
//! `Broker::publish` loop (one cloned delivery per recipient) against
//! `ShardedPipeline::publish_batch` with {1, 2, 4, 8} shards (prepared
//! PRF probe contexts, reused scratch, clone-free `BatchDeliveries`).
//! Also microbenchmarks the PRF-verify fast path: one-shot `prf_verify`
//! (re-deriving HMAC pads per probe) vs. a reusable `PrfContext`.
//!
//! Writes machine-readable results to `BENCH_pipeline.json` in the
//! current directory. Pass `--smoke` for a seconds-long CI variant that
//! skips the throughput assertions.

use std::fmt::Write as _;
use std::time::Instant;

use psguard_crypto::{prf, prf_verify, PrfContext, Token};
use psguard_model::{Constraint, Event, Op};
use psguard_routing::{RoutableTag, SecureEvent, SecureFilter};
use psguard_siena::{Broker, Peer, ShardedPipeline};

/// Distinct topics (= live tokens each event is probed against).
const TOPICS: usize = 128;
/// Events per measured pool; larger than the probe-memo capacity so
/// repeated passes keep paying for PRF probes on both paths.
const POOL: usize = 2_048;
/// Events per `publish_batch` call.
const BATCH: usize = 256;
/// Encrypted payload bytes per event.
const PAYLOAD: usize = 1_024;

fn topic_token(t: usize) -> Token {
    prf(b"bench-master", format!("topic{t:03}").as_bytes())
}

/// `n` subscriptions spread over the topics, each with a range
/// constraint about half the events satisfy — a realistic mix of token
/// probing, predicate counting, and high fanout at large `n`.
fn subscriptions(n: usize) -> Vec<(Peer, SecureFilter)> {
    (0..n)
        .map(|i| {
            let filter = SecureFilter {
                token: topic_token(i % TOPICS),
                constraints: vec![Constraint::new("x", Op::Ge((i % 50) as i64))],
            };
            (Peer::Local(i as u32), filter)
        })
        .collect()
}

fn event_pool() -> Vec<SecureEvent> {
    (0..POOL)
        .map(|i| {
            let mut nonce = [0u8; 16];
            nonce[..8].copy_from_slice(&(i as u64).to_le_bytes());
            SecureEvent {
                tag: RoutableTag::with_nonce(&topic_token(i % TOPICS), nonce),
                event: Event::builder("")
                    .attr("x", (i % 50) as i64)
                    .payload(vec![0xAB; PAYLOAD])
                    .build(),
                iv: [0u8; 16],
                epoch: 0,
                mac: [0u8; 20],
            }
        })
        .collect()
}

/// Events/second plus pool passes sampled: at least `min_passes` full
/// passes over the pool and `min_ms` of wall time per cell.
fn measure(mut run_pass: impl FnMut(), min_passes: usize, min_ms: u128) -> (f64, usize) {
    run_pass(); // Warm-up.
    let mut passes = 0usize;
    let start = Instant::now();
    while passes < min_passes || start.elapsed().as_millis() < min_ms {
        run_pass();
        passes += 1;
    }
    (
        (passes * POOL) as f64 / start.elapsed().as_secs_f64(),
        passes,
    )
}

struct ShardCell {
    shards: usize,
    eps: f64,
    passes: usize,
    batch_work: u64,
}

struct Row {
    subscriptions: usize,
    serial_eps: f64,
    serial_passes: usize,
    cells: Vec<ShardCell>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Full-mode cells must sample several whole pool passes: a cell that
    // crosses the wall-time floor after a single pass reports whatever
    // scheduling noise that one pass absorbed (observed as a 1.42x
    // outlier between 2.1x neighbors at 10k subscriptions).
    let (sizes, shard_counts, min_passes, min_ms): (&[usize], &[usize], usize, u128) = if smoke {
        (&[100, 1_000], &[1, 2], 1, 10)
    } else {
        (&[100, 1_000, 10_000, 100_000], &[1, 2, 4, 8], 4, 600)
    };

    let pool = event_pool();
    let mut rows = Vec::new();
    for &n in sizes {
        let subs = subscriptions(n);

        let mut broker: Broker<SecureFilter> = Broker::new(true);
        for (peer, filter) in &subs {
            broker.subscribe(*peer, filter.clone());
        }
        let (serial_eps, serial_passes) = measure(
            || {
                for e in &pool {
                    std::hint::black_box(broker.publish(Peer::Parent, e.clone()));
                }
            },
            min_passes,
            min_ms,
        );
        drop(broker);

        let mut cells = Vec::new();
        for &shards in shard_counts {
            let mut pipeline: ShardedPipeline<SecureFilter> = ShardedPipeline::new(true, shards);
            for (peer, filter) in &subs {
                pipeline.subscribe(*peer, filter.clone());
            }
            let (eps, passes) = measure(
                || {
                    for batch in pool.chunks(BATCH) {
                        std::hint::black_box(pipeline.publish_batch(Peer::Parent, batch));
                    }
                },
                min_passes,
                min_ms,
            );
            let batch_work = pipeline.last_batch_work();
            println!(
                "n={n:>6}  shards={shards}  pipeline {eps:>12.0} ev/s ({passes} passes)  speedup {:>6.2}x",
                eps / serial_eps
            );
            cells.push(ShardCell {
                shards,
                eps,
                passes,
                batch_work,
            });
        }
        println!("n={n:>6}  serial   {serial_eps:>12.0} ev/s ({serial_passes} passes)");
        rows.push(Row {
            subscriptions: n,
            serial_eps,
            serial_passes,
            cells,
        });
    }

    // PRF-verify microbench: the per-probe cost with and without the
    // reusable keyed context, single-threaded.
    let token = topic_token(0);
    let ctx = PrfContext::for_token(&token);
    let probes: Vec<([u8; 16], Token)> = (0..1_024u64)
        .map(|i| {
            let mut nonce = [0u8; 16];
            nonce[..8].copy_from_slice(&i.to_le_bytes());
            let tag = prf(token.as_bytes(), &nonce);
            (nonce, tag)
        })
        .collect();
    let scale = POOL as f64 / probes.len() as f64; // measure() reports in POOL units
    let (oneshot_vps, oneshot_passes) = measure(
        || {
            for (nonce, tag) in &probes {
                std::hint::black_box(prf_verify(&token, nonce, tag));
            }
        },
        8,
        min_ms,
    );
    let oneshot_vps = oneshot_vps / scale;
    let (context_vps, context_passes) = measure(
        || {
            for (nonce, tag) in &probes {
                std::hint::black_box(ctx.verify(nonce, tag));
            }
        },
        8,
        min_ms,
    );
    let context_vps = context_vps / scale;
    let prf_speedup = context_vps / oneshot_vps;
    println!(
        "prf-verify  one-shot {oneshot_vps:>12.0} /s  context {context_vps:>12.0} /s  speedup {prf_speedup:.2}x"
    );

    let mut json =
        String::from("{\n  \"bench\": \"pipeline_scaling\",\n  \"unit\": \"events_per_second\",\n");
    let _ = writeln!(
        json,
        "  \"topics\": {TOPICS}, \"pool\": {POOL}, \"batch\": {BATCH}, \"payload_bytes\": {PAYLOAD}, \"smoke\": {smoke},"
    );
    let _ = writeln!(
        json,
        "  \"prf_context\": {{\"oneshot_vps\": {oneshot_vps:.1}, \"oneshot_passes\": {oneshot_passes}, \"context_vps\": {context_vps:.1}, \"context_passes\": {context_passes}, \"speedup\": {prf_speedup:.2}}},"
    );
    json.push_str("  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"subscriptions\": {}, \"serial_eps\": {:.1}, \"serial_passes\": {}, \"shards\": [",
            r.subscriptions, r.serial_eps, r.serial_passes
        );
        for (j, c) in r.cells.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"shards\": {}, \"eps\": {:.1}, \"passes\": {}, \"speedup\": {:.2}, \"batch_work\": {}}}{}",
                c.shards,
                c.eps,
                c.passes,
                c.eps / r.serial_eps,
                c.batch_work,
                if j + 1 < r.cells.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(json, "]}}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");

    if smoke {
        println!("smoke mode: skipping throughput assertions");
        return;
    }
    let at_100k = rows
        .iter()
        .find(|r| r.subscriptions == 100_000)
        .expect("100k row");
    // Which shard count wins is machine-dependent (on a single-core box
    // anything past one shard is oversharding), so the floor applies to
    // the best cell, not a pinned shard count.
    let speedup = at_100k
        .cells
        .iter()
        .map(|c| c.eps / at_100k.serial_eps)
        .fold(0.0f64, f64::max);
    assert!(
        speedup >= 3.0,
        "pipeline at its best shard count must be >= 3x the serial broker \
         at 100k subscriptions, got {speedup:.2}x"
    );
    assert!(
        prf_speedup >= 1.5,
        "PrfContext must be >= 1.5x one-shot prf_verify, got {prf_speedup:.2}x"
    );
}
