//! Connection scaling: the C10K case for the readiness-driven reactor.
//!
//! Holds {64, 1k, 10k} concurrent subscriber connections against one
//! reactor broker and measures what the reactor is supposed to make
//! flat: broker-side thread count and per-connection resident memory.
//! Fan-out throughput (every publish delivered to every subscriber) is
//! compared against the retained thread-per-connection baseline at 64
//! connections — the largest point where 2-threads-per-conn is still a
//! reasonable thing to ask of the machine.
//!
//! Subscribers are hosted in child processes (`--herd` mode, spawned
//! from this same binary): with a 20k fd ceiling, 10k sockets cannot
//! have both ends in one process. The broker side — the side being
//! measured — stays in the parent. Protocol: child prints `READY` once
//! every subscription is acked, holds its connections until the parent
//! sends `GO` on stdin, then drains its share of the fan-out and prints
//! `GOT <total>`.
//!
//! Writes machine-readable results to `BENCH_connections.json` in the
//! current directory. Pass `--smoke` for a seconds-long CI variant that
//! still asserts the flat-thread and flat-memory invariants at reduced
//! scale.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::SocketAddr;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use psguard_model::{Event, Filter};
use psguard_siena::{spawn_broker_with, spawn_threaded_broker_with, ClientReactor, TcpConfig};

/// Subscriber connections per herd child (5k sockets + slack per child).
const CONNS_PER_CHILD: usize = 5_000;
/// Client reactors hosting the connections inside each child.
const REACTORS_PER_CHILD: usize = 4;
/// Payload bytes per fanned-out event.
const PAYLOAD: usize = 256;
/// Broker worker threads: fixed, and the point of the measurement.
const WORKERS: usize = 2;

fn base_config(events: usize) -> TcpConfig {
    TcpConfig {
        // Liveness is not under test, and heartbeat timing on a loaded
        // single-core box would add eviction noise to the measurement.
        heartbeat_interval: Duration::ZERO,
        // Deep enough that a full fan-out burst queues without drops:
        // entries are Arc clones of one shared frame, so depth is cheap.
        queue_capacity: events + 16,
        worker_threads: WORKERS,
        ..TcpConfig::default()
    }
}

/// "VmRSS" / "Threads" of the current process from /proc/self/status.
fn proc_status(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with(field))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn rss_bytes() -> u64 {
    proc_status("VmRSS:").unwrap_or(0) * 1024
}

fn process_threads() -> u64 {
    proc_status("Threads:").unwrap_or(0)
}

// ---------------------------------------------------------------- herd

/// Child mode: host `conns` subscriber connections, print `READY` once
/// every subscription is acked, hold until `GO` arrives on stdin, then
/// drain `events` deliveries per connection and print `GOT <total>`.
fn run_herd(addr: SocketAddr, conns: usize, events: usize) {
    let cfg = base_config(events);
    let reactors: Vec<ClientReactor<Filter>> = (0..REACTORS_PER_CHILD)
        .map(|_| ClientReactor::with_config(cfg))
        .collect();

    let mut subs = Vec::with_capacity(conns);
    for i in 0..conns {
        let r = &reactors[i % reactors.len()];
        // A connect can transiently fail while the accept backlog churns
        // under thousands of concurrent SYNs; retry briefly.
        let mut attempt = 0usize;
        let c = loop {
            match r.connect(addr) {
                Ok(c) => break c,
                Err(e) if attempt < 50 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(20));
                    let _ = e;
                }
                Err(e) => panic!("herd connect {i}/{conns}: {e}"),
            }
        };
        c.subscribe(Filter::for_topic("load")).expect("subscribe");
        subs.push(c);
    }
    // Per-connection ack fence: frames are ordered per connection, so
    // the fence acking implies the load subscription is installed.
    for c in &subs {
        c.subscribe_acked(Filter::for_topic("fence"), Duration::from_secs(120))
            .expect("fence ack");
    }
    println!("READY");

    let mut go = String::new();
    std::io::stdin().lock().read_line(&mut go).expect("read GO");
    assert_eq!(go.trim(), "GO", "unexpected parent line: {go:?}");

    let deadline = Instant::now() + Duration::from_secs(180);
    let mut total = 0u64;
    for c in &subs {
        let mut got = 0usize;
        while got < events && Instant::now() < deadline {
            let left = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            if c.recv_timeout(left).is_some() {
                got += 1;
            } else {
                break;
            }
        }
        total += got as u64;
    }
    println!("GOT {total}");
}

struct HerdChild {
    proc: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

struct Herd {
    children: Vec<HerdChild>,
}

impl Herd {
    /// Spawns enough children of this same binary to host `conns`
    /// connections, and blocks until every child prints `READY`.
    fn spawn(addr: SocketAddr, conns: usize, events: usize) -> Herd {
        let exe = std::env::current_exe().expect("current_exe");
        let n_children = conns.div_ceil(CONNS_PER_CHILD);
        let mut children = Vec::new();
        let mut left = conns;
        for _ in 0..n_children {
            let share = left.min(CONNS_PER_CHILD);
            left -= share;
            let mut proc = Command::new(&exe)
                .arg("--herd")
                .arg(addr.to_string())
                .arg(share.to_string())
                .arg(events.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn herd child");
            let stdin = proc.stdin.take().expect("child stdin");
            let stdout = BufReader::new(proc.stdout.take().expect("child stdout"));
            children.push(HerdChild {
                proc,
                stdin,
                stdout,
            });
        }
        let mut herd = Herd { children };
        herd.expect_line("READY");
        herd
    }

    /// Reads one line from every child and asserts its first word.
    /// Returns the second word of each line, parsed (0 when absent).
    fn expect_line(&mut self, word: &str) -> Vec<u64> {
        let mut vals = Vec::new();
        for child in &mut self.children {
            let mut line = String::new();
            child.stdout.read_line(&mut line).expect("child line");
            let mut parts = line.split_whitespace();
            assert_eq!(parts.next(), Some(word), "unexpected child line: {line:?}");
            vals.push(parts.next().and_then(|v| v.parse().ok()).unwrap_or(0));
        }
        vals
    }

    /// Releases every child into its drain loop.
    fn go(&mut self) {
        for child in &mut self.children {
            writeln!(child.stdin, "GO").expect("send GO");
            child.stdin.flush().expect("flush GO");
        }
    }

    fn join(mut self) {
        for child in &mut self.children {
            let status = child.proc.wait().expect("child wait");
            assert!(status.success(), "herd child failed: {status}");
        }
    }
}

// ------------------------------------------------------------- parent

struct Point {
    transport: &'static str,
    conns: usize,
    events: usize,
    deliveries: u64,
    elapsed: f64,
    fanout_eps: f64,
    threads_delta_held: u64,
    per_conn_rss: f64,
    broker_threads: usize,
    dropped_frames: u64,
}

/// One measured cell: RSS and thread deltas while `conns` subscriber
/// connections are held, then the wall time for `events` publishes to
/// reach every subscriber. `addr`/`stats` abstract over the two broker
/// transports.
fn measure_point(
    transport: &'static str,
    addr: SocketAddr,
    conns: usize,
    events: usize,
    cfg: TcpConfig,
    broker_threads: usize,
) -> Point {
    let threads0 = process_threads();
    let rss0 = rss_bytes();

    let mut herd = Herd::spawn(addr, conns, events);
    let threads_delta_held = process_threads().saturating_sub(threads0);
    let per_conn_rss = rss_bytes().saturating_sub(rss0) as f64 / conns as f64;

    // Publisher comes up only after the held measurement so its own
    // reactor thread does not pollute the broker-side delta.
    let reactor: ClientReactor<Filter> = ClientReactor::with_config(cfg);
    let publisher = reactor.connect(addr).expect("publisher connect");
    let e = Event::builder("load").payload(vec![0xCD; PAYLOAD]).build();
    herd.go();
    let t0 = Instant::now();
    for _ in 0..events {
        publisher.publish(e.clone()).expect("publish");
    }
    let got = herd.expect_line("GOT");
    let elapsed = t0.elapsed().as_secs_f64();
    herd.join();
    let deliveries: u64 = got.iter().sum();

    Point {
        transport,
        conns,
        events,
        deliveries,
        elapsed,
        fanout_eps: deliveries as f64 / elapsed,
        threads_delta_held,
        per_conn_rss,
        broker_threads,
        dropped_frames: 0,
    }
}

fn measure_reactor(conns: usize, events: usize) -> Point {
    let cfg = base_config(events);
    let broker = spawn_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn broker");
    let broker_threads = broker.thread_count();
    let mut p = measure_point("reactor", broker.addr(), conns, events, cfg, broker_threads);
    assert_eq!(
        broker.thread_count(),
        broker_threads,
        "broker thread count moved under {conns} connections"
    );
    p.dropped_frames = broker.stats().dropped_frames;
    broker.shutdown();
    p
}

fn measure_threaded(conns: usize, events: usize) -> Point {
    let cfg = base_config(events);
    let broker =
        spawn_threaded_broker_with::<Filter>("127.0.0.1:0", None, cfg).expect("spawn broker");
    let mut p = measure_point("threaded", broker.addr(), conns, events, cfg, 0);
    p.dropped_frames = broker.stats().dropped_frames;
    broker.shutdown();
    p
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--herd") {
        let addr: SocketAddr = args
            .get(2)
            .and_then(|v| v.parse().ok())
            .expect("--herd addr");
        let conns: usize = args.get(3).and_then(|v| v.parse().ok()).expect("conns");
        let events: usize = args.get(4).and_then(|v| v.parse().ok()).expect("events");
        run_herd(addr, conns, events);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");

    // Deliveries per point stay ~constant (conns × events ≈ 128k full,
    // 25k smoke) so every point does comparable total work.
    let reactor_points: &[(usize, usize)] = if smoke {
        &[(64, 400), (256, 100)]
    } else {
        &[(64, 2_000), (1_000, 128), (10_000, 16)]
    };
    let (baseline_conns, baseline_events) = (64usize, if smoke { 400 } else { 2_000 });

    let mut points = Vec::new();
    for &(conns, events) in reactor_points {
        let p = measure_reactor(conns, events);
        println!(
            "reactor   conns={:>6}  fanout {:>10.0} ev/s  threads+{}  {:>7.0} B/conn  drops={}",
            p.conns, p.fanout_eps, p.threads_delta_held, p.per_conn_rss, p.dropped_frames
        );
        points.push(p);
    }
    let baseline = measure_threaded(baseline_conns, baseline_events);
    println!(
        "threaded  conns={:>6}  fanout {:>10.0} ev/s  threads+{}  {:>7.0} B/conn  drops={}",
        baseline.conns,
        baseline.fanout_eps,
        baseline.threads_delta_held,
        baseline.per_conn_rss,
        baseline.dropped_frames
    );

    let reactor_64 = &points[0];
    let vs_threaded = reactor_64.fanout_eps / baseline.fanout_eps;
    println!(
        "reactor vs threaded at {baseline_conns} conns: {vs_threaded:.2}x \
         (threads held: +{} vs +{})",
        reactor_64.threads_delta_held, baseline.threads_delta_held
    );

    let mut json = String::from(
        "{\n  \"bench\": \"connection_scaling\",\n  \"unit\": \"deliveries_per_second\",\n",
    );
    let _ = writeln!(
        json,
        "  \"payload_bytes\": {PAYLOAD}, \"worker_threads\": {WORKERS}, \"smoke\": {smoke},"
    );
    let _ = writeln!(json, "  \"reactor_vs_threaded_64\": {vs_threaded:.3},");
    json.push_str("  \"points\": [\n");
    let all: Vec<&Point> = points.iter().chain(std::iter::once(&baseline)).collect();
    for (i, p) in all.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"transport\": \"{}\", \"conns\": {}, \"events\": {}, \"deliveries\": {}, \
             \"elapsed_s\": {:.3}, \"fanout_eps\": {:.1}, \"broker_threads\": {}, \
             \"threads_delta_held\": {}, \"per_conn_rss_bytes\": {:.1}, \"dropped_frames\": {}}}{}",
            p.transport,
            p.conns,
            p.events,
            p.deliveries,
            p.elapsed,
            p.fanout_eps,
            p.broker_threads,
            p.threads_delta_held,
            p.per_conn_rss,
            p.dropped_frames,
            if i + 1 < all.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_connections.json", &json).expect("write BENCH_connections.json");
    println!("wrote BENCH_connections.json");

    // The reactor's contract, asserted at every scale (including smoke):
    // broker-side threads never scale with connections...
    for p in &points {
        assert!(
            p.threads_delta_held <= 4,
            "broker-side threads grew by {} while holding {} connections — \
             not a fixed pool",
            p.threads_delta_held,
            p.conns
        );
    }
    // ...per-connection resident memory stays bounded and flat...
    let largest = points.last().expect("points");
    assert!(
        largest.per_conn_rss <= 64.0 * 1024.0,
        "per-connection RSS at {} conns is {:.0} B — not flat",
        largest.conns,
        largest.per_conn_rss
    );
    // ...and nothing is lost on the way.
    for p in &points {
        assert_eq!(
            p.deliveries,
            (p.conns * p.events) as u64,
            "lost deliveries at {} conns ({} broker drops)",
            p.conns,
            p.dropped_frames
        );
    }
    if smoke {
        println!("smoke mode: skipping full-scale throughput assertion");
        return;
    }
    assert!(
        vs_threaded >= 0.9,
        "reactor fan-out must at least match the threaded baseline at \
         {baseline_conns} conns, got {vs_threaded:.2}x"
    );
}
