//! Revocation-storm rekey macro-bench: batched LKH vs the retained
//! naive per-leave baseline (ROADMAP item 3).
//!
//! A `RevocationStorm` scenario trace supplies the revoked clients; the
//! storm's burst is replayed against one LKH tree two ways:
//!
//! * **naive** — `leave()` per revocation, i.e. a full dirty-path
//!   refresh after every single departure (what the pre-batching epoch
//!   flush did);
//! * **batched** — `stage_leave()` for the whole burst, then **one**
//!   `flush()` paying the *union* of the dirty root paths.
//!
//! Both land on bit-identical trees (every node key is a pure function
//! of the leaf layout — asserted here per size, proved in the
//! `batch_props` proptests); only the cost differs. Two burst shapes
//! are measured:
//!
//! * **cohort** — the storm's lowest-id clients, the clustered shape of
//!   a block revocation (an organization offboarded, a certificate
//!   batch expiring). Clustered leaves share ancestors, so the
//!   dirty-path union collapses; this is the case batched rekeying is
//!   designed for and the one the ≥5x message floor is asserted on.
//! * **scattered** — the burst in trace (arrival) order, spread across
//!   the whole id space: the adversarial worst case for path sharing.
//!   Reported for honesty; even here the union beats per-leave rekeys
//!   severalfold at every size.
//!
//! Results land in `BENCH_rekey.json`. `--smoke` runs the 10k-member
//! size only (the CI gate); the full mode adds 100k and 1M members.

use std::time::Instant;

use psguard_analysis::{ScenarioConfig, ScenarioKind, ScenarioTrace};
use psguard_bench::support::{assert_floor, write_bench_json, Json};
use psguard_groupkey::{LkhTree, RekeyReport};

/// Message floor for the clustered (cohort) burst at every size.
const FLOOR_MSG: f64 = 5.0;
/// KDC CPU floor (wall time of the rekey computation) for the cohort.
const FLOOR_CPU: f64 = 3.0;

/// One timed replay of a burst against a clone of `base`.
struct Pass {
    tree: LkhTree,
    report: RekeyReport,
    wall_ms: f64,
}

fn naive_pass(base: &LkhTree, burst: &[u64]) -> Pass {
    let mut tree = base.clone();
    let start = Instant::now();
    let mut report = RekeyReport::default();
    for &m in burst {
        if let Some(r) = tree.leave(m) {
            report.merge(&r);
        }
    }
    Pass {
        tree,
        report,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

fn batched_pass(base: &LkhTree, burst: &[u64]) -> Pass {
    let mut tree = base.clone();
    let start = Instant::now();
    for &m in burst {
        tree.stage_leave(m);
    }
    let report = tree.flush();
    Pass {
        tree,
        report,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Re-times a pass `runs` times (clone cost excluded) and keeps the
/// best wall clock; reports and trees are deterministic across runs.
fn best_of(runs: usize, mut pass: impl FnMut() -> Pass) -> Pass {
    let mut best = pass();
    for _ in 1..runs {
        let p = pass();
        if p.wall_ms < best.wall_ms {
            best.wall_ms = p.wall_ms;
        }
    }
    best
}

/// Batched and naive must land on the same tree: same root, same leaf
/// layout, same key path for a spread of surviving members.
fn assert_trees_match(members: u32, naive: &LkhTree, batched: &LkhTree) {
    assert_eq!(
        naive.group_key(),
        batched.group_key(),
        "{members}: group keys diverge"
    );
    assert_eq!(
        naive.members(),
        batched.members(),
        "{members}: leaf layouts diverge"
    );
    let step = (naive.members().len() / 64).max(1);
    for &m in naive.members().iter().step_by(step) {
        assert_eq!(
            naive.member_keys(m),
            batched.member_keys(m),
            "{members}: key path diverges for member {m}"
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[u32] = if smoke {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    println!(
        "Revocation-storm rekey bench ({}): batched vs naive per-leave LKH\n",
        if smoke { "smoke" } else { "full" }
    );

    let mut rows = Vec::new();
    for &members in sizes {
        let burst = (members as usize / 4).min(10_000);
        let trace = ScenarioTrace::generate(&ScenarioConfig {
            kind: ScenarioKind::RevocationStorm,
            topics: 16,
            zipf_s: 1.1,
            subscribers: members,
            events: 512,
            value_range: 1024,
            sub_width: 256,
            seed: 0xEC10,
        });
        assert!(
            trace.revocations.len() >= burst,
            "storm trace too small: {} < {burst}",
            trace.revocations.len()
        );
        // Cohort: the storm's lowest client ids (clustered leaves).
        let mut cohort: Vec<u64> = trace.revocations.iter().map(|r| r.client as u64).collect();
        cohort.sort_unstable();
        cohort.truncate(burst);
        // Scattered: the first `burst` revocations in arrival order.
        let scattered: Vec<u64> = trace
            .revocations
            .iter()
            .take(burst)
            .map(|r| r.client as u64)
            .collect();

        let mut base = LkhTree::new(b"rekey-storm");
        for m in 0..members as u64 {
            base.stage_join(m);
        }
        base.flush();

        let runs = if members <= 100_000 { 3 } else { 2 };
        let naive = best_of(runs, || naive_pass(&base, &cohort));
        let batched = best_of(runs, || batched_pass(&base, &cohort));
        assert_trees_match(members, &naive.tree, &batched.tree);

        let sc_naive = naive_pass(&base, &scattered);
        let sc_batched = batched_pass(&base, &scattered);
        assert_trees_match(members, &sc_naive.tree, &sc_batched.tree);

        let msg_ratio =
            naive.report.total_messages() as f64 / batched.report.total_messages().max(1) as f64;
        let cpu_ratio = naive.wall_ms / batched.wall_ms.max(1e-6);
        let sc_ratio = sc_naive.report.total_messages() as f64
            / sc_batched.report.total_messages().max(1) as f64;

        println!(
            "{members:>9} members, {burst:>6}-leave burst: cohort {:>8} -> {:>7} msgs ({msg_ratio:.1}x), \
             KDC {:.1} -> {:.1} ms ({cpu_ratio:.1}x); scattered {:>8} -> {:>7} msgs ({sc_ratio:.1}x)",
            naive.report.total_messages(),
            batched.report.total_messages(),
            naive.wall_ms,
            batched.wall_ms,
            sc_naive.report.total_messages(),
            sc_batched.report.total_messages(),
        );

        // The acceptance floors hold per size, in smoke and full mode
        // alike; scattered is reported, not gated (its ratio is
        // burst-density-dependent but must never invert).
        assert_floor(&format!("{members} cohort messages"), msg_ratio, FLOOR_MSG);
        assert_floor(&format!("{members} cohort KDC CPU"), cpu_ratio, FLOOR_CPU);
        assert!(
            sc_batched.report.total_messages() <= sc_naive.report.total_messages(),
            "{members}: scattered batch costlier than naive"
        );

        rows.push(
            Json::obj()
                .field("members", Json::Int(members as u64))
                .field("burst", Json::Int(burst as u64))
                .field("naive_messages", Json::Int(naive.report.total_messages()))
                .field(
                    "batched_messages",
                    Json::Int(batched.report.total_messages()),
                )
                .field("msg_ratio", Json::f2(msg_ratio))
                .field("naive_keys", Json::Int(naive.report.keys_generated))
                .field("batched_keys", Json::Int(batched.report.keys_generated))
                .field("naive_ms", Json::f2(naive.wall_ms))
                .field("batched_ms", Json::f2(batched.wall_ms))
                .field("cpu_ratio", Json::f2(cpu_ratio))
                .field(
                    "scattered_naive_messages",
                    Json::Int(sc_naive.report.total_messages()),
                )
                .field(
                    "scattered_batched_messages",
                    Json::Int(sc_batched.report.total_messages()),
                )
                .field("scattered_msg_ratio", Json::f2(sc_ratio)),
        );
    }

    let doc = Json::obj()
        .field("bench", Json::str("rekey_storm"))
        .field("smoke", Json::Bool(smoke))
        .field(
            "floors",
            Json::obj()
                .field("cohort_msg_ratio", Json::f1(FLOOR_MSG))
                .field("cohort_cpu_ratio", Json::f1(FLOOR_CPU)),
        )
        .field("sizes", Json::Arr(rows));
    write_bench_json("BENCH_rekey.json", &doc);
    println!("\nBatched flushes pay the union of dirty root paths; per-leave rekeys");
    println!("pay every path in full. The gap widens with burst clustering and");
    println!("tree size — the 1M-member row is the paper-scale revocation storm.");
}
