//! Ablations of PSGuard's design choices (DESIGN.md §6):
//!
//! 1. **NAKT arity** — the paper proves binary trees minimize
//!    authorization keys; measure keys per grant for a ∈ {2, 4, 8, 16}.
//! 2. **Path assignment** — `ind_t ∝ λ_t` vs. a uniform `ind_max` per
//!    token: uniform replication costs the same overlay but flattens
//!    nothing.
//! 3. **Redundant parallel routing** — the paper's fault-tolerance
//!    extension: delivery rate vs. replica count under message-dropping
//!    routers.
//! 4. **Covering optimization** — upstream subscription-table size with
//!    and without covering-based suppression.

use psguard_analysis::TextTable;
use psguard_keys::Nakt;
use psguard_model::{Filter, IntRange};
use psguard_routing::{
    apparent_entropy, entropy_bits, zipf_frequencies, MultipathTree, PathAssignment,
    RedundantRouter,
};
use psguard_siena::{Peer, SubscriptionTable};

fn main() {
    // ------------------------------------------------------------------
    // 1. Arity ablation.
    // ------------------------------------------------------------------
    println!("Ablation 1: NAKT arity (range 0..4095, subscription (100, 3000))\n");
    let q = IntRange::new(100, 3000).expect("valid");
    let mut t = TextTable::new(&[
        "arity",
        "max keys (bound)",
        "keys for (100,3000)",
        "tree depth",
    ]);
    for a in [2u8, 4, 8, 16] {
        let nakt = Nakt::with_arity(IntRange::new(0, 4095).expect("valid"), 1, a).expect("valid");
        let cover = nakt.canonical_cover(&q).expect("in range");
        t.row(&[
            &a.to_string(),
            &nakt.max_auth_keys().to_string(),
            &cover.len().to_string(),
            &nakt.depth().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Binary trees minimize the worst-case key count (§3.1's optimality\nclaim); higher arity shortens derivation paths but inflates grants.\n");

    // ------------------------------------------------------------------
    // 2. Path-assignment ablation.
    // ------------------------------------------------------------------
    println!("Ablation 2: ind_t proportional to popularity vs uniform (128 Zipf tokens)\n");
    let freqs = zipf_frequencies(128, 0.9);
    let mut t = TextTable::new(&[
        "ind_max",
        "S_app proportional",
        "S_app uniform",
        "gain (bits)",
    ]);
    for ind in [1u8, 2, 5, 10] {
        let p = apparent_entropy(&freqs, ind, PathAssignment::Proportional);
        let u = apparent_entropy(&freqs, ind, PathAssignment::Uniform);
        t.row(&[
            &ind.to_string(),
            &format!("{p:.2}"),
            &format!("{u:.2}"),
            &format!("{:.2}", p - u),
        ]);
    }
    println!("{}", t.render());
    println!(
        "True entropy = {:.2} bits. Uniform replication rescales the whole\ndistribution (no hiding); only popularity-proportional assignment\nflattens what routers observe.\n",
        entropy_bits(&freqs)
    );

    // ------------------------------------------------------------------
    // 3. Redundant parallel routing (fault-tolerance extension).
    // ------------------------------------------------------------------
    println!("Ablation 3: parallel replicas vs malicious dropping routers (ind = 5)\n");
    let tree = MultipathTree::new(5, 3).expect("valid");
    let leaf = tree.leaf_digits(42);
    let mut t = TextTable::new(&["replicas", "drop 5%", "drop 15%", "drop 30%", "bandwidth"]);
    for replicas in 1..=5u8 {
        let router = RedundantRouter::new(tree.clone(), 5, replicas).expect("valid");
        let mut cells = vec![replicas.to_string()];
        for drop in [0.05, 0.15, 0.30] {
            let r = router
                .simulate_drops(&leaf, drop, 20_000, 7)
                .expect("valid leaf");
            cells.push(format!("{:.1}%", r.delivery_rate() * 100.0));
        }
        cells.push(format!("{replicas}x"));
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        t.row(&refs);
    }
    println!("{}", t.render());
    println!("Each extra replica rides a vertex-disjoint path (Theorem 4.2), so\ndelivery probability compounds while bandwidth grows linearly.\n");

    // ------------------------------------------------------------------
    // 4. Covering ablation.
    // ------------------------------------------------------------------
    println!("Ablation 4: covering-based subscription suppression\n");
    let mut table: SubscriptionTable<Filter> = SubscriptionTable::new();
    let mut forwarded = 0u32;
    let n = 256;
    for i in 0..n {
        if table.insert(Peer::Local(i), Filter::for_topic(format!("t{}", i % 16))) {
            forwarded += 1;
        }
    }
    println!(
        "{n} subscriptions over 16 topics: {forwarded} forwarded upstream with\ncovering, {n} without — a {:.0}x reduction in upstream table growth,\nwhich is what keeps the Figure 9 overlays scalable.",
        n as f64 / forwarded as f64
    );
}
