//! Wire fast-path throughput: encode-once pooled fan-out vs. the legacy
//! per-recipient serialization.
//!
//! Models a broker fanning one published event out to 64 subscriber
//! connections (in-memory sinks, so the comparison isolates the send
//! path itself, not the kernel):
//!
//! * **baseline** — the pre-change path: one `msg.to_bytes()` per
//!   recipient, then the old two-`write_all` framing (length prefix and
//!   payload as separate writes);
//! * **fastpath** — `FramePool::encode` once per event (prefix written
//!   into the same pooled buffer), an `Arc` clone per recipient, and
//!   per-connection batches drained through one coalesced
//!   `write_frames` call, exactly as the TCP writer threads do.
//!
//! A counting `#[global_allocator]` measures heap allocations per
//! disseminated event on each path. Writes machine-readable results to
//! `BENCH_wire.json` in the current directory and asserts the fast path
//! is ≥2x frames/sec and ≥10x fewer allocations — in `--smoke` mode too
//! (CI runs fewer iterations but still fails if the ratios regress).

use std::fmt::Write as _;
use std::time::Instant;

use psguard_model::{Event, Filter};
use psguard_siena::wire::{Message, Wire};
use psguard_siena::{write_frames, FramePool, SharedFrame};

/// The allocation counter: a delegating global allocator that counts
/// every heap allocation and reallocation. Confined to this module; the
/// workspace-wide `forbid(unsafe_code)` is relaxed to `deny` for this
/// crate only to admit it (see crates/bench/Cargo.toml).
#[allow(unsafe_code)]
mod alloc_counter {
    #![deny(unsafe_op_in_unsafe_fn)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Heap allocations (+ reallocations) observed since process start.
    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    /// SAFETY: every method delegates directly to [`System`] with the
    /// caller's layout unchanged; the only addition is a relaxed counter
    /// increment, which allocates nothing.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }
}

#[global_allocator]
static GLOBAL: alloc_counter::Counting = alloc_counter::Counting;

fn allocs_now() -> u64 {
    alloc_counter::ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Fan-out degree: subscriber connections per published event.
const CONNS: usize = 64;
/// Events per measured pass.
const EVENTS: usize = 256;
/// Events per coalesced writer drain on the fast path (mirrors the TCP
/// writer's MAX_COALESCE).
const BATCH: usize = 32;
/// Payload bytes per event.
const PAYLOAD: usize = 512;

type Msg = Message<Filter, Event>;

fn event_pool() -> Vec<Msg> {
    (0..EVENTS)
        .map(|i| {
            Message::Publish(
                Event::builder("stocks")
                    .publisher("bench")
                    .attr("price", (i % 100) as i64)
                    .attr("volume", (i * 37) as i64)
                    .attr("sym", "GOOG")
                    .payload(vec![(i % 251) as u8; PAYLOAD])
                    .build(),
            )
        })
        .collect()
}

/// The legacy two-write framing `write_frame` used before the fast path:
/// length prefix and payload as separate `write_all` calls.
fn legacy_write_frame(sink: &mut Vec<u8>, payload: &[u8]) {
    use std::io::Write;
    let _ = sink.write_all(&(payload.len() as u32).to_be_bytes());
    let _ = sink.write_all(payload);
}

/// One baseline pass: per recipient, serialize the message afresh and
/// write it with the legacy two-write framing.
fn baseline_pass(pool: &[Msg], sinks: &mut [Vec<u8>]) {
    for sink in sinks.iter_mut() {
        sink.clear();
    }
    for msg in pool {
        for sink in sinks.iter_mut() {
            let bytes = msg.to_bytes();
            legacy_write_frame(sink, &bytes);
        }
    }
}

/// One fast-path pass: encode each event once into a pooled shared
/// frame, clone the `Arc` per recipient, and drain per-connection
/// batches through one coalesced vectored write each.
fn fastpath_pass(
    pool: &[Msg],
    frame_pool: &FramePool,
    sinks: &mut [Vec<u8>],
    batches: &mut [Vec<SharedFrame>],
) {
    for sink in sinks.iter_mut() {
        sink.clear();
    }
    for chunk in pool.chunks(BATCH) {
        for msg in chunk {
            let frame = frame_pool.encode(msg);
            for batch in batches.iter_mut() {
                batch.push(frame.clone());
            }
        }
        for (sink, batch) in sinks.iter_mut().zip(batches.iter_mut()) {
            write_frames(sink, batch).expect("in-memory write");
            batch.clear();
        }
    }
}

/// Fan-out frames/sec plus passes sampled: at least `min_passes` passes
/// and `min_ms` of wall time.
fn measure(mut run_pass: impl FnMut(), min_passes: usize, min_ms: u128) -> (f64, usize) {
    run_pass(); // Warm-up (grows sinks and the frame pool once).
    let mut passes = 0usize;
    let start = Instant::now();
    while passes < min_passes || start.elapsed().as_millis() < min_ms {
        run_pass();
        passes += 1;
    }
    (
        (passes * EVENTS * CONNS) as f64 / start.elapsed().as_secs_f64(),
        passes,
    )
}

/// Allocations per disseminated event over one measured pass (after the
/// caller has warmed the path up).
fn measure_allocs(mut run_pass: impl FnMut()) -> f64 {
    run_pass(); // Warm-up.
    let before = allocs_now();
    run_pass();
    (allocs_now() - before) as f64 / EVENTS as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (min_passes, min_ms): (usize, u128) = if smoke { (2, 20) } else { (8, 500) };

    let pool = event_pool();
    let frame_bytes = pool[0].to_bytes().len() + 4;

    // Pre-size sinks so steady-state passes never grow them.
    let mut sinks: Vec<Vec<u8>> = (0..CONNS)
        .map(|_| Vec::with_capacity(EVENTS * (frame_bytes + 64)))
        .collect();

    let (baseline_fps, baseline_passes) =
        measure(|| baseline_pass(&pool, &mut sinks), min_passes, min_ms);
    let baseline_allocs = measure_allocs(|| baseline_pass(&pool, &mut sinks));

    let frame_pool = FramePool::new();
    let mut batches: Vec<Vec<SharedFrame>> =
        (0..CONNS).map(|_| Vec::with_capacity(BATCH)).collect();
    let (fast_fps, fast_passes) = measure(
        || fastpath_pass(&pool, &frame_pool, &mut sinks, &mut batches),
        min_passes,
        min_ms,
    );
    let fast_allocs =
        measure_allocs(|| fastpath_pass(&pool, &frame_pool, &mut sinks, &mut batches));

    // Both passes must put identical bytes on the "socket".
    {
        baseline_pass(&pool, &mut sinks);
        let want = sinks[0].clone();
        fastpath_pass(&pool, &frame_pool, &mut sinks, &mut batches);
        assert_eq!(sinks[0], want, "fast path changed the wire format");
    }

    let speedup = fast_fps / baseline_fps;
    let alloc_ratio = baseline_allocs / fast_allocs.max(f64::MIN_POSITIVE);
    println!(
        "baseline  {baseline_fps:>12.0} frames/s ({baseline_passes} passes)  {baseline_allocs:>8.2} allocs/event"
    );
    println!(
        "fastpath  {fast_fps:>12.0} frames/s ({fast_passes} passes)  {fast_allocs:>8.2} allocs/event"
    );
    println!("speedup {speedup:.2}x   alloc ratio {alloc_ratio:.1}x   ({CONNS} connections)");

    let mut json = String::from(
        "{\n  \"bench\": \"wire_throughput\",\n  \"unit\": \"fanout_frames_per_second\",\n",
    );
    let _ = writeln!(
        json,
        "  \"connections\": {CONNS}, \"events_per_pass\": {EVENTS}, \"coalesce_batch\": {BATCH}, \"payload_bytes\": {PAYLOAD}, \"frame_bytes\": {frame_bytes}, \"smoke\": {smoke},"
    );
    let _ = writeln!(
        json,
        "  \"baseline\": {{\"fps\": {baseline_fps:.1}, \"passes\": {baseline_passes}, \"allocs_per_event\": {baseline_allocs:.2}}},"
    );
    let _ = writeln!(
        json,
        "  \"fastpath\": {{\"fps\": {fast_fps:.1}, \"passes\": {fast_passes}, \"allocs_per_event\": {fast_allocs:.2}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup\": {speedup:.2},\n  \"alloc_ratio\": {alloc_ratio:.1}\n}}"
    );
    std::fs::write("BENCH_wire.json", &json).expect("write BENCH_wire.json");
    println!("wrote BENCH_wire.json");

    // Asserted in smoke mode too: CI fails when the fast path regresses.
    assert!(
        speedup >= 2.0,
        "encode-once fan-out must be >= 2x the per-recipient path at {CONNS} connections, got {speedup:.2}x"
    );
    assert!(
        alloc_ratio >= 10.0,
        "fast path must allocate >= 10x less per disseminated event, got {alloc_ratio:.1}x \
         ({baseline_allocs:.2} vs {fast_allocs:.2})"
    );
}
