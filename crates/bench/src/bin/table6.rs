//! Table 6 — theoretical lower bound on the messaging-cost ratio
//! `C_subscribergroup : C_psguard` vs. subscriber count `NS`
//! (φR = 100, R = 10⁴).

use psguard_analysis::{cost_ratio_lower_bound, TextTable};

fn main() {
    let (r, phi) = (1e4, 1e2);
    println!("Table 6: Theoretical Lower Bound on cost ratio (phi_R = 100, R = 10^4)\n");

    let mut table = TextTable::new(&["NS", "C_subscribergroup : C_psguard"]);
    for exp in [1i32, 2, 3, 4] {
        let ns = 10f64.powi(exp);
        table.row(&[
            &format!("10^{exp}"),
            &format!("{:.2}", cost_ratio_lower_bound(ns, r, phi)),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference: 0.09, 0.90, 9.04, 90.36 — the crossover: group key");
    println!("management can win only for very small subscriber populations.");
}
