//! Figure 9 — maximum throughput (events/second) vs. the number of
//! broker nodes {0, 2, 6, 14, 30}, for plain Siena and the four PSGuard
//! attribute families. Crypto costs are measured on this host and folded
//! into the per-node service times.

use psguard_analysis::TextTable;
use psguard_bench::perf::{run_perf_series, PerfVariant, BROKER_SWEEP};

fn main() {
    println!("Figure 9: Throughput vs Number of Broker Nodes (this takes a minute)\n");
    let mut columns = Vec::new();
    for v in PerfVariant::ALL {
        eprintln!("  measuring {} …", v.label());
        columns.push((v.label(), run_perf_series(v, 9)));
    }

    let mut headers = vec!["Nodes"];
    headers.extend(columns.iter().map(|(l, _)| *l));
    let mut table = TextTable::new(&headers);
    for (i, b) in BROKER_SWEEP.iter().enumerate() {
        let mut cells = vec![format!("{b}")];
        for (_, series) in &columns {
            cells.push(format!("{:.0}", series[i].throughput_eps));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        table.row(&refs);
    }
    println!("{}", table.render());

    // Overhead summary at 30 nodes.
    let siena = columns[0].1.last().expect("sweep").throughput_eps;
    println!("PSGuard overhead vs siena at 30 nodes:");
    for (label, series) in columns.iter().skip(1) {
        let q = series.last().expect("sweep").throughput_eps;
        println!("  {label:9} {:5.1}% lower", (1.0 - q / siena) * 100.0);
    }
    println!("\nShape check (paper): throughput grows with node count; PSGuard's");
    println!("drop is <2% for topic/numeric/string. The paper's ~11% category gap");
    println!("came from Siena's per-filter ontology matcher; the counting index");
    println!("evaluates each distinct token once per event, so that per-entry");
    println!("penalty all but vanishes here (see EXPERIMENTS.md).");
}
