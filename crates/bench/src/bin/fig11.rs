//! Figure 11 — throughput and latency on the 30-broker overlay vs. the
//! subscriber key-cache size, under a temporal-locality (stock-quote)
//! stream. Caching intermediate NAKT keys recovers most of PSGuard's
//! key-derivation overhead.

use psguard_analysis::TextTable;
use psguard_bench::perf::run_cache_sweep;

fn main() {
    println!("Figure 11: Key Caching (30 broker nodes, 32 subscribers)\n");
    let points = run_cache_sweep(&[0, 1, 2, 4, 8, 16, 32, 64], 11);

    let mut table = TextTable::new(&[
        "Cache (KB)",
        "Decrypt cost (µs/event)",
        "Throughput (events/s)",
        "Latency (ms)",
    ]);
    for p in &points {
        table.row(&[
            &format!("{}", p.cache_kb),
            &format!("{}", p.decrypt_us),
            &format!("{:.0}", p.throughput_eps),
            &format!("{:.1}", p.latency_ms),
        ]);
    }
    println!("{}", table.render());
    let first = points.first().expect("sweep");
    let last = points.last().expect("sweep");
    println!(
        "cache 0 KB -> {} µs/decrypt; cache 64 KB -> {} µs/decrypt",
        first.decrypt_us, last.decrypt_us
    );
    println!("\nShape check (paper): with a 64 KB cache the derivation overhead");
    println!("nearly vanishes (throughput 10.8% -> 2.2% below Siena; latency");
    println!("5.7% -> 1.5% above), leaving AES as the dominant crypto cost.");
}
