//! Table 1 — maximum key-management costs vs. attribute range size `R`
//! (least count 1): number of authorization keys, key-generation cost and
//! key-derivation cost.
//!
//! For each `R` the harness reports both the closed form (§3.1) and an
//! empirical measurement on the real NAKT: the worst-case subscription
//! `(1, R−2)` is granted by the KDC (counting hash operations) and an
//! event key is derived from the grant. Hash counts convert to µs with
//! the measured host hash cost.

use psguard_analysis::{nakt_max_costs, TextTable};
use psguard_bench::{hash_cost_us, hashes_to_us};
use psguard_keys::{EpochId, Kdc, OpCounter, Schema, TopicScope};
use psguard_model::{Constraint, Filter, IntRange, Op};

fn main() {
    let hash_us = hash_cost_us();
    println!("Table 1: Max Cost (lc = 1); host hash cost = {hash_us:.3} µs/op\n");

    let mut table = TextTable::new(&[
        "R",
        "# Keys (model)",
        "# Keys (measured)",
        "Key Gen µs (model)",
        "Key Gen µs (measured)",
        "Key Derive µs (model)",
        "Key Derive µs (measured)",
    ]);

    for exp in [2u32, 3, 4] {
        let r = 10f64.powi(exp as i32);
        let model = nakt_max_costs(r);

        // Empirical: the worst-case range (1, R-2) over (0, R-1).
        let range = IntRange::new(0, r as i64 - 1).expect("valid");
        let schema = Schema::builder()
            .numeric("num", range, 1)
            .expect("valid nakt")
            .build();
        let kdc = Kdc::from_seed(b"table1");
        let filter = Filter::for_topic("w").with(Constraint::new(
            "num",
            Op::InRange(IntRange::new(1, r as i64 - 2).expect("valid")),
        ));
        let mut gen_ops = OpCounter::new();
        let grant = kdc
            .grant(
                &schema,
                &filter,
                EpochId(0),
                &TopicScope::Shared,
                &mut gen_ops,
            )
            .expect("grantable");

        // Worst-case derivation: probe several event values and keep the
        // most expensive one (the leaf deepest below its covering
        // authorization key).
        let mut derive_ops = OpCounter::new();
        for v in [1i64, r as i64 / 4, r as i64 / 3, r as i64 / 2, r as i64 - 2] {
            let mut ops = OpCounter::new();
            let addrs = psguard_keys::event_key_addresses(
                &schema,
                &psguard_model::Event::builder("w").attr("num", v).build(),
            )
            .expect("valid event");
            grant
                .event_key(&schema, &addrs, &mut ops)
                .expect("authorized");
            if ops.total() > derive_ops.total() {
                derive_ops = ops;
            }
        }

        table.row(&[
            &format!("10^{exp}"),
            &format!("{:.0}", model.keys.ceil()),
            &format!("{}", grant.key_count()),
            &format!("{:.2}", hashes_to_us(model.gen_hashes, hash_us)),
            &format!("{:.2}", hashes_to_us(gen_ops.total() as f64, hash_us)),
            &format!("{:.2}", hashes_to_us(model.derive_hashes, hash_us)),
            &format!("{:.2}", hashes_to_us(derive_ops.total() as f64, hash_us)),
        ]);
    }

    println!("{}", table.render());
    println!(
        "Paper reference (550 MHz P-III, ~1 µs/hash): R=10^2 → 12 keys, 23.66 µs gen, 6.37 µs derive;"
    );
    println!(
        "R=10^4 → 26 keys, 49.14 µs gen, 12.74 µs derive. Shapes: all columns grow with log2(R)."
    );
}
