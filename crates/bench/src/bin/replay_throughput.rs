//! Replay and recovery throughput for the durable event log.
//!
//! Three measurements, written to `BENCH_replay.json`:
//!
//! 1. **Recovery**: time to reopen (CRC-scan and repair) a seeded log
//!    directory, normalised to seconds per GB — the broker's
//!    crash-restart cost.
//! 2. **Replay**: events per second a reconnecting subscriber drains
//!    through the TCP transport when its cursor is a full backlog
//!    behind the high-water mark.
//! 3. **Live degradation**: fan-out throughput to a caught-up
//!    subscriber while that replay is in flight, against the same
//!    broker's replay-free baseline. The dispatcher's per-pass replay
//!    budget is supposed to bound this tax at ≤ 20%.
//!
//! Each point is best-of-3. Pass `--smoke` for the seconds-long CI
//! variant, which still asserts exactly-once replay and the
//! degradation ceiling at reduced scale.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use psguard_model::{Event, Filter};
use psguard_siena::wire::Wire;
use psguard_siena::{
    spawn_broker_durable, Cursor, EventLog, LogConfig, ResumeOutcome, TcpClient, TcpConfig,
};

/// Payload bytes per seeded backlog event.
const PAYLOAD: usize = 64;
/// Measurement repeats per point (best-of).
const ROUNDS: usize = 3;
/// The acceptance ceiling on live fan-out degradation during replay.
const MAX_DEGRADATION: f64 = 0.20;

fn tmp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "psguard-replay-bench-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn broker_log_config(dir: &PathBuf) -> LogConfig {
    LogConfig {
        segment_max_bytes: 8 << 20,
        // Retention must hold the whole backlog: an evicted prefix
        // would turn the measured replay into a shorter one.
        max_segments: 256,
        ..LogConfig::new(dir)
    }
}

/// An event on `topic` whose payload starts with its index.
fn numbered(topic: &str, i: u64) -> Event {
    let mut payload = vec![0u8; PAYLOAD];
    payload[..8].copy_from_slice(&i.to_le_bytes());
    Event::builder(topic).payload(payload).build()
}

fn index_of(e: &Event) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&e.payload()[..8]);
    u64::from_le_bytes(b)
}

/// Seeds `n` wire-encoded `backlog` events into a fresh log at `dir`,
/// returning the on-disk byte count.
fn seed_backlog(dir: &PathBuf, n: u64) -> u64 {
    let (mut log, _) = EventLog::open(broker_log_config(dir)).expect("open log for seeding");
    let mut buf = Vec::new();
    for i in 1..=n {
        buf.clear();
        numbered("backlog", i).encode(&mut buf);
        log.append(&buf).expect("seed append");
    }
    log.sync().expect("sync");
    log.stats().bytes_appended
}

/// Publishes `n` live events and waits for a caught-up subscriber to
/// drain them all, returning events per second. The drain runs in a
/// scoped thread (the subscriber moves in and back out — `TcpClient`
/// is `Send` but not `Sync`): the client event channel is shallower
/// than a full burst.
fn live_round(
    publisher: &TcpClient<Filter>,
    sub: TcpClient<Filter>,
    n: u64,
) -> (TcpClient<Filter>, f64) {
    let start = Instant::now();
    let (sub, end) = std::thread::scope(|s| {
        let drainer = s.spawn(move || {
            for _ in 0..n {
                sub.recv_timeout(Duration::from_secs(60))
                    .expect("live delivery");
            }
            (sub, Instant::now())
        });
        for i in 0..n {
            publisher.publish(numbered("live", i)).expect("publish");
        }
        drainer.join().expect("live drainer")
    });
    (sub, n as f64 / (end - start).as_secs_f64())
}

struct ReplayRound {
    live_eps: f64,
    replay_eps: f64,
    /// Whether the replay was still in flight when the live measurement
    /// finished — the regime the degradation number is about.
    overlapped: bool,
}

/// One catch-up replay of `backlog` events racing `live_n` live
/// publishes, verifying the replay is ordered and exactly-once.
fn replay_round(
    addr: SocketAddr,
    cfg: TcpConfig,
    publisher: &TcpClient<Filter>,
    live_sub: TcpClient<Filter>,
    backlog: u64,
    live_n: u64,
) -> (TcpClient<Filter>, ReplayRound) {
    let replayer: TcpClient<Filter> =
        TcpClient::connect_resuming(addr, cfg, Some(Cursor { epoch: 1, seq: 0 }))
            .expect("replayer connect");
    replayer
        .subscribe_acked(Filter::for_topic("backlog"), Duration::from_secs(10))
        .expect("replayer sub");
    let replay_start = Instant::now();
    replayer.catch_up().expect("catch up");

    let live_start = Instant::now();
    let ((replayer, replay_end), (live_sub, live_end)) = std::thread::scope(|s| {
        let replay_drain = s.spawn(move || {
            for want in 1..=backlog {
                let e = replayer
                    .recv_timeout(Duration::from_secs(120))
                    .expect("replayed event");
                assert_eq!(index_of(&e), want, "replay must be ordered, exactly-once");
            }
            (replayer, Instant::now())
        });
        let live_drain = s.spawn(move || {
            for _ in 0..live_n {
                live_sub
                    .recv_timeout(Duration::from_secs(60))
                    .expect("live delivery during replay");
            }
            (live_sub, Instant::now())
        });
        for i in 0..live_n {
            publisher.publish(numbered("live", i)).expect("publish");
        }
        (
            replay_drain.join().expect("replay drainer"),
            live_drain.join().expect("live drainer"),
        )
    });
    assert_eq!(
        replayer.recv_resume(Duration::from_secs(30)),
        Some(ResumeOutcome::ContinuedAtCursor),
        "the backlog must resolve as a fully retained gap"
    );
    assert!(
        replayer.recv_timeout(Duration::from_millis(200)).is_none(),
        "nothing may arrive after the replayed backlog"
    );

    let round = ReplayRound {
        live_eps: live_n as f64 / (live_end - live_start).as_secs_f64(),
        replay_eps: backlog as f64 / (replay_end - replay_start).as_secs_f64(),
        overlapped: replay_end >= live_end,
    };
    (live_sub, round)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (backlog, live_n, recovery_n): (u64, u64, u64) = if smoke {
        (12_000, 3_000, 12_000)
    } else {
        (120_000, 15_000, 120_000)
    };

    // ---------------------------------------------------- 1. recovery
    let rec_dir = tmp_dir("recovery");
    let rec_bytes = seed_backlog(&rec_dir, recovery_n);
    let mut open_secs = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let (_, report) = EventLog::open(broker_log_config(&rec_dir)).expect("recovery open");
        let t = start.elapsed().as_secs_f64();
        assert_eq!(
            report.records, recovery_n,
            "recovery must find every record"
        );
        assert_eq!(report.truncated_bytes, 0, "clean log: nothing to repair");
        open_secs = open_secs.min(t);
    }
    let recovery_sec_per_gb = open_secs / (rec_bytes as f64 / 1e9);
    println!(
        "recovery: {recovery_n} records / {rec_bytes} bytes scanned in {:.1} ms ({recovery_sec_per_gb:.2} s/GB)",
        open_secs * 1e3
    );
    let _ = std::fs::remove_dir_all(&rec_dir);

    let cfg = TcpConfig {
        // Liveness is not under test; eviction timing would add noise.
        heartbeat_interval: Duration::ZERO,
        // Deep enough that a full live burst queues broker-side while
        // the drainer catches up (entries are Arc clones, depth is cheap).
        queue_capacity: live_n as usize + 64,
        ..TcpConfig::default()
    };

    // ---------------------------------------------- 2. live baseline
    let base_dir = tmp_dir("baseline");
    let (broker, report) =
        spawn_broker_durable::<Filter>("127.0.0.1:0", None, cfg, broker_log_config(&base_dir))
            .expect("baseline broker");
    assert_eq!(report.records, 0);
    let publisher: TcpClient<Filter> = TcpClient::connect_with(broker.addr(), cfg).expect("pub");
    let mut live_sub: TcpClient<Filter> = TcpClient::connect_with(broker.addr(), cfg).expect("sub");
    live_sub
        .subscribe_acked(Filter::for_topic("live"), Duration::from_secs(10))
        .expect("sub ack");
    let mut baseline_eps = 0f64;
    for _ in 0..ROUNDS {
        let (sub, eps) = live_round(&publisher, live_sub, live_n);
        live_sub = sub;
        baseline_eps = baseline_eps.max(eps);
    }
    println!("live baseline: {baseline_eps:.0} events/s (no replay in flight)");
    drop(publisher);
    drop(live_sub);
    broker.shutdown();
    let _ = std::fs::remove_dir_all(&base_dir);

    // ------------------------------------- 3. replay + live-during
    let replay_dir = tmp_dir("replay");
    seed_backlog(&replay_dir, backlog);
    let (broker, report) =
        spawn_broker_durable::<Filter>("127.0.0.1:0", None, cfg, broker_log_config(&replay_dir))
            .expect("replay broker");
    assert_eq!(report.records, backlog, "broker must recover the backlog");
    let publisher: TcpClient<Filter> = TcpClient::connect_with(broker.addr(), cfg).expect("pub");
    let mut live_sub: TcpClient<Filter> = TcpClient::connect_with(broker.addr(), cfg).expect("sub");
    live_sub
        .subscribe_acked(Filter::for_topic("live"), Duration::from_secs(10))
        .expect("sub ack");

    let mut during_eps = 0f64;
    let mut replay_eps = 0f64;
    let mut overlapped = false;
    for _ in 0..ROUNDS {
        let (sub, r) = replay_round(broker.addr(), cfg, &publisher, live_sub, backlog, live_n);
        live_sub = sub;
        during_eps = during_eps.max(r.live_eps);
        replay_eps = replay_eps.max(r.replay_eps);
        overlapped |= r.overlapped;
    }
    let replayed_frames = broker.stats().replayed_frames;
    drop(publisher);
    drop(live_sub);
    broker.shutdown();
    let _ = std::fs::remove_dir_all(&replay_dir);

    let degradation = (1.0 - during_eps / baseline_eps).max(0.0);
    println!("replay: {replay_eps:.0} events/s through catch-up ({replayed_frames} frames total)");
    println!(
        "live during replay: {during_eps:.0} events/s — degradation {:.1}% (overlapped: {overlapped})",
        degradation * 100.0
    );

    let mut json = String::from("{\n  \"bench\": \"replay_throughput\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"backlog\": {backlog}, \"live_events\": {live_n}, \"recovery_records\": {recovery_n}, \"payload_bytes\": {PAYLOAD}, \"rounds\": {ROUNDS}, \"smoke\": {smoke}}},"
    );
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"bytes\": {rec_bytes}, \"open_sec\": {open_secs:.6}, \"sec_per_gb\": {recovery_sec_per_gb:.4}}},"
    );
    let _ = writeln!(
        json,
        "  \"replay\": {{\"events_per_sec\": {replay_eps:.1}, \"replayed_frames\": {replayed_frames}, \"overlapped_live\": {overlapped}}},"
    );
    let _ = writeln!(
        json,
        "  \"live\": {{\"baseline_eps\": {baseline_eps:.1}, \"during_replay_eps\": {during_eps:.1}, \"degradation\": {degradation:.4}}}"
    );
    json.push_str("}\n");
    std::fs::write("BENCH_replay.json", &json).expect("write BENCH_replay.json");
    println!("wrote BENCH_replay.json");

    // Floors: replay must move real volume, recovery must scan at disk
    // speed (not per-record syscall speed), and live fan-out keeps at
    // least 80% of its replay-free throughput.
    assert!(
        replay_eps > 2_000.0,
        "replay throughput collapsed: {replay_eps:.0} events/s"
    );
    assert!(
        recovery_sec_per_gb < 60.0,
        "recovery scan too slow: {recovery_sec_per_gb:.1} s/GB"
    );
    assert!(
        degradation <= MAX_DEGRADATION,
        "live fan-out degraded {:.1}% during replay (ceiling {:.0}%)",
        degradation * 100.0,
        MAX_DEGRADATION * 100.0
    );
    println!("all floors hold");
}
