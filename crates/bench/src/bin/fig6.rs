//! Figure 6 — secure content-based routing under a NON-COLLUSIVE
//! setting: apparent entropy Sapp vs. the maximum number of independent
//! paths (1..=5), against Smax and Sact. 128 Zipf tokens.

use psguard_analysis::TextTable;
use psguard_routing::{simulate, zipf_frequencies, AttackSimConfig};

fn main() {
    println!("Figure 6: Secure Content-Based Routing, Non-Collusive Setting\n");
    let freqs = zipf_frequencies(128, 0.9);
    let mut table = TextTable::new(&["Max Ind Paths", "Smax (bits)", "Sapp (bits)", "Sact (bits)"]);
    for ind in 1..=5u8 {
        let obs = simulate(&AttackSimConfig {
            arity: 8,
            depth: 3,
            token_freqs: freqs.clone(),
            ind_max: ind,
            events: 200_000,
            seed: 6,
        })
        .expect("valid config");
        let r = obs.report(0.0, 0);
        table.row(&[
            &format!("{ind}"),
            &format!("{:.2}", r.s_max),
            &format!("{:.2}", r.s_app),
            &format!("{:.2}", r.s_act),
        ]);
    }
    println!("{}", table.render());
    println!("Shape check (paper): Sapp rises with ind and is within ~10% of Smax");
    println!("at ind = 5, while Sact stays constant. The lower Sapp is, the more a");
    println!("curious router can infer from token frequencies.");
}
