//! Figure 3 — average number of keys per subscriber vs. the number of
//! subscribers NS, PSGuard vs SubscriberGroup (§5.2 workload: 32
//! subscriptions per subscriber over 128 Zipf topics).

use psguard_analysis::TextTable;
use psguard_bench::keymgmt::{run_key_management, NS_SWEEP};

fn main() {
    println!("Figure 3: Num Keys per Subscriber vs NS\n");
    let mut table = TextTable::new(&[
        "NS",
        "PSGuard",
        "SubscriberGroup (subset, cap 2^12)",
        "SubscriberGroup (interval)",
        "subset ratio",
    ]);
    for ns in NS_SWEEP {
        let s = run_key_management(ns, 42);
        table.row(&[
            &format!("{ns}"),
            &format!("{:.1}", s.psguard_keys_per_sub),
            &format!("{:.1}", s.group_keys_per_sub),
            &format!("{:.1}", s.group_keys_per_sub_interval),
            &format!("{:.1}x", s.group_keys_per_sub / s.psguard_keys_per_sub),
        ]);
    }
    println!("{}", table.render());
    println!("Shape check (paper): PSGuard flat and small; SubscriberGroup grows");
    println!("steeply with NS (paper measures ~40x at NS = 32, between our");
    println!("charitable interval model and the worst-case subset model).");
}
