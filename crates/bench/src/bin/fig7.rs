//! Figure 7 — secure content-based routing under a COLLUSIVE setting:
//! apparent entropy vs. the fraction of colluding routing nodes
//! (ind_max = 5, 128 Zipf tokens). Coalition draws are averaged over
//! several seeds.

use psguard_analysis::TextTable;
use psguard_routing::{simulate, zipf_frequencies, AttackSimConfig};

fn main() {
    println!("Figure 7: Secure Content-Based Routing, Collusive Setting (ind_max = 5)\n");
    let obs = simulate(&AttackSimConfig {
        arity: 8,
        depth: 3,
        token_freqs: zipf_frequencies(128, 0.9),
        ind_max: 5,
        events: 200_000,
        seed: 7,
    })
    .expect("valid config");

    let mut table = TextTable::new(&[
        "Colluding Fraction",
        "Smax (bits)",
        "Sapp (bits)",
        "Sact (bits)",
    ]);
    for f in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let s_app = if f == 0.0 {
            obs.non_collusive_s_app()
        } else {
            (0..10).map(|s| obs.collusive_s_app(f, s)).sum::<f64>() / 10.0
        };
        table.row(&[
            &format!("{f:.1}"),
            &format!("{:.2}", obs.s_max()),
            &format!("{s_app:.2}"),
            &format!("{:.2}", obs.s_act()),
        ]);
    }
    println!("{}", table.render());
    println!("Shape check (paper): entropy decreases as more routers collude; at");
    println!("full collusion the coalition recovers the true distribution (Sact).");
    println!("At realistic collusion (10-20%) Sapp remains well above Sact.");
}
