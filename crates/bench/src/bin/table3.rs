//! Table 3 — KDC costs per subscriber join: PSGuard vs SubscriberGroup
//! (analytical model of §3.2.2, parameterized like the paper's tables:
//! NS = 10³, R = 10⁴, φR = 100).

use psguard_analysis::{kdc_costs, TextTable};

fn main() {
    let (ns, r, phi) = (1e3, 1e4, 1e2);
    println!("Table 3: KDC Costs per join (NS = 10^3, R = 10^4, phi_R = 10^2)\n");

    let rows = kdc_costs(ns, r, phi);
    let mut table = TextTable::new(&[
        "Scheme",
        "Join Message (keys)",
        "Join Compute (hashes)",
        "Storage (keys)",
        "Stateless",
    ]);
    for row in &rows {
        table.row(&[
            row.scheme,
            &format!("{:.2}", row.join_messages),
            &format!("{:.2}", row.join_compute_hashes),
            &format!("{:.0}", row.storage_keys),
            if row.stateless { "Yes" } else { "No" },
        ]);
    }
    println!("{}", table.render());
    println!("Symbolic forms (paper Table 3):");
    println!("  PSGuard:         log2(phi)   H*2*log2(phi)   1        Yes");
    println!("  SubscriberGroup: 6*NS*phi/R  -               2*NS     No");
}
