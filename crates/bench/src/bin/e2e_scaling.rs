//! Million-subscriber end-to-end macro-bench: publisher encrypt →
//! `ShardedPipeline` match → wire fan-out, under adversarial workloads.
//!
//! Three sections, all landing in `BENCH_e2e.json`:
//!
//! * **sizes** — the e2e trajectory over {10k, 100k, 1M} subscriptions:
//!   each measured pass AES-CBC-encrypts the payload, PRF-tags the
//!   topic, batches events through the sharded pipeline (the PR1/PR4
//!   token fast paths: `RoutableTag` probes against prepared
//!   `PrfContext`s), then encodes each delivered event once into a
//!   pooled wire frame and charges its bytes per recipient.
//! * **scenarios** — every [`ScenarioKind`] replayed end-to-end with
//!   churn and revocations applied at their pinned positions.
//! * **index_rework** — the arena `MatchIndex` against the frozen
//!   pre-rework `LegacyMatchIndex` on identical tables, match-for-match
//!   equality checked, with the ≥2x floor asserted at 1M entries.
//!
//! `--smoke` shrinks every axis to CI seconds and swaps the perf floors
//! for the correctness floors (equality + positive rates) — perf floors
//! on shared CI runners are noise, as pipeline_scaling learned.

use std::time::Instant;

use psguard_analysis::{ChurnKind, ScenarioConfig, ScenarioKind, ScenarioTrace};
use psguard_bench::support::{assert_floor, measure, write_bench_json, Json};
use psguard_crypto::{cbc_encrypt, kh, prf, Aes128, Token};
use psguard_model::{Constraint, Event, Filter, IntRange, Op};
use psguard_routing::{RoutableTag, SecureEvent, SecureFilter};
use psguard_siena::{
    BatchDeliveries, FramePool, LegacyMatchIndex, MatchIndex, Message, Peer, ShardedPipeline,
};

/// Distinct topics (Zipf ranks = live tokens probed per event).
const TOPICS: usize = 256;
/// Pipeline shards (recorded in the JSON; the box is single-core, so
/// this measures the sharded code path, not parallel speedup).
const SHARDS: usize = 4;
/// Events per `publish_batch` call.
const BATCH: usize = 256;
/// Plaintext payload bytes per event (encrypted in the measured loop).
const PAYLOAD: usize = 256;

fn topic_token(t: u32) -> Token {
    prf(b"e2e-master", format!("topic{t:03}").as_bytes())
}

fn secure_filter(topic: u32, lo: i64, hi: i64) -> SecureFilter {
    SecureFilter {
        token: topic_token(topic),
        constraints: vec![Constraint::new(
            "x",
            Op::InRange(IntRange::new(lo, hi).expect("trace ranges are ordered")),
        )],
    }
}

/// The publisher: PRF topic tag, AES-CBC payload, encrypt-then-MAC.
/// This is the per-event cost the e2e loop pays before routing.
fn encrypt_event(
    cipher: &Aes128,
    tokens: &[Token],
    topic: u32,
    value: i64,
    seq: u64,
    plaintext: &[u8],
) -> SecureEvent {
    let mut nonce = [0u8; 16];
    nonce[..8].copy_from_slice(&seq.to_le_bytes());
    let iv = kh(b"e2e-iv", &nonce)[..16]
        .try_into()
        .expect("kh yields 20 bytes");
    let ciphertext = cbc_encrypt(cipher, &iv, plaintext);
    let mut mac_input = Vec::with_capacity(16 + ciphertext.len());
    mac_input.extend_from_slice(&iv);
    mac_input.extend_from_slice(&ciphertext);
    let mac = kh(b"e2e-mac", &mac_input);
    SecureEvent {
        tag: RoutableTag::with_nonce(&tokens[topic as usize], nonce),
        event: Event::builder("")
            .attr("x", value)
            .payload(ciphertext)
            .build(),
        iv,
        epoch: 0,
        mac,
    }
}

/// One full e2e pass over the trace's publish stream: encrypt, match,
/// wire-encode, charge bytes per recipient. Returns (deliveries, bytes).
#[allow(clippy::too_many_arguments)]
fn e2e_pass(
    pipeline: &mut ShardedPipeline<SecureFilter>,
    cipher: &Aes128,
    tokens: &[Token],
    trace: &ScenarioTrace,
    plaintext: &[u8],
    pool: &FramePool,
    batch_buf: &mut Vec<SecureEvent>,
    deliveries_buf: &mut BatchDeliveries,
) -> (u64, u64) {
    let mut delivered = 0u64;
    let mut bytes = 0u64;
    let mut seq = 0u64;
    for chunk in trace.publishes.chunks(BATCH) {
        batch_buf.clear();
        for p in chunk {
            batch_buf.push(encrypt_event(
                cipher, tokens, p.topic, p.value, seq, plaintext,
            ));
            seq += 1;
        }
        pipeline.publish_batch_into(Peer::Parent, batch_buf, deliveries_buf);
        for (i, peers) in deliveries_buf.iter().enumerate() {
            if peers.is_empty() {
                continue;
            }
            // Encode once, fan the shared frame out to every recipient.
            let frame = pool.encode(&Message::<SecureFilter, SecureEvent>::Publish(
                batch_buf[i].clone(),
            ));
            delivered += peers.len() as u64;
            bytes += (frame.wire_bytes().len() * peers.len()) as u64;
        }
    }
    (delivered, bytes)
}

struct SizeRow {
    subscriptions: usize,
    eps: f64,
    iters: usize,
    delivered_per_pass: u64,
    wire_mb_per_pass: f64,
    batch_work: u64,
}

/// The e2e trajectory cell at `n` subscriptions.
fn run_size(n: usize, events: usize, min_ms: u128, tokens: &[Token]) -> SizeRow {
    let cfg = ScenarioConfig {
        kind: ScenarioKind::Steady,
        topics: TOPICS,
        zipf_s: 1.1,
        subscribers: n as u32,
        events,
        value_range: 256,
        sub_width: 96,
        seed: 0x5e2e,
    };
    let trace = ScenarioTrace::generate(&cfg);

    let mut pipeline: ShardedPipeline<SecureFilter> =
        ShardedPipeline::with_capacity(true, SHARDS, n);
    for s in &trace.initial {
        pipeline.subscribe(Peer::Local(s.client), secure_filter(s.topic, s.lo, s.hi));
    }

    let cipher = Aes128::new(&[0x42; 16]);
    let plaintext = vec![0xABu8; PAYLOAD];
    let pool = FramePool::new();
    let mut batch_buf = Vec::with_capacity(BATCH);
    let mut deliveries_buf = BatchDeliveries::new();
    let mut delivered = 0u64;
    let mut bytes = 0u64;
    let m = measure(1, 1, min_ms, |_| {
        let (d, b) = e2e_pass(
            &mut pipeline,
            &cipher,
            tokens,
            &trace,
            &plaintext,
            &pool,
            &mut batch_buf,
            &mut deliveries_buf,
        );
        delivered = d;
        bytes = b;
    });
    let eps = m.per_sec * trace.publishes.len() as f64;
    let row = SizeRow {
        subscriptions: n,
        eps,
        iters: m.iters,
        delivered_per_pass: delivered,
        wire_mb_per_pass: bytes as f64 / 1e6,
        batch_work: pipeline.last_batch_work(),
    };
    println!(
        "n={n:>8}  e2e {eps:>11.0} ev/s ({} passes)  fanout/pass {delivered}  wire {:.1} MB/pass",
        m.iters, row.wire_mb_per_pass
    );
    row
}

struct ScenarioRow {
    kind: ScenarioKind,
    eps: f64,
    delivered: u64,
    churn_ops: usize,
    revocations: usize,
}

/// Replays one scenario end-to-end, applying churn and revocations at
/// their pinned positions in the publish stream. Returns the timed row;
/// the replay runs twice (warm, then measured).
fn run_scenario(kind: ScenarioKind, subs: u32, events: usize, tokens: &[Token]) -> ScenarioRow {
    let cfg = ScenarioConfig {
        kind,
        topics: TOPICS,
        zipf_s: 1.1,
        subscribers: subs,
        events,
        value_range: 256,
        sub_width: 96,
        seed: 0xad0 + kind as u64,
    };
    let trace = ScenarioTrace::generate(&cfg);
    let cipher = Aes128::new(&[0x42; 16]);
    let plaintext = vec![0xABu8; PAYLOAD];
    let pool = FramePool::new();

    let mut timed = 0.0f64;
    let mut delivered = 0u64;
    for round in 0..2 {
        // Fresh pipeline per round: churn and revocations mutate it.
        let mut pipeline: ShardedPipeline<SecureFilter> =
            ShardedPipeline::with_capacity(true, SHARDS, subs as usize);
        let max_client = trace.max_client().map_or(0, |c| c + 1);
        let mut live: Vec<Vec<SecureFilter>> = vec![Vec::new(); max_client as usize];
        for s in &trace.initial {
            let f = secure_filter(s.topic, s.lo, s.hi);
            pipeline.subscribe(Peer::Local(s.client), f.clone());
            live[s.client as usize].push(f);
        }

        let mut churn = trace.churn.iter().peekable();
        let mut revs = trace.revocations.iter().peekable();
        let mut batch_buf = Vec::with_capacity(BATCH);
        let mut deliveries_buf = BatchDeliveries::new();
        delivered = 0;
        let start = Instant::now();
        let mut seq = 0u64;
        let mut at = 0usize;
        for chunk in trace.publishes.chunks(BATCH) {
            // Apply every operation pinned inside this batch window up
            // front; batching quantizes "before event k" to the batch
            // boundary, which is fine for a throughput bench.
            while let Some(c) = churn.peek().filter(|c| c.at_event < at + chunk.len()) {
                let f = secure_filter(c.sub.topic, c.sub.lo, c.sub.hi);
                match c.kind {
                    ChurnKind::Join => {
                        pipeline.subscribe(Peer::Local(c.sub.client), f.clone());
                        live[c.sub.client as usize].push(f);
                    }
                    ChurnKind::Leave => {
                        pipeline.unsubscribe(Peer::Local(c.sub.client), &f);
                        live[c.sub.client as usize].retain(|g| g != &f);
                    }
                }
                churn.next();
            }
            while let Some(r) = revs.peek().filter(|r| r.at_event < at + chunk.len()) {
                for f in live[r.client as usize].drain(..) {
                    pipeline.unsubscribe(Peer::Local(r.client), &f);
                }
                revs.next();
            }

            batch_buf.clear();
            for p in chunk {
                batch_buf.push(encrypt_event(
                    &cipher, tokens, p.topic, p.value, seq, &plaintext,
                ));
                seq += 1;
            }
            pipeline.publish_batch_into(Peer::Parent, &batch_buf, &mut deliveries_buf);
            for (i, peers) in deliveries_buf.iter().enumerate() {
                if !peers.is_empty() {
                    let frame = pool.encode(&Message::<SecureFilter, SecureEvent>::Publish(
                        batch_buf[i].clone(),
                    ));
                    std::hint::black_box(frame.wire_bytes().len());
                    delivered += peers.len() as u64;
                }
            }
            at += chunk.len();
        }
        if round == 1 {
            timed = start.elapsed().as_secs_f64();
        }
    }

    let eps = trace.publishes.len() as f64 / timed;
    println!(
        "scenario {:<16}  {eps:>10.0} ev/s  deliveries {delivered}  churn {}  revocations {}",
        kind.name(),
        trace.churn.len(),
        trace.revocations.len()
    );
    ScenarioRow {
        kind,
        eps,
        delivered,
        churn_ops: trace.churn.len(),
        revocations: trace.revocations.len(),
    }
}

/// Plain-filter table mirroring matching_scaling's shape, for the
/// arena-vs-legacy index comparison.
fn index_filter(i: usize) -> (Peer, Filter) {
    let lo = (i % 50) as i64;
    let filter = Filter::for_topic(format!("topic{:03}", i % TOPICS)).with(Constraint::new(
        "x",
        Op::InRange(IntRange::new(lo, lo + 30).expect("valid range")),
    ));
    (Peer::Local(i as u32), filter)
}

fn index_events() -> Vec<Event> {
    (0..TOPICS)
        .map(|t| {
            Event::builder(format!("topic{t:03}"))
                .attr("x", (t % 60) as i64)
                .build()
        })
        .collect()
}

struct IndexRow {
    entries: usize,
    arena_qps: f64,
    arena_iters: usize,
    legacy_qps: f64,
    legacy_iters: usize,
}

/// Builds the same table into both index layouts, checks them
/// match-for-match, and measures query throughput on each.
fn run_index_rework(entries: usize, min_ms: u128) -> IndexRow {
    let mut arena: MatchIndex<Filter> = MatchIndex::new();
    arena.reserve(entries);
    let mut legacy: LegacyMatchIndex<Filter> = LegacyMatchIndex::new();
    for i in 0..entries {
        let (peer, filter) = index_filter(i);
        arena.insert(peer, filter.clone());
        legacy.insert(peer, filter);
    }
    let evs = index_events();

    // Correctness floor: identical matches on every probe event.
    for e in &evs {
        let mut a = arena.query(e);
        let mut l = legacy.query(e);
        a.sort_unstable();
        l.sort_unstable();
        assert_eq!(a, l, "arena and legacy disagree at {entries} entries");
    }

    let mut peers = Vec::new();
    let a = measure(64, 256, min_ms, |i| {
        arena.query_into(&evs[i % evs.len()], &mut peers);
        std::hint::black_box(peers.len());
    });
    let l = measure(8, 32, min_ms, |i| {
        legacy.query_into(&evs[i % evs.len()], &mut peers);
        std::hint::black_box(peers.len());
    });
    println!(
        "index n={entries:>8}  arena {:>11.0} q/s ({} iters)  legacy {:>11.0} q/s ({} iters)  speedup {:.2}x",
        a.per_sec, a.iters, l.per_sec, l.iters, a.per_sec / l.per_sec
    );
    IndexRow {
        entries,
        arena_qps: a.per_sec,
        arena_iters: a.iters,
        legacy_qps: l.per_sec,
        legacy_iters: l.iters,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, events, min_ms): (&[usize], usize, u128) = if smoke {
        (&[1_000, 10_000], 512, 20)
    } else {
        (&[10_000, 100_000, 1_000_000], 2_048, 400)
    };
    let (scenario_subs, scenario_events) = if smoke { (500, 256) } else { (10_000, 4_096) };
    let index_entries = if smoke { 10_000 } else { 1_000_000 };

    let tokens: Vec<Token> = (0..TOPICS as u32).map(topic_token).collect();

    let rows: Vec<SizeRow> = sizes
        .iter()
        .map(|&n| run_size(n, events, min_ms, &tokens))
        .collect();

    let scenarios: Vec<ScenarioRow> = ScenarioKind::ALL
        .iter()
        .map(|&k| run_scenario(k, scenario_subs, scenario_events, &tokens))
        .collect();

    let index = run_index_rework(index_entries, if smoke { 50 } else { 600 });
    let index_speedup = index.arena_qps / index.legacy_qps;

    let doc = Json::obj()
        .field("bench", Json::str("e2e_scaling"))
        .field("unit", Json::str("events_per_second"))
        .field("smoke", Json::Bool(smoke))
        .field("topics", Json::Int(TOPICS as u64))
        .field("shards", Json::Int(SHARDS as u64))
        .field("batch", Json::Int(BATCH as u64))
        .field("payload_bytes", Json::Int(PAYLOAD as u64))
        .field(
            "sizes",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("subscriptions", Json::Int(r.subscriptions as u64))
                            .field("e2e_eps", Json::f1(r.eps))
                            .field("passes", Json::Int(r.iters as u64))
                            .field("deliveries_per_pass", Json::Int(r.delivered_per_pass))
                            .field("wire_mb_per_pass", Json::f2(r.wire_mb_per_pass))
                            .field("batch_work", Json::Int(r.batch_work))
                    })
                    .collect(),
            ),
        )
        .field(
            "scenarios",
            Json::Arr(
                scenarios
                    .iter()
                    .map(|s| {
                        Json::obj()
                            .field("scenario", Json::str(s.kind.name()))
                            .field("subscriptions", Json::Int(scenario_subs as u64))
                            .field("eps", Json::f1(s.eps))
                            .field("deliveries", Json::Int(s.delivered))
                            .field("churn_ops", Json::Int(s.churn_ops as u64))
                            .field("revocations", Json::Int(s.revocations as u64))
                    })
                    .collect(),
            ),
        )
        .field(
            "index_rework",
            Json::obj()
                .field("entries", Json::Int(index.entries as u64))
                .field("arena_qps", Json::f1(index.arena_qps))
                .field("arena_iters", Json::Int(index.arena_iters as u64))
                .field("legacy_qps", Json::f1(index.legacy_qps))
                .field("legacy_iters", Json::Int(index.legacy_iters as u64))
                .field("speedup", Json::f2(index_speedup)),
        );
    write_bench_json("BENCH_e2e.json", &doc);

    // Correctness floors hold in both modes: the pipeline delivered
    // something everywhere, and every scenario produced deliveries.
    for r in &rows {
        assert!(
            r.eps.is_finite() && r.eps > 0.0 && r.delivered_per_pass > 0,
            "size {} produced no throughput",
            r.subscriptions
        );
    }
    for s in &scenarios {
        assert!(
            s.eps.is_finite() && s.eps > 0.0 && s.delivered > 0,
            "scenario {} produced no deliveries",
            s.kind.name()
        );
    }
    if smoke {
        println!("smoke mode: perf floors skipped (correctness floors held)");
        return;
    }

    // Perf floors (full mode, the acceptance gates):
    // 1. the arena layout must be >= 2x the frozen pre-rework layout at
    //    1M entries, measured in this very run;
    assert_floor("arena vs legacy MatchIndex at 1M", index_speedup, 2.0);
    // 2. scaling 10x subscribers (100k → 1M) may cost at most 15x in
    //    e2e throughput — the trajectory stays sublinear in fanout.
    let at_100k = rows
        .iter()
        .find(|r| r.subscriptions == 100_000)
        .expect("100k row");
    let at_1m = rows
        .iter()
        .find(|r| r.subscriptions == 1_000_000)
        .expect("1M row");
    assert_floor(
        "e2e throughput 1M vs 100k/15",
        at_1m.eps / (at_100k.eps / 15.0),
        1.0,
    );
}
