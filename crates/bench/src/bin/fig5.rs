//! Figure 5 — KDC load per subscriber join vs. NS: compute (ms) and
//! network (KB), PSGuard vs SubscriberGroup.

use psguard_analysis::TextTable;
use psguard_bench::keymgmt::{run_key_management, NS_SWEEP};

fn main() {
    println!("Figure 5: KDC Load per join vs NS\n");
    let mut table = TextTable::new(&[
        "NS",
        "PSGuard compute (ms)",
        "Group compute (ms)",
        "PSGuard network (KB)",
        "Group network (KB)",
    ]);
    for ns in NS_SWEEP {
        let s = run_key_management(ns, 42);
        table.row(&[
            &format!("{ns}"),
            &format!("{:.4}", s.psguard_kdc_ms),
            &format!("{:.4}", s.group_kdc_ms),
            &format!("{:.3}", s.psguard_kdc_kb),
            &format!("{:.3}", s.group_kdc_kb),
        ]);
    }
    println!("{}", table.render());
    println!("Shape check (paper): PSGuard's compute and network cost per join are");
    println!("small constants independent of NS; SubscriberGroup's explode with NS.");
}
