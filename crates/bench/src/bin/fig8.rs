//! Figure 8 — cost of constructing the multi-path event-dissemination
//! network vs. ind_max, normalized to ind_max = 1. Only popular tokens
//! are provisioned many paths (ind_t = τ·λ_t capped), so the cost
//! saturates.

use psguard_analysis::TextTable;
use psguard_routing::{zipf_frequencies, MultipathTree};

fn main() {
    println!("Figure 8: Cost of Constructing a Multi-Path Event Routing Network\n");
    let tree = MultipathTree::new(10, 3).expect("valid tree");
    let freqs = zipf_frequencies(128, 0.9);
    let base = tree.construction_cost(&freqs, 1);

    let mut table = TextTable::new(&[
        "Max Ind Paths",
        "Normalized construction cost",
        "Tokens at ind_max",
        "Tokens with < 2 paths",
    ]);
    for ind in 1..=10u8 {
        let cost = tree.construction_cost(&freqs, ind) / base;
        let per_token = MultipathTree::paths_per_token(&freqs, ind);
        let at_cap = per_token.iter().filter(|&&p| p == ind).count();
        let below2 = per_token.iter().filter(|&&p| p < 2).count();
        table.row(&[
            &format!("{ind}"),
            &format!("{cost:.2}"),
            &format!("{at_cap}"),
            &format!("{below2}"),
        ]);
    }
    println!("{}", table.render());
    println!("Shape check (paper): cost grows sub-linearly and saturates; only the");
    println!("most popular tokens use all ind_max paths while many tokens use fewer");
    println!("than two. Paper: ind_max = 5 costs ~3x the ind_max = 1 overlay.");
}
