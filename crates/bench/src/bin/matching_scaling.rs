//! Matching-throughput scaling: indexed fast path vs. linear scan.
//!
//! Runs `SubscriptionTable::matching_peers` (the counting `MatchIndex`)
//! and `matching_peers_linear` (the original O(n) reference) over tables
//! of {100, 1k, 10k, 100k, 1M} subscriptions, reports events/second for
//! both, and writes machine-readable results to `BENCH_matching.json`
//! in the current directory. The arena-vs-legacy *layout* comparison at
//! 1M lives in `e2e_scaling` (`index_rework` section); this bin tracks
//! the indexed-vs-linear algorithmic gap.

use psguard_bench::support::{measure, write_bench_json, Json};
use psguard_model::{Constraint, Event, Filter, IntRange, Op};
use psguard_siena::{Peer, SubscriptionTable};

const TOPICS: usize = 64;
const SIZES: [usize; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

fn build_table(subscriptions: usize) -> SubscriptionTable<Filter> {
    let mut table = SubscriptionTable::new();
    for i in 0..subscriptions {
        let lo = (i % 50) as i64;
        let filter = Filter::for_topic(format!("topic{:02}", i % TOPICS)).with(Constraint::new(
            "x",
            Op::InRange(IntRange::new(lo, lo + 30).expect("valid range")),
        ));
        table.insert(Peer::Local(i as u32), filter);
    }
    table
}

fn events() -> Vec<Event> {
    (0..TOPICS)
        .map(|t| {
            Event::builder(format!("topic{:02}", t))
                .attr("x", (t % 60) as i64)
                .build()
        })
        .collect()
}

struct Row {
    subscriptions: usize,
    indexed_eps: f64,
    indexed_iters: usize,
    linear_eps: f64,
    linear_iters: usize,
    indexed_work: u64,
}

fn main() {
    let evs = events();
    let mut rows = Vec::new();
    for n in SIZES {
        let mut table = build_table(n);

        // 200 ms of wall time per cell keeps even the largest tables
        // above a few dozen samples (a 50 ms floor made the 100k cell
        // jitter run-to-run); the iteration counts land in the JSON so
        // a reader can judge each number's stability.
        let indexed = measure(64, 1_000, 200, |i| {
            std::hint::black_box(table.matching_peers(&evs[i % evs.len()]));
        });
        let indexed_work = table.last_match_work();

        // The linear reference needs far fewer iterations at large n.
        let min_iters = (1_000_000 / n).max(8);
        let linear = measure(min_iters.min(64), min_iters, 200, |i| {
            std::hint::black_box(table.matching_peers_linear(&evs[i % evs.len()]));
        });

        println!(
            "n={n:>7}  indexed {:>12.0} ev/s ({} iters)  linear {:>12.0} ev/s ({} iters)  speedup {:>7.1}x  work/event {indexed_work}",
            indexed.per_sec,
            indexed.iters,
            linear.per_sec,
            linear.iters,
            indexed.per_sec / linear.per_sec
        );
        rows.push(Row {
            subscriptions: n,
            indexed_eps: indexed.per_sec,
            indexed_iters: indexed.iters,
            linear_eps: linear.per_sec,
            linear_iters: linear.iters,
            indexed_work,
        });
    }

    let doc = Json::obj()
        .field("bench", Json::str("matching_scaling"))
        .field("unit", Json::str("events_per_second"))
        .field(
            "sizes",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("subscriptions", Json::Int(r.subscriptions as u64))
                            .field("indexed_eps", Json::f1(r.indexed_eps))
                            .field("indexed_iters", Json::Int(r.indexed_iters as u64))
                            .field("linear_eps", Json::f1(r.linear_eps))
                            .field("linear_iters", Json::Int(r.linear_iters as u64))
                            .field("speedup", Json::f2(r.indexed_eps / r.linear_eps))
                            .field("indexed_work_per_event", Json::Int(r.indexed_work))
                            .field("linear_work_per_event", Json::Int(r.subscriptions as u64))
                    })
                    .collect(),
            ),
        );
    write_bench_json("BENCH_matching.json", &doc);

    let at_10k = rows
        .iter()
        .find(|r| r.subscriptions == 10_000)
        .expect("10k row");
    let speedup = at_10k.indexed_eps / at_10k.linear_eps;
    assert!(
        speedup >= 5.0,
        "indexed path must be >= 5x the linear scan at 10k subscriptions, got {speedup:.1}x"
    );
    let at_1m = rows
        .iter()
        .find(|r| r.subscriptions == 1_000_000)
        .expect("1M row");
    let speedup_1m = at_1m.indexed_eps / at_1m.linear_eps;
    assert!(
        speedup_1m >= 50.0,
        "indexed path must be >= 50x the linear scan at 1M subscriptions, got {speedup_1m:.1}x"
    );
}
