//! Matching-throughput scaling: indexed fast path vs. linear scan.
//!
//! Runs `SubscriptionTable::matching_peers` (the counting `MatchIndex`)
//! and `matching_peers_linear` (the original O(n) reference) over tables
//! of {100, 1k, 10k, 100k} subscriptions, reports events/second for
//! both, and writes machine-readable results to `BENCH_matching.json`
//! in the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use psguard_model::{Constraint, Event, Filter, IntRange, Op};
use psguard_siena::{Peer, SubscriptionTable};

const TOPICS: usize = 64;
const SIZES: [usize; 4] = [100, 1_000, 10_000, 100_000];

fn build_table(subscriptions: usize) -> SubscriptionTable<Filter> {
    let mut table = SubscriptionTable::new();
    for i in 0..subscriptions {
        let lo = (i % 50) as i64;
        let filter = Filter::for_topic(format!("topic{:02}", i % TOPICS)).with(Constraint::new(
            "x",
            Op::InRange(IntRange::new(lo, lo + 30).expect("valid range")),
        ));
        table.insert(Peer::Local(i as u32), filter);
    }
    table
}

fn events() -> Vec<Event> {
    (0..TOPICS)
        .map(|t| {
            Event::builder(format!("topic{:02}", t))
                .attr("x", (t % 60) as i64)
                .build()
        })
        .collect()
}

/// Events/second plus the iteration count actually sampled, over at
/// least `min_iters` calls and 200 ms of wall time. The old 50 ms floor
/// under-sampled the 100k-subscription case (a handful of linear scans
/// per window), making BENCH numbers jitter run-to-run; 200 ms keeps
/// every cell above a few dozen samples, and the iteration count lands
/// in the JSON so a reader can judge each number's stability.
fn measure(mut run: impl FnMut(usize), min_iters: usize) -> (f64, usize) {
    // Warm-up.
    for i in 0..min_iters.min(64) {
        run(i);
    }
    let mut iters = 0usize;
    let start = Instant::now();
    while iters < min_iters || start.elapsed().as_millis() < 200 {
        run(iters);
        iters += 1;
    }
    (iters as f64 / start.elapsed().as_secs_f64(), iters)
}

struct Row {
    subscriptions: usize,
    indexed_eps: f64,
    indexed_iters: usize,
    linear_eps: f64,
    linear_iters: usize,
    indexed_work: u64,
}

fn main() {
    let evs = events();
    let mut rows = Vec::new();
    for n in SIZES {
        let mut table = build_table(n);

        let (indexed_eps, indexed_iters) = measure(
            |i| {
                std::hint::black_box(table.matching_peers(&evs[i % evs.len()]));
            },
            1_000,
        );
        let indexed_work = table.last_match_work();

        // The linear reference needs far fewer iterations at large n.
        let min_iters = (1_000_000 / n).max(8);
        let (linear_eps, linear_iters) = measure(
            |i| {
                std::hint::black_box(table.matching_peers_linear(&evs[i % evs.len()]));
            },
            min_iters,
        );

        println!(
            "n={n:>6}  indexed {indexed_eps:>12.0} ev/s ({indexed_iters} iters)  linear {linear_eps:>12.0} ev/s ({linear_iters} iters)  speedup {:>7.1}x  work/event {indexed_work}",
            indexed_eps / linear_eps
        );
        rows.push(Row {
            subscriptions: n,
            indexed_eps,
            indexed_iters,
            linear_eps,
            linear_iters,
            indexed_work,
        });
    }

    let mut json = String::from("{\n  \"bench\": \"matching_scaling\",\n  \"unit\": \"events_per_second\",\n  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"subscriptions\": {}, \"indexed_eps\": {:.1}, \"indexed_iters\": {}, \"linear_eps\": {:.1}, \"linear_iters\": {}, \"speedup\": {:.2}, \"indexed_work_per_event\": {}, \"linear_work_per_event\": {}}}{}",
            r.subscriptions,
            r.indexed_eps,
            r.indexed_iters,
            r.linear_eps,
            r.linear_iters,
            r.indexed_eps / r.linear_eps,
            r.indexed_work,
            r.subscriptions,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_matching.json", &json).expect("write BENCH_matching.json");
    println!("wrote BENCH_matching.json");

    let at_10k = rows
        .iter()
        .find(|r| r.subscriptions == 10_000)
        .expect("10k row");
    let speedup = at_10k.indexed_eps / at_10k.linear_eps;
    assert!(
        speedup >= 5.0,
        "indexed path must be >= 5x the linear scan at 10k subscriptions, got {speedup:.1}x"
    );
}
