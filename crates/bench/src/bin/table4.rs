//! Table 4 — per-subscriber costs: PSGuard vs SubscriberGroup
//! (analytical model of §3.2.2; NS = 10³, R = 10⁴, φR = 100).

use psguard_analysis::{subscriber_costs, TextTable};

fn main() {
    let (ns, r, phi) = (1e3, 1e4, 1e2);
    println!("Table 4: Subscriber Costs (NS = 10^3, R = 10^4, phi_R = 10^2)\n");

    let rows = subscriber_costs(ns, r, phi);
    let mut table = TextTable::new(&[
        "Scheme",
        "Join Msg (new sub)",
        "Join Msg (active subs)",
        "Storage (keys)",
        "Event Processing",
    ]);
    for row in &rows {
        let event = if row.event_hashes > 0.0 {
            format!("D + {:.2} H", row.event_hashes)
        } else {
            "D".to_string()
        };
        table.row(&[
            row.scheme,
            &format!("{:.2}", row.join_messages_new),
            &format!("{:.2}", row.join_messages_active),
            &format!("{:.2}", row.storage_keys),
            &event,
        ]);
    }
    println!("{}", table.render());
    println!("Symbolic forms (paper Table 4):");
    println!("  PSGuard:         log2(phi)     -             log2(phi)     D + H*log2(phi)");
    println!("  SubscriberGroup: 2*NS*phi/R    4*NS*phi/R    2*NS*phi/R    D");
}
