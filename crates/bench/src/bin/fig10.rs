//! Figure 10 — mean delivery latency (ms) vs. the number of broker nodes
//! {0, 2, 6, 14, 30}, measured at 90% of each configuration's maximum
//! throughput, for plain Siena and the four PSGuard families.

use psguard_analysis::TextTable;
use psguard_bench::perf::{run_perf_series, PerfVariant, BROKER_SWEEP};

fn main() {
    println!("Figure 10: Latency vs Number of Broker Nodes (this takes a minute)\n");
    let mut columns = Vec::new();
    for v in PerfVariant::ALL {
        eprintln!("  measuring {} …", v.label());
        columns.push((v.label(), run_perf_series(v, 10)));
    }

    let mut headers = vec!["Nodes"];
    headers.extend(columns.iter().map(|(l, _)| *l));
    let mut table = TextTable::new(&headers);
    for (i, b) in BROKER_SWEEP.iter().enumerate() {
        let mut cells = vec![format!("{b}")];
        for (_, series) in &columns {
            cells.push(format!("{:.1}", series[i].latency_ms));
        }
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        table.row(&refs);
    }
    println!("{}", table.render());

    let siena = columns[0].1.last().expect("sweep").latency_ms;
    println!("PSGuard latency overhead vs siena at 30 nodes:");
    for (label, series) in columns.iter().skip(1) {
        let l = series.last().expect("sweep").latency_ms;
        println!("  {label:9} {:+5.1}%", (l / siena - 1.0) * 100.0);
    }
    println!("\nShape check (paper): latency first falls (less queueing per node),");
    println!("then rises with network diameter; PSGuard adds <1.5% (6% category)");
    println!("because WAN delays (~70 ms) dwarf the crypto microseconds.");
    println!("With the counting match index the initial fall is largely gone:");
    println!("small overlays no longer queue behind per-entry filter scans, so");
    println!("diameter dominates from the start (see EXPERIMENTS.md).");
}
