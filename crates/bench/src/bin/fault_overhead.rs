//! Overhead of the fault-injection layer when no faults are configured.
//!
//! `Engine::run_faulty` with `FaultConfig::none` must be behaviorally
//! identical to `Engine::run` and nearly free: the acceptance bound is
//! ≤ 5% wall-clock overhead (median over repeated runs). Also records a
//! lossy-with-recovery run for context. Results go to `BENCH_fault.json`
//! in the current directory.

use std::time::Instant;

use psguard_bench::support::{write_bench_json, Json};
use psguard_model::{Event, Filter};
use psguard_net::{FaultPlan, LinkFaults};
use psguard_siena::{CostModel, Engine, EngineConfig, FaultConfig, RecoveryConfig};

const BROKERS: u32 = 14;
const SUBSCRIBERS: u32 = 16;
const RATE_EPS: f64 = 1_000.0;
const DURATION_S: f64 = 2.0;
const REPEATS: usize = 11;

fn engine() -> Engine<Filter> {
    let mut eng = Engine::new(EngineConfig {
        broker_nodes: BROKERS,
        subscribers: SUBSCRIBERS,
        seed: 42,
    });
    for c in 0..SUBSCRIBERS {
        eng.subscribe(c, Filter::for_topic("t"));
    }
    eng
}

fn workload() -> Vec<Event> {
    (0..32)
        .map(|i| {
            Event::builder("t")
                .attr("x", i as i64)
                .payload(vec![0u8; 64])
                .build()
        })
        .collect()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let events = workload();
    let cost = CostModel::plain();
    let mut eng = engine();

    // Interleave the two variants so drift (frequency scaling, cache
    // state) hits both equally.
    let mut plain_ms = Vec::with_capacity(REPEATS);
    let mut faulty_ms = Vec::with_capacity(REPEATS);
    let mut plain_delivered = 0u64;
    let mut faulty_delivered = 0u64;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let p = eng.run(&events, RATE_EPS, DURATION_S, &cost);
        plain_ms.push(start.elapsed().as_secs_f64() * 1e3);
        plain_delivered = p.delivered;

        let mut cfg = FaultConfig::none(7);
        let start = Instant::now();
        let f = eng.run_faulty(&events, RATE_EPS, DURATION_S, &cost, &mut cfg);
        faulty_ms.push(start.elapsed().as_secs_f64() * 1e3);
        faulty_delivered = f.delivered;
    }
    assert_eq!(
        plain_delivered, faulty_delivered,
        "zero-fault run_faulty must deliver exactly what run delivers"
    );

    let plain = median(&mut plain_ms);
    let faulty = median(&mut faulty_ms);
    let overhead_pct = (faulty - plain) / plain * 100.0;
    println!(
        "zero-fault overhead: run {plain:.2} ms vs run_faulty {faulty:.2} ms  ({overhead_pct:+.2}%)"
    );

    // Context: the same workload over 20%-lossy links with recovery on.
    let plan = FaultPlan::new(9).with_default_link_faults(LinkFaults {
        drop_p: 0.2,
        dup_p: 0.05,
        jitter_us: 5_000,
    });
    let mut cfg = FaultConfig::with_recovery(plan);
    cfg.recovery = Some(RecoveryConfig::no_heartbeats());
    let start = Instant::now();
    let lossy = eng.run_faulty(&events, RATE_EPS, DURATION_S, &cost, &mut cfg);
    let lossy_ms = start.elapsed().as_secs_f64() * 1e3;
    let expected = lossy.published * SUBSCRIBERS as u64;
    println!(
        "lossy 20% + recovery: delivery {:.4}, {} retransmissions, {} dups suppressed, {lossy_ms:.2} ms",
        lossy.delivery_fraction(expected),
        lossy.retransmissions,
        lossy.duplicates_suppressed
    );

    // Same keys the hand-rolled encoder emitted, now through the shared
    // support builder (one JSON writer for every BENCH artifact).
    let doc = Json::obj()
        .field("bench", Json::str("fault_overhead"))
        .field(
            "config",
            Json::obj()
                .field("brokers", Json::Int(BROKERS as u64))
                .field("subscribers", Json::Int(SUBSCRIBERS as u64))
                .field("rate_eps", Json::Float(RATE_EPS, 0))
                .field("duration_s", Json::Float(DURATION_S, 0))
                .field("repeats", Json::Int(REPEATS as u64)),
        )
        .field(
            "zero_fault",
            Json::obj()
                .field("run_ms_median", Json::Float(plain, 3))
                .field("run_faulty_ms_median", Json::Float(faulty, 3))
                .field("overhead_pct", Json::Float(overhead_pct, 3))
                .field("delivered", Json::Int(faulty_delivered)),
        )
        .field(
            "lossy_with_recovery",
            Json::obj()
                .field("drop_p", Json::Float(0.2, 1))
                .field("dup_p", Json::Float(0.05, 2))
                .field(
                    "delivery_fraction",
                    Json::Float(lossy.delivery_fraction(expected), 5),
                )
                .field("retransmissions", Json::Int(lossy.retransmissions))
                .field(
                    "duplicates_suppressed",
                    Json::Int(lossy.duplicates_suppressed),
                )
                .field("abandoned", Json::Int(lossy.abandoned))
                .field("run_ms", Json::Float(lossy_ms, 3)),
        );
    write_bench_json("BENCH_fault.json", &doc);

    assert!(
        overhead_pct <= 5.0,
        "zero-fault path must cost <= 5% over Engine::run, got {overhead_pct:.2}%"
    );
}
