//! Messaging-cost comparison under realistic subscriber churn — the
//! dynamic version of §3.2.2's quantitative analysis (which Tables 5–6
//! bound analytically).
//!
//! An M/M/N churn trace drives both schemes over one epoch: every join
//! costs PSGuard one grant (log₂φ keys, zero messages to others) while
//! the subscriber-group baseline splits interval groups and rekeys every
//! overlapping member; leaves are lazily revoked at the epoch boundary.

use psguard_analysis::{cost_ratio_lower_bound, simulate_churn, ChurnEvent, ChurnModel, TextTable};
use psguard_bench::hash_cost_us;
use psguard_bench::support::{write_bench_json, Json};
use psguard_groupkey::{RekeyReport, RekeyStrategy, SubscriberGroupManager};
use psguard_keys::{EpochId, Kdc, OpCounter, Schema, TopicScope};
use psguard_model::{Constraint, Filter, IntRange, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    const R: i64 = 1024;
    const PHI: i64 = 100;
    let hash_us = hash_cost_us();
    println!("Churn-driven cost comparison (R = {R}, phi_R = {PHI}, one epoch)\n");

    let schema = Schema::builder()
        .numeric("v", IntRange::new(0, R - 1).expect("valid"), 1)
        .expect("valid nakt")
        .build();
    let kdc = Kdc::from_seed(b"churn");

    let mut rows = Vec::new();
    let mut table = TextTable::new(&[
        "N (population)",
        "avg active NS",
        "joins",
        "PSGuard keys sent",
        "Group keys sent",
        "measured ratio",
        "analytic lower bound",
    ]);

    for n in [50.0f64, 100.0, 200.0, 400.0] {
        let model = ChurnModel {
            n,
            lambda: 1.0,
            mu: 3.0,
        };
        let trace = simulate_churn(&model, 4.0, 42);
        let mut rng = StdRng::seed_from_u64(9);

        let mut mgr = SubscriberGroupManager::new(
            IntRange::new(0, R - 1).expect("valid"),
            RekeyStrategy::Direct,
            b"churn",
        );
        let mut group_reports = Vec::new();
        let mut ps_keys_sent = 0u64;
        let mut ps_gen_hashes = 0u64;
        let mut joins = 0u64;

        // A stable range per subscriber id, drawn once.
        let mut range_of = std::collections::HashMap::new();
        for (_, event) in &trace.events {
            match event {
                ChurnEvent::Join(id) => {
                    joins += 1;
                    let lo = *range_of
                        .entry(*id)
                        .or_insert_with(|| rng.gen_range(0..(R - PHI)));
                    let range = IntRange::new(lo, lo + PHI - 1).expect("valid");

                    // Baseline join.
                    group_reports.push(mgr.join(*id, range));

                    // PSGuard join: one stateless grant.
                    let f = Filter::for_topic("w").with(Constraint::new("v", Op::InRange(range)));
                    let mut ops = OpCounter::new();
                    let grant = kdc
                        .grant(&schema, &f, EpochId(0), &TopicScope::Shared, &mut ops)
                        .expect("grantable");
                    ps_keys_sent += grant.key_count() as u64;
                    ps_gen_hashes += ops.total();
                }
                ChurnEvent::Leave(id) => {
                    // Lazy revocation on both sides; the baseline pays at
                    // the epoch boundary below.
                    mgr.leave_lazy(*id);
                }
            }
        }
        // Epoch boundary: the departed members settle as one batched
        // flush (the per-leave naive path lives on in `rekey_storm`).
        group_reports.push(mgr.epoch_rekey());
        let group_total = RekeyReport::aggregate(&group_reports);

        let group_keys = group_total.total_messages();
        let ratio = group_keys as f64 / ps_keys_sent.max(1) as f64;
        let bound = cost_ratio_lower_bound(trace.avg_active, R as f64, PHI as f64);
        table.row(&[
            &format!("{n:.0}"),
            &format!("{:.1}", trace.avg_active),
            &joins.to_string(),
            &ps_keys_sent.to_string(),
            &group_keys.to_string(),
            &format!("{ratio:.2}x"),
            &format!("{bound:.2}x"),
        ]);
        rows.push(
            Json::obj()
                .field("population", Json::Int(n as u64))
                .field("avg_active", Json::f1(trace.avg_active))
                .field("joins", Json::Int(joins))
                .field("psguard_keys", Json::Int(ps_keys_sent))
                .field("group_keys", Json::Int(group_keys))
                .field("ratio", Json::f2(ratio))
                .field("analytic_lower_bound", Json::f2(bound)),
        );
        let _ = ps_gen_hashes as f64 * hash_us; // KDC compute, reported by fig5
    }

    println!("{}", table.render());
    let doc = Json::obj()
        .field("bench", Json::str("churn_costs"))
        .field(
            "config",
            Json::obj()
                .field("range", Json::Int(R as u64))
                .field("phi", Json::Int(PHI as u64)),
        )
        .field("populations", Json::Arr(rows));
    write_bench_json("BENCH_churn.json", &doc);
    println!("The measured ratio sits at or above the §3.2.2 analytical lower bound");
    println!("(uniform ranges are the baseline's best case), and grows with the");
    println!("active population while PSGuard's per-join cost stays log2(phi).");
}
