//! Figure 8 companion, measured from the overlay: delivery fraction of
//! the multi-path event-dissemination network under message-dropping
//! routers, produced by actually forwarding events hop by hop on the
//! discrete-event simulator (`MultipathOverlay`) and cross-checked
//! against the analytic model (`RedundantRouter::simulate_drops`).
//!
//! The paper argues the `G_ind` construction buys resilience along with
//! frequency flattening; this bin quantifies the resilience side: with
//! `ind` vertex-disjoint paths and full replication, delivery under a
//! fraction `f` of dropping routers approaches `1 − (1 − (1 − f)^d)^ind`.

use psguard_analysis::TextTable;
use psguard_routing::{MultipathOverlay, MultipathTree, RedundantRouter};

const ARITY: u8 = 3;
const DEPTH: usize = 3;
const EVENTS: u64 = 200;
const SEED_COUNT: u64 = 48;
const DROP_FRACTIONS: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.30];

fn main() {
    println!("Figure 8 (overlay companion): delivery under dropping routers\n");
    let tree = MultipathTree::new(ARITY, DEPTH).expect("valid tree");
    let leaf = tree.leaf_digits(tree.leaf_count() / 2);

    let mut table = TextTable::new(&[
        "Drop fraction",
        "ind=1 overlay",
        "ind=2 overlay",
        "ind=3 overlay",
        "ind=3 analytic",
        "ind=3 predicted",
    ]);
    for &drop in &DROP_FRACTIONS {
        let mut rates = Vec::new();
        let mut analytic3 = 0.0;
        for ind in 1..=3u8 {
            let mut sum = 0.0;
            let mut asum = 0.0;
            for seed in 1..=SEED_COUNT {
                let router = RedundantRouter::new(tree.clone(), ind, ind).expect("valid router");
                let analytic = router
                    .simulate_drops(&leaf, drop, EVENTS, seed)
                    .expect("valid leaf");
                let run = MultipathOverlay::new(router)
                    .run_drops(&leaf, drop, EVENTS, seed)
                    .expect("valid leaf");
                assert_eq!(
                    run.delivered, analytic.delivered,
                    "overlay and analytic model must agree per seed"
                );
                sum += run.delivery_rate();
                asum += analytic.delivery_rate();
            }
            rates.push(sum / SEED_COUNT as f64);
            if ind == 3 {
                analytic3 = asum / SEED_COUNT as f64;
            }
        }
        // Independent-path approximation: each of the ind disjoint paths
        // survives with probability (1-f)^d.
        let path_up = (1.0 - drop).powi(DEPTH as i32);
        let predicted = 1.0 - (1.0 - path_up).powi(3);
        table.row(&[
            &format!("{drop:.2}"),
            &format!("{:.3}", rates[0]),
            &format!("{:.3}", rates[1]),
            &format!("{:.3}", rates[2]),
            &format!("{analytic3:.3}"),
            &format!("{predicted:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!("Shape check: delivery rises monotonically with ind at every drop");
    println!("fraction; the operational overlay matches the analytic model per");
    println!("seed exactly (asserted), and both track the independent-path");
    println!("prediction 1-(1-(1-f)^d)^ind up to finite-sample noise.");
}
