//! The throughput/latency experiment behind Figures 9–11.
//!
//! One publisher at the root, 32 subscribers at the leaves, broker trees
//! of {0, 2, 6, 14, 30} nodes (§5.2). The baseline ("siena") routes
//! plaintext filters with zero crypto cost; the four PSGuard variants
//! route tokenized envelopes with *measured* key-derivation, encryption
//! and token-matching costs folded into the per-node service times.

use psguard::{secure_cost_model, CryptoCosts, SecureEngine};
use psguard_analysis::TopicKind;
use psguard_model::{Event, Filter};
use psguard_routing::SecureEvent;
use psguard_siena::{CostModel, Engine, EngineConfig};

use crate::PaperSetup;

/// Which curve of Figures 9–10 to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfVariant {
    /// Plain Siena (no crypto) on the mixed workload.
    Siena,
    /// PSGuard on plain-topic events.
    Topic,
    /// PSGuard on numeric-attribute events.
    Numeric,
    /// PSGuard on category-attribute events.
    Category,
    /// PSGuard on string-attribute events.
    Str,
}

impl PerfVariant {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            PerfVariant::Siena => "siena",
            PerfVariant::Topic => "topic",
            PerfVariant::Numeric => "numeric",
            PerfVariant::Category => "category",
            PerfVariant::Str => "string",
        }
    }

    /// The paper's five curves.
    pub const ALL: [PerfVariant; 5] = [
        PerfVariant::Siena,
        PerfVariant::Topic,
        PerfVariant::Numeric,
        PerfVariant::Category,
        PerfVariant::Str,
    ];

    fn kind(&self) -> TopicKind {
        match self {
            PerfVariant::Siena | PerfVariant::Topic => TopicKind::Plain,
            PerfVariant::Numeric => TopicKind::Numeric,
            PerfVariant::Category => TopicKind::Category,
            PerfVariant::Str => TopicKind::Str,
        }
    }
}

/// One measured point of Figures 9–10.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPoint {
    /// Broker-tree size.
    pub brokers: u32,
    /// Saturation throughput in events/second.
    pub throughput_eps: f64,
    /// Mean publish→deliver latency (ms) at 90% of saturation.
    pub latency_ms: f64,
}

/// The paper's broker-count sweep.
pub const BROKER_SWEEP: [u32; 5] = [0, 2, 6, 14, 30];

const SUBSCRIBERS: u32 = 32;
/// Latency is measured near saturation (the paper keeps "the throughput of
/// the system at its maximum"); 97% keeps queues finite but dominant for
/// small overlays.
const LATENCY_LOAD: f64 = 0.97;
/// Per-hash cost on the paper's 550 MHz testbed (µs).
const PAPER_HASH_US: f64 = 1.0;
/// AES-128-CBC cost for a 256-byte payload on the paper's testbed (µs).
const PAPER_AES_US: f64 = 20.0;
const TOPICS_PER_SUB: usize = 8;
const WORKLOAD_EVENTS: usize = 64;
const SIM_SECONDS: f64 = 0.25;
/// Latency runs use a longer window so queues at near-saturated nodes
/// reach steady state.
const LAT_SIM_SECONDS: f64 = 4.0;

/// Builds (filters, events) on the topics of one family, with every
/// event guaranteed deliverable to at least one subscriber.
fn family_workload(setup: &mut PaperSetup, kind: TopicKind) -> (Vec<(u32, Filter)>, Vec<Event>) {
    let topic_idxs: Vec<usize> = setup
        .workload
        .topics()
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind == kind)
        .map(|(i, _)| i)
        .collect();

    // Subscriber interest follows the workload's Zipf popularity, so
    // popular events fan out to most subscribers — the §5.2 regime in
    // which small overlays pay heavy per-node delivery costs.
    use rand::{rngs::StdRng, SeedableRng};
    let zipf = psguard_analysis::ZipfSampler::new(topic_idxs.len(), 0.9);
    let mut rng = StdRng::seed_from_u64(0x51e);
    let mut subs = Vec::new();
    for c in 0..SUBSCRIBERS {
        for r in zipf.sample_distinct(TOPICS_PER_SUB, &mut rng) {
            let name = setup.workload.topics()[topic_idxs[r]].name.clone();
            subs.push((c, Filter::for_topic(name)));
        }
    }
    let events = (0..WORKLOAD_EVENTS)
        .map(|_| {
            let r = zipf.sample(&mut rng);
            setup.workload.event_for_topic(topic_idxs[r])
        })
        .collect();
    (subs, events)
}

/// Measures one throughput/latency point for a variant and broker count.
pub fn run_perf_point(variant: PerfVariant, brokers: u32, seed: u64) -> PerfPoint {
    let mut setup = PaperSetup::new(seed);
    let (subs, events) = family_workload(&mut setup, variant.kind());

    if variant == PerfVariant::Siena {
        let mut engine: Engine<Filter> = Engine::new(EngineConfig {
            broker_nodes: brokers,
            subscribers: SUBSCRIBERS,
            seed,
        });
        for (c, f) in &subs {
            engine.subscribe(*c, f.clone());
        }
        let cost = CostModel::plain();
        let q = engine.find_max_throughput(&events, SIM_SECONDS, &cost);
        let report = engine.run_poisson(&events, q * LATENCY_LOAD, LAT_SIM_SECONDS, &cost);
        return PerfPoint {
            brokers,
            throughput_eps: q,
            latency_ms: report.mean_latency_ms,
        };
    }

    // PSGuard variants: measure real crypto costs on this family, then
    // run the secure engine.
    let mut probe_sub = setup.ps.subscriber("probe");
    for (_, f) in subs.iter().take(TOPICS_PER_SUB) {
        setup
            .ps
            .authorize_subscriber(&mut probe_sub, f, 0)
            .expect("grantable");
    }
    let sample: Vec<Event> = events
        .iter()
        .filter(|e| e.topic() == subs[0].1.topic().expect("topic"))
        .cloned()
        .collect();
    let sample = if sample.is_empty() {
        vec![events[0].clone()]
    } else {
        sample
    };
    // Count the exact derivation work per event and convert it to the
    // paper's hardware (1 µs/hash, 20 µs AES per 256-byte payload), so
    // PSGuard's *relative* overhead lands at the paper's scale
    // deterministically.
    let pub_ops0 = setup.publisher.ops().total();
    let secures: Vec<SecureEvent> = sample
        .iter()
        .map(|e| setup.publisher.publish(e, 0).expect("publishable"))
        .collect();
    let pub_ops = (setup.publisher.ops().total() - pub_ops0) as f64 / sample.len() as f64;
    let sub_ops0 = probe_sub.ops().total();
    for se in &secures {
        probe_sub.decrypt(se).expect("decryptable");
    }
    let sub_ops = (probe_sub.ops().total() - sub_ops0) as f64 / secures.len() as f64;
    let costs = CryptoCosts {
        publish_us: (pub_ops * PAPER_HASH_US + PAPER_AES_US).round() as u64,
        decrypt_us: (sub_ops * PAPER_HASH_US + PAPER_AES_US).round() as u64,
        token_match_us: 1, // one HMAC per distinct token test
    };
    let mut cost = secure_cost_model(&costs);
    if variant == PerfVariant::Category {
        // Ontology (category-tree) matching was markedly slower in the
        // paper's Siena core than keyword or numeric matching — the source
        // of its ~11% throughput / ~6% latency penalty. The surcharge is
        // per unit of matching work; with the counting index each distinct
        // token/predicate is evaluated once per event rather than once per
        // table entry, so the emulated penalty is proportionally smaller
        // than the paper's per-filter scan (see EXPERIMENTS.md, Fig 9).
        cost.broker_match_us += 4;
    }

    let mut engine = SecureEngine::new(EngineConfig {
        broker_nodes: brokers,
        subscribers: SUBSCRIBERS,
        seed,
    });
    for (c, f) in &subs {
        let mut s = setup.ps.subscriber(format!("s{c}"));
        setup
            .ps
            .authorize_subscriber(&mut s, f, 0)
            .expect("grantable");
        engine.subscribe(*c, s.secure_filters().remove(0));
    }
    let secure_events: Vec<SecureEvent> = events
        .iter()
        .map(|e| setup.publisher.publish(e, 0).expect("publishable"))
        .collect();
    let q = engine.find_max_throughput(&secure_events, SIM_SECONDS, &cost);
    let report = engine.run_poisson(&secure_events, q * LATENCY_LOAD, LAT_SIM_SECONDS, &cost);
    PerfPoint {
        brokers,
        throughput_eps: q,
        latency_ms: report.mean_latency_ms,
    }
}

/// A full curve over the broker sweep, averaging each point over a few
/// seeds (near-saturation latency is noisy; the paper also averages over
/// 5 independent runs).
pub fn run_perf_series(variant: PerfVariant, seed: u64) -> Vec<PerfPoint> {
    const RUNS: u64 = 3;
    BROKER_SWEEP
        .iter()
        .map(|&b| {
            let points: Vec<PerfPoint> = (0..RUNS)
                .map(|r| run_perf_point(variant, b, seed + r * 101))
                .collect();
            PerfPoint {
                brokers: b,
                throughput_eps: points.iter().map(|p| p.throughput_eps).sum::<f64>() / RUNS as f64,
                latency_ms: points.iter().map(|p| p.latency_ms).sum::<f64>() / RUNS as f64,
            }
        })
        .collect()
}

/// One point of Figure 11: throughput and latency on the 30-broker
/// overlay vs. subscriber key-cache size, under a temporal-locality
/// (stock-quote-like) numeric stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePoint {
    /// Key-cache capacity in KB.
    pub cache_kb: usize,
    /// Saturation throughput (events/s).
    pub throughput_eps: f64,
    /// Mean latency (ms) at 90% saturation.
    pub latency_ms: f64,
    /// Derivation + decryption cost per event, in paper-hardware µs
    /// (1 µs/hash + 20 µs AES for the 256-byte payload).
    pub decrypt_us: u64,
}

/// Runs the Figure 11 cache sweep.
pub fn run_cache_sweep(cache_kbs: &[usize], seed: u64) -> Vec<CachePoint> {
    use psguard::PsGuardConfig;
    use psguard_model::{Constraint, IntRange, Op};

    let mut out = Vec::new();
    for &kb in cache_kbs {
        // Least count 1 → a 256-leaf NAKT (511 node keys ≈ 16 KB), so the
        // cache-size sweep actually exercises capacity limits.
        let schema = psguard_keys::Schema::builder()
            .numeric("value", IntRange::new(0, 255).expect("valid"), 1)
            .expect("valid nakt")
            .build();
        let ps = psguard::PsGuard::new(
            b"fig11-master",
            schema,
            PsGuardConfig {
                key_cache_bytes: kb * 1024,
                ..Default::default()
            },
        );
        let mut publisher = ps.publisher("P");
        ps.authorize_publisher(&mut publisher, "quotes", 0);

        // Temporal-locality stream (stock quotes): mostly small moves with
        // occasional jumps, wandering over the whole range so small caches
        // thrash while large ones retain the working set.
        let mut value = 128i64;
        let events: Vec<Event> = (0..256)
            .map(|i| {
                let step = match i % 7 {
                    0 => 23,
                    1 | 2 => 1,
                    3 => -2,
                    4 => 3,
                    5 => -1,
                    _ => 2,
                };
                value = (value + step).rem_euclid(256);
                Event::builder("quotes")
                    .attr("value", value)
                    .payload(vec![0u8; 256])
                    .build()
            })
            .collect();

        let filter = Filter::for_topic("quotes").with(Constraint::new(
            "value",
            Op::InRange(IntRange::new(0, 255).expect("valid")),
        ));

        // Measure the per-event decrypt cost with this cache size.
        let mut probe = ps.subscriber("probe");
        ps.authorize_subscriber(&mut probe, &filter, 0)
            .expect("grantable");
        let secure_events: Vec<SecureEvent> = events
            .iter()
            .map(|e| publisher.publish(e, 0).expect("publishable"))
            .collect();
        // Count the exact derivation work per event with the OpCounter
        // (wall-clock timing of a few µs is too noisy), then convert to
        // the paper's hardware: ~1 µs per hash on the 550 MHz Xeons, plus
        // a fixed AES-128-CBC cost for the 256-byte payload (17 blocks).
        let reps = 20u64;
        let ops_before = probe.ops().total();
        for _ in 0..reps {
            for s in &secure_events {
                probe.decrypt(s).expect("authorized");
            }
        }
        let ops_per_event =
            (probe.ops().total() - ops_before) as f64 / (reps * secure_events.len() as u64) as f64;
        let decrypt_us = (ops_per_event * PAPER_HASH_US + PAPER_AES_US).round() as u64;

        // Slow-host emulation: the paper ran on 550 MHz P-III Xeons where
        // key derivation cost tens to hundreds of µs per event; this host
        // is ~2 orders of magnitude faster, so the measured µs are scaled
        // to make the crypto *fraction* of per-node work comparable.
        // The publisher pays the same derivation (it can cache too) plus
        // encryption; already expressed in paper-µs, so no further
        // emulation factor.
        let costs = CryptoCosts {
            publish_us: decrypt_us,
            decrypt_us,
            token_match_us: 2,
        };
        let cost = secure_cost_model(&costs);

        let mut engine = SecureEngine::new(EngineConfig {
            broker_nodes: 30,
            subscribers: SUBSCRIBERS,
            seed,
        });
        for c in 0..SUBSCRIBERS {
            let mut s = ps.subscriber(format!("s{c}"));
            ps.authorize_subscriber(&mut s, &filter, 0)
                .expect("grantable");
            engine.subscribe(c, s.secure_filters().remove(0));
        }
        let q = engine.find_max_throughput(&secure_events, SIM_SECONDS, &cost);
        out.push((kb, q, decrypt_us, engine, secure_events, cost));
    }

    // Latency is compared at one common offered load (95% of the slowest
    // configuration's capacity), so cache benefits show up as shorter
    // queues rather than a moved operating point.
    let rate = out
        .iter()
        .map(|(_, q, _, _, _, _)| *q)
        .fold(f64::INFINITY, f64::min)
        * LATENCY_LOAD;
    out.into_iter()
        .map(|(kb, q, decrypt_us, mut engine, secure_events, cost)| {
            let report = engine.run_poisson(&secure_events, rate, LAT_SIM_SECONDS, &cost);
            CachePoint {
                cache_kb: kb,
                throughput_eps: q,
                latency_ms: report.mean_latency_ms,
                decrypt_us,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siena_and_secure_points_are_sane() {
        let siena = run_perf_point(PerfVariant::Siena, 6, 11);
        assert!(siena.throughput_eps > 100.0, "{siena:?}");
        assert!(siena.latency_ms > 0.0);
        let secure = run_perf_point(PerfVariant::Numeric, 6, 11);
        assert!(secure.throughput_eps > 50.0, "{secure:?}");
        // The secure variant pays a bounded overhead.
        assert!(
            secure.throughput_eps <= siena.throughput_eps * 1.1,
            "secure {} vs siena {}",
            secure.throughput_eps,
            siena.throughput_eps
        );
    }

    #[test]
    fn throughput_scales_with_brokers() {
        let small = run_perf_point(PerfVariant::Siena, 0, 12);
        let large = run_perf_point(PerfVariant::Siena, 14, 12);
        assert!(
            large.throughput_eps > small.throughput_eps,
            "overlay should scale: {small:?} vs {large:?}"
        );
    }

    #[test]
    fn cache_recovers_throughput() {
        let points = run_cache_sweep(&[0, 64], 13);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].decrypt_us <= points[0].decrypt_us,
            "caching must not increase decrypt cost: {points:?}"
        );
        assert!(points[1].throughput_eps >= points[0].throughput_eps * 0.95);
    }
}
