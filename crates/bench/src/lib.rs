//! Shared harness code for the PSGuard evaluation binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/`
//! (`table1`–`table6`, `fig3`–`fig11`) that regenerates its rows/series.
//! This library holds what they share: host-cost measurement (converting
//! hash counts to microseconds the way the paper reports µs), the
//! §5.2 deployment setup, and the interval mapping that lets the
//! subscriber-group baseline cover all four attribute families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use psguard::{PsGuard, PsGuardConfig, Publisher, Subscriber};
use psguard_analysis::{TopicKind, Workload, WorkloadConfig};
use psguard_keys::Schema;
use psguard_model::{AttrValue, CategoryPath, Filter, IntRange, Op};

/// Measures the host's one-way-hash (SHA-1) cost in microseconds per
/// operation — the unit behind Tables 1–2 and Figure 5.
pub fn hash_cost_us() -> f64 {
    let mut data = [0u8; 24];
    // Warm up, then measure a tight loop.
    for _ in 0..1000 {
        let d = psguard_crypto::h(&data);
        data[..20].copy_from_slice(&d);
    }
    let n = 20_000u32;
    let start = Instant::now();
    for _ in 0..n {
        let d = psguard_crypto::h(&data);
        data[..20].copy_from_slice(&d);
    }
    start.elapsed().as_secs_f64() * 1e6 / n as f64
}

/// Measures AES-128 block encryption cost in microseconds per block.
pub fn aes_block_us() -> f64 {
    let cipher = psguard_crypto::Aes128::new(&[7u8; 16]);
    let mut block = [0u8; 16];
    for _ in 0..1000 {
        cipher.encrypt_block(&mut block);
    }
    let n = 20_000u32;
    let start = Instant::now();
    for _ in 0..n {
        cipher.encrypt_block(&mut block);
    }
    start.elapsed().as_secs_f64() * 1e6 / n as f64
}

/// Builds the global schema for the §5.2 workload: every numeric topic
/// keys attribute `value` (range 256, lc 4), category topics key
/// `category` (height 4), string topics key `str` (prefix, max len 8).
/// Hierarchies are rooted per topic, so one schema serves all topics.
pub fn paper_schema() -> Schema {
    Schema::builder()
        .numeric("value", IntRange::new(0, 255).expect("valid"), 4)
        .expect("valid nakt")
        .category("category", 4)
        .str_prefix("str", 8)
        .build()
}

/// A ready-to-measure deployment: PSGuard service, an authorized
/// publisher (all topics, epoch 0), and the workload generator.
pub struct PaperSetup {
    /// The deployment facade.
    pub ps: PsGuard,
    /// Publisher authorized for every workload topic at epoch 0.
    pub publisher: Publisher,
    /// The workload generator.
    pub workload: Workload,
}

impl PaperSetup {
    /// Builds the §5.2 setup deterministically.
    pub fn new(seed: u64) -> Self {
        let ps = PsGuard::new(
            b"psguard-eval-master",
            paper_schema(),
            PsGuardConfig::default(),
        );
        let workload = Workload::new(WorkloadConfig::default(), seed);
        let mut publisher = ps.publisher("P");
        for t in workload.topics() {
            ps.authorize_publisher(&mut publisher, &t.name, 0);
        }
        PaperSetup {
            ps,
            publisher,
            workload,
        }
    }

    /// A subscriber with `n_topics` workload subscriptions installed.
    /// Returns the subscriber and its plaintext filters.
    pub fn subscriber(&mut self, name: &str, n_topics: usize) -> (Subscriber, Vec<Filter>) {
        let mut sub = self.ps.subscriber(name);
        let filters = self.workload.subscriptions(n_topics);
        for f in &filters {
            self.ps
                .authorize_subscriber(&mut sub, f, 0)
                .expect("workload filters are grantable");
        }
        (sub, filters)
    }
}

/// Maps a workload filter onto an integer interval so the
/// subscriber-group baseline (interval groups) covers all four families:
///
/// * numeric ranges map to themselves;
/// * a category subtree is the contiguous range of its leaf indices;
/// * a string prefix is the lexicographic range of its extensions
///   (base-5 encoding of `a`–`d` plus end-marker, max length 8);
/// * a plain topic is the whole range (one group per topic).
pub fn baseline_interval(filter: &Filter, kind: TopicKind) -> IntRange {
    const STR_BASE: i64 = 5;
    const STR_LEN: u32 = 8;
    let whole = match kind {
        TopicKind::Plain => IntRange::new(0, 0).expect("valid"),
        TopicKind::Numeric => IntRange::new(0, 255).expect("valid"),
        TopicKind::Category => IntRange::new(0, 4i64.pow(4) - 1).expect("valid"),
        TopicKind::Str => IntRange::new(0, STR_BASE.pow(STR_LEN) - 1).expect("valid"),
    };
    let Some(c) = filter.constraints().first() else {
        return whole;
    };
    match c.op() {
        Op::InRange(r) => *r,
        Op::Ge(l) => IntRange::new(*l, whole.hi()).unwrap_or(whole),
        Op::Le(u) => IntRange::new(whole.lo(), *u).unwrap_or(whole),
        Op::Gt(l) => IntRange::new(l + 1, whole.hi()).unwrap_or(whole),
        Op::Lt(u) => IntRange::new(whole.lo(), u - 1).unwrap_or(whole),
        Op::Eq(AttrValue::Int(v)) => IntRange::point(*v),
        Op::CategoryIn(path) => category_leaf_range(path),
        Op::Eq(AttrValue::Category(path)) => category_leaf_range(path),
        Op::StrPrefix(p) => string_prefix_range(p, STR_BASE, STR_LEN),
        Op::Eq(AttrValue::Str(s)) => string_prefix_range(s, STR_BASE, STR_LEN),
        _ => whole,
    }
}

/// The contiguous leaf-index range under a category node, assuming the
/// maximum fan-out of 4 at height 4 (a superset of the generated trees —
/// adequate for the baseline's interval algebra).
fn category_leaf_range(path: &CategoryPath) -> IntRange {
    let height = 4u32;
    let fanout = 4i64;
    let depth = path.depth().min(height as usize) as u32;
    let width = fanout.pow(height - depth);
    let lo: i64 = path
        .indices()
        .iter()
        .take(depth as usize)
        .fold(0i64, |acc, &i| acc * fanout + (i as i64).min(fanout - 1))
        * width;
    IntRange::new(lo, lo + width - 1).expect("non-empty")
}

/// The lexicographic index range of all strings extending `prefix`
/// (alphabet `a`–`d` mapped to digits 1–4, 0 = end marker, fixed width).
fn string_prefix_range(prefix: &str, base: i64, width: u32) -> IntRange {
    let mut lo = 0i64;
    let depth = prefix.len().min(width as usize) as u32;
    for b in prefix.bytes().take(depth as usize) {
        let digit = ((b.saturating_sub(b'a')) as i64 + 1).min(base - 1);
        lo = lo * base + digit;
    }
    let span = base.pow(width - depth);
    lo *= span;
    IntRange::new(lo, lo + span - 1).expect("non-empty")
}

/// Converts hash-operation counts to microseconds with the measured
/// per-hash cost.
pub fn hashes_to_us(hashes: f64, hash_us: f64) -> f64 {
    hashes * hash_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::Constraint;

    #[test]
    fn host_costs_are_sane() {
        let h = hash_cost_us();
        assert!(h > 0.0 && h < 100.0, "hash cost {h} µs");
        let a = aes_block_us();
        assert!(a > 0.0 && a < 100.0, "aes cost {a} µs");
    }

    #[test]
    fn paper_setup_publishes_and_grants() {
        let mut setup = PaperSetup::new(1);
        let (mut sub, filters) = setup.subscriber("S", 8);
        assert_eq!(filters.len(), 8);
        assert!(sub.key_count() >= 8);
        // Publish an event on one of the subscribed topics and decrypt it
        // if it matches.
        let topic = filters[0].topic().unwrap().to_owned();
        let idx = setup
            .workload
            .topics()
            .iter()
            .position(|t| t.name == topic)
            .unwrap();
        for _ in 0..64 {
            let e = setup.workload.event_for_topic(idx);
            let secure = setup.publisher.publish(&e, 0).unwrap();
            if filters[0].matches(&e) {
                assert!(sub.decrypt(&secure).is_ok());
                return;
            }
        }
        // Plain topics always match; constrained ones may legitimately
        // miss 64 draws only for very narrow filters.
    }

    #[test]
    fn category_ranges_nest() {
        let parent = category_leaf_range(&CategoryPath::from_indices([1]));
        let child = category_leaf_range(&CategoryPath::from_indices([1, 2]));
        assert!(parent.covers(&child));
        let sibling = category_leaf_range(&CategoryPath::from_indices([2]));
        assert!(!parent.overlaps(&sibling));
    }

    #[test]
    fn string_prefix_ranges_nest() {
        let go = string_prefix_range("bc", 5, 8);
        let goo = string_prefix_range("bcd", 5, 8);
        assert!(go.covers(&goo));
        let ms = string_prefix_range("a", 5, 8);
        assert!(!go.overlaps(&ms));
    }

    #[test]
    fn baseline_interval_for_each_family() {
        let plain = Filter::for_topic("t");
        assert_eq!(baseline_interval(&plain, TopicKind::Plain).len(), 1);
        let numeric = Filter::for_topic("t").with(Constraint::new(
            "value",
            Op::InRange(IntRange::new(10, 20).unwrap()),
        ));
        assert_eq!(baseline_interval(&numeric, TopicKind::Numeric).len(), 11);
        let cat = Filter::for_topic("t").with(Constraint::new(
            "category",
            Op::CategoryIn(CategoryPath::from_indices([0])),
        ));
        assert_eq!(baseline_interval(&cat, TopicKind::Category).len(), 64);
        let s = Filter::for_topic("t").with(Constraint::new("str", Op::StrPrefix("a".into())));
        assert_eq!(
            baseline_interval(&s, TopicKind::Str).len() as i64,
            5i64.pow(7)
        );
    }
}

pub mod keymgmt;
pub mod perf;
pub mod support;
