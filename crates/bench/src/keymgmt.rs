//! The key-management comparison experiment behind Figures 3–5: PSGuard
//! vs the subscriber-group baseline under the §5.2 workload, swept over
//! the number of subscribers `NS`.

use std::collections::HashMap;

use psguard_groupkey::{RekeyReport, RekeyStrategy, SubscriberGroupManager};
use psguard_keys::OpCounter;

use crate::{aes_block_us, baseline_interval, hash_cost_us, PaperSetup};

/// Measured quantities for one subscriber-count `NS`.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyMgmtSample {
    /// Number of active subscribers.
    pub ns: u32,
    /// Average authorization keys per subscriber, PSGuard (Figure 3).
    pub psguard_keys_per_sub: f64,
    /// Average keys per subscriber, SubscriberGroup with subset groups
    /// capped at 2^12 per topic — the paper's \[13\]-style baseline
    /// (Figure 3).
    pub group_keys_per_sub: f64,
    /// Average keys per subscriber under a charitable interval-group
    /// baseline (groups only for the subscriber sets that can actually
    /// occur for range subscriptions).
    pub group_keys_per_sub_interval: f64,
    /// Keys a publisher must hold, PSGuard (Figure 4): one topic key per
    /// published topic.
    pub psguard_keys_per_pub: f64,
    /// Keys a publisher must hold, SubscriberGroup (Figure 4): every
    /// group key of every topic it publishes on (subset model, capped).
    pub group_keys_per_pub: f64,
    /// Publisher keys under the interval-group baseline.
    pub group_keys_per_pub_interval: f64,
    /// Average KDC compute per join in milliseconds, PSGuard (Figure 5).
    pub psguard_kdc_ms: f64,
    /// Average KDC compute per join in milliseconds, SubscriberGroup.
    pub group_kdc_ms: f64,
    /// Average KDC network per join in KB, PSGuard (Figure 5).
    pub psguard_kdc_kb: f64,
    /// Average KDC network per join in KB, SubscriberGroup.
    pub group_kdc_kb: f64,
}

/// Runs the §5.2 key-management experiment for one subscriber count.
/// Every subscriber makes 32 subscriptions over the 128 Zipf topics; the
/// baseline maintains interval groups per topic.
pub fn run_key_management(ns: u32, seed: u64) -> KeyMgmtSample {
    let hash_us = hash_cost_us();
    let aes_us = aes_block_us();
    let mut setup = PaperSetup::new(seed);

    // One baseline manager per topic, lazily created.
    let mut managers: HashMap<String, SubscriberGroupManager> = HashMap::new();
    let kinds: HashMap<String, psguard_analysis::TopicKind> = setup
        .workload
        .topics()
        .iter()
        .map(|t| (t.name.clone(), t.kind))
        .collect();

    let mut ps_keys_per_sub = Vec::new();
    let mut ps_gen_ops_per_join: Vec<f64> = Vec::new();
    let mut ps_keys_per_join: Vec<f64> = Vec::new();
    let mut group_reports: Vec<RekeyReport> = Vec::new();
    let mut group_sub_topics: Vec<Vec<(String, psguard_model::IntRange)>> = Vec::new();

    for s in 0..ns {
        // PSGuard side.
        let mut sub = setup.ps.subscriber(format!("s{s}"));
        let filters = setup.workload.subscriptions(32);
        for f in &filters {
            let mut ops = OpCounter::new();
            let grant = setup
                .ps
                .kdc()
                .grant(
                    setup.ps.schema(),
                    f,
                    psguard_keys::EpochId(0),
                    &psguard_keys::TopicScope::Shared,
                    &mut ops,
                )
                .expect("workload filters grantable");
            ps_gen_ops_per_join.push(ops.total() as f64);
            ps_keys_per_join.push(grant.key_count() as f64);
            sub.install_grant(
                setup.ps.routing_token(f.topic().expect("topic")),
                f.clone(),
                grant,
            );
        }
        ps_keys_per_sub.push(sub.key_count() as f64);

        // Baseline side: the same filters become interval-group joins.
        let mut my_topics = Vec::new();
        for f in &filters {
            let topic = f.topic().expect("topic").to_owned();
            let kind = kinds[&topic];
            let interval = baseline_interval(f, kind);
            let mgr = managers.entry(topic.clone()).or_insert_with(|| {
                let whole = baseline_interval(&psguard_model::Filter::for_topic(&topic), kind);
                SubscriberGroupManager::new(whole, RekeyStrategy::Direct, topic.as_bytes())
            });
            group_reports.push(mgr.join(s as u64, interval));
            my_topics.push((topic, interval));
        }
        group_sub_topics.push(my_topics);
    }

    // Figure 3 quantities. The paper's baseline (\[13\]) binds keys to
    // *subscriber subsets*: with k co-subscribers on a topic, a subscriber
    // belongs to up to 2^(k−1) potential recipient groups. We cap the
    // per-topic count at 2^12 (a key-caching bound), as any real system
    // would.
    const SUBSET_CAP: f64 = 4096.0;
    let ps_avg_keys = ps_keys_per_sub.iter().sum::<f64>() / ps_keys_per_sub.len().max(1) as f64;
    let topic_pop: HashMap<&String, u32> = {
        let mut m = HashMap::new();
        for topics in &group_sub_topics {
            for (t, _) in topics {
                *m.entry(t).or_insert(0u32) += 1;
            }
        }
        m
    };
    let group_avg_keys = {
        let mut totals = Vec::new();
        for topics in group_sub_topics.iter() {
            let mut k = 0.0f64;
            for (topic, _) in topics {
                let co = topic_pop[topic].max(1);
                k += 2f64.powi(co.saturating_sub(1) as i32).min(SUBSET_CAP);
            }
            totals.push(k);
        }
        totals.iter().sum::<f64>() / totals.len().max(1) as f64
    };
    let group_avg_keys_interval = {
        let mut totals = Vec::new();
        for (s, topics) in group_sub_topics.iter().enumerate() {
            let mut k = 0u64;
            for (topic, _) in topics {
                k += managers[topic].keys_per_subscriber(s as u64);
            }
            totals.push(k as f64);
        }
        totals.iter().sum::<f64>() / totals.len().max(1) as f64
    };
    let group_pub_keys_interval: f64 = managers
        .values()
        .map(|m| m.publisher_key_count() as f64)
        .sum();

    // Figure 4: a publisher publishing on all topics needs every group
    // key that could encrypt one of its events.
    let ps_pub_keys = setup.workload.topics().len() as f64;
    let group_pub_keys: f64 = topic_pop
        .values()
        .map(|&k| (2f64.powi(k as i32) - 1.0).min(SUBSET_CAP))
        .sum();

    // Figure 5: average per-join KDC cost.
    let joins = group_reports.len().max(1) as f64;
    let ps_gen_avg = ps_gen_ops_per_join.iter().sum::<f64>() / joins;
    let ps_keys_avg = ps_keys_per_join.iter().sum::<f64>() / joins;
    let group_total = group_reports
        .iter()
        .fold(RekeyReport::default(), |acc, r| acc + *r);
    // Group compute: one hash per generated key plus one AES block per
    // wrapped key delivery.
    let group_compute_us = (group_total.keys_generated as f64 * hash_us
        + group_total.encryptions as f64 * aes_us)
        / joins;
    let group_net_bytes = group_total.network_bytes() as f64 / joins;

    KeyMgmtSample {
        ns,
        psguard_keys_per_sub: ps_avg_keys,
        group_keys_per_sub: group_avg_keys,
        group_keys_per_sub_interval: group_avg_keys_interval,
        psguard_keys_per_pub: ps_pub_keys,
        group_keys_per_pub: group_pub_keys,
        group_keys_per_pub_interval: group_pub_keys_interval,
        psguard_kdc_ms: ps_gen_avg * hash_us / 1000.0,
        group_kdc_ms: group_compute_us / 1000.0,
        psguard_kdc_kb: ps_keys_avg * 32.0 / 1024.0,
        group_kdc_kb: group_net_bytes / 1024.0,
    }
}

/// The paper's NS sweep for Figures 3–5.
pub const NS_SWEEP: [u32; 5] = [2, 4, 8, 16, 32];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psguard_keys_flat_group_keys_grow() {
        let small = run_key_management(4, 1);
        let large = run_key_management(32, 1);
        // PSGuard: per-subscriber keys independent of NS (within noise).
        let rel = (large.psguard_keys_per_sub - small.psguard_keys_per_sub).abs()
            / small.psguard_keys_per_sub;
        assert!(
            rel < 0.25,
            "psguard keys should be ~flat: {small:?} vs {large:?}"
        );
        // Baseline: grows substantially with NS.
        assert!(
            large.group_keys_per_sub > 1.5 * small.group_keys_per_sub,
            "group keys should grow: {} -> {}",
            small.group_keys_per_sub,
            large.group_keys_per_sub
        );
        // And the paper's headline: at NS = 32 the baseline holds many
        // more keys than PSGuard.
        assert!(large.group_keys_per_sub > 2.0 * large.psguard_keys_per_sub);
    }

    #[test]
    fn kdc_load_flat_vs_growing() {
        let small = run_key_management(4, 2);
        let large = run_key_management(32, 2);
        assert!(
            large.group_kdc_kb > small.group_kdc_kb,
            "group KDC network must grow with NS"
        );
        let rel =
            (large.psguard_kdc_kb - small.psguard_kdc_kb).abs() / small.psguard_kdc_kb.max(1e-9);
        assert!(rel < 0.25, "psguard KDC network ~flat");
    }
}
