//! Random samplers for the paper's synthetic workload (§5.2): Zipf-like
//! popularity, Gaussian subscription ranges, and uniform values.

use rand::Rng;

/// A Zipf(-like) sampler over ranks `0..n` with exponent `s`
/// (`P(rank r) ∝ (r+1)^−s`), as used for topic popularity \[16\].
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        // `n > 0` is asserted above, so the cdf has at least one entry.
        let total = cdf.last().copied().unwrap_or(1.0);
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The probability of rank `r`.
    pub fn probability(&self, r: usize) -> f64 {
        let prev = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        self.cdf[r] - prev
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draws `k` distinct ranks (k ≤ n), by rejection.
    pub fn sample_distinct(&self, k: usize, rng: &mut impl Rng) -> Vec<usize> {
        assert!(
            k <= self.len(),
            "cannot draw {k} distinct of {}",
            self.len()
        );
        let mut out = Vec::with_capacity(k);
        let mut seen = vec![false; self.len()];
        while out.len() < k {
            let r = self.sample(rng);
            if !seen[r] {
                seen[r] = true;
                out.push(r);
            }
        }
        out
    }
}

/// Draws from a normal distribution via Box–Muller (no external dep).
pub fn gaussian(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Draws a Gaussian value clamped into `[lo, hi]` and rounded to i64 —
/// how the workload draws subscription-range midpoints and widths.
pub fn gaussian_clamped(rng: &mut impl Rng, mean: f64, std_dev: f64, lo: i64, hi: i64) -> i64 {
    (gaussian(rng, mean, std_dev).round() as i64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_probabilities_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(128, 0.9);
        let total: f64 = (0..128).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..128 {
            assert!(z.probability(r) <= z.probability(r - 1));
        }
    }

    #[test]
    fn zipf_empirical_matches_head() {
        let z = ZipfSampler::new(16, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 16];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - z.probability(0)).abs() < 0.01, "p0={p0}");
        assert!(counts[0] > counts[8]);
    }

    #[test]
    fn zipf_distinct_draws() {
        let z = ZipfSampler::new(128, 0.9);
        let mut rng = StdRng::seed_from_u64(6);
        let picks = z.sample_distinct(32, &mut rng);
        assert_eq!(picks.len(), 32);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 32);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 128.0, 32.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 128.0).abs() < 0.5, "mean={mean}");
        assert!((var.sqrt() - 32.0).abs() < 0.5, "sd={}", var.sqrt());
    }

    #[test]
    fn gaussian_clamped_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let v = gaussian_clamped(&mut rng, 0.0, 100.0, -50, 50);
            assert!((-50..=50).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_zipf_rejected() {
        ZipfSampler::new(0, 1.0);
    }
}
