//! The paper's synthetic workload (§5.2).
//!
//! 128 topics with Zipf-like popularity; 32 of each family: plain topics,
//! numeric attributes (range 256, least count 4), category attributes
//! (trees of height 4, fan-out 2–4, ≈82 elements), and string attributes
//! (lengths Zipf-distributed in 1–8). Each subscriber subscribes to 32
//! topics drawn by popularity; numeric subscription ranges are Gaussian
//! (mean 128, sd 32); publications carry 256-byte payloads.

use std::collections::HashMap;

use psguard_model::{AttrValue, CategoryPath, Constraint, Event, Filter, IntRange, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::samplers::{gaussian_clamped, ZipfSampler};

/// The attribute family of a topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopicKind {
    /// Keyword-only matching.
    Plain,
    /// One numeric attribute (`value`), range 0–255, least count 4.
    Numeric,
    /// One category attribute (`category`), tree height 4, fan-out 2–4.
    Category,
    /// One string attribute (`str`), prefix matching, lengths 1–8.
    Str,
}

/// A generated category tree: fan-out per internal node.
#[derive(Debug, Clone)]
pub struct CategoryTree {
    fanout: HashMap<CategoryPath, u32>,
    height: usize,
}

impl CategoryTree {
    fn generate(rng: &mut StdRng, height: usize) -> Self {
        let mut fanout = HashMap::new();
        let mut frontier = vec![CategoryPath::root()];
        for _ in 0..height {
            let mut next = Vec::new();
            for node in frontier {
                let f = rng.gen_range(2..=4u32);
                fanout.insert(node.clone(), f);
                for c in 0..f {
                    next.push(node.child(c));
                }
            }
            frontier = next;
        }
        CategoryTree { fanout, height }
    }

    /// Total number of elements (internal + leaves).
    pub fn element_count(&self) -> usize {
        // Internal nodes plus the leaves below the deepest internal level.
        let internal = self.fanout.len();
        let leaves: u32 = self
            .fanout
            .iter()
            .filter(|(p, _)| p.depth() == self.height - 1)
            .map(|(_, f)| *f)
            .sum();
        internal + leaves as usize
    }

    /// Tree height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// A uniformly random full-depth path (an event's category).
    pub fn sample_leaf(&self, rng: &mut StdRng) -> CategoryPath {
        let mut node = CategoryPath::root();
        while let Some(&f) = self.fanout.get(&node) {
            node = node.child(rng.gen_range(0..f));
        }
        node
    }

    /// A random internal node at depth ≥ 1 (a subscription subtree).
    pub fn sample_subtree(&self, rng: &mut StdRng) -> CategoryPath {
        let depth = rng.gen_range(1..=self.height.saturating_sub(1).max(1));
        let mut node = CategoryPath::root();
        for _ in 0..depth {
            match self.fanout.get(&node) {
                Some(&f) => node = node.child(rng.gen_range(0..f)),
                None => break,
            }
        }
        node
    }
}

/// One topic of the workload.
#[derive(Debug, Clone)]
pub struct TopicSpec {
    /// Topic name (`topic000` … `topic127`).
    pub name: String,
    /// Attribute family.
    pub kind: TopicKind,
    /// The category tree, for [`TopicKind::Category`] topics.
    pub category_tree: Option<CategoryTree>,
}

/// Workload parameters (defaults = the paper's §5.2 values).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of topics.
    pub topics: usize,
    /// Zipf exponent for topic popularity.
    pub zipf_s: f64,
    /// Topics per subscriber.
    pub topics_per_subscriber: usize,
    /// Numeric attribute range size.
    pub numeric_range: i64,
    /// Numeric least count.
    pub numeric_lc: u64,
    /// Mean/sd of the Gaussian subscription-range width.
    pub range_width: (f64, f64),
    /// Category tree height.
    pub category_height: usize,
    /// Max string length (lengths are Zipf in 1..=max).
    pub string_max_len: usize,
    /// Event payload size in bytes.
    pub payload_bytes: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            topics: 128,
            zipf_s: 0.9,
            topics_per_subscriber: 32,
            numeric_range: 256,
            numeric_lc: 4,
            range_width: (128.0, 32.0),
            category_height: 4,
            string_max_len: 8,
            payload_bytes: 256,
        }
    }
}

/// The workload generator.
///
/// # Example
///
/// ```
/// use psguard_analysis::{Workload, WorkloadConfig};
///
/// let mut w = Workload::new(WorkloadConfig::default(), 42);
/// let filters = w.subscriptions(16);
/// assert_eq!(filters.len(), 16);
/// let event = w.random_event();
/// assert_eq!(event.payload().len(), 256);
/// ```
#[derive(Debug)]
pub struct Workload {
    config: WorkloadConfig,
    topics: Vec<TopicSpec>,
    popularity: ZipfSampler,
    string_len: ZipfSampler,
    rng: StdRng,
}

impl Workload {
    /// Builds the workload deterministically from a seed.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let topics = (0..config.topics)
            .map(|i| {
                let kind = match i % 4 {
                    0 => TopicKind::Plain,
                    1 => TopicKind::Numeric,
                    2 => TopicKind::Category,
                    _ => TopicKind::Str,
                };
                let category_tree = (kind == TopicKind::Category)
                    .then(|| CategoryTree::generate(&mut rng, config.category_height));
                TopicSpec {
                    name: format!("topic{i:03}"),
                    kind,
                    category_tree,
                }
            })
            .collect();
        Workload {
            popularity: ZipfSampler::new(config.topics, config.zipf_s),
            string_len: ZipfSampler::new(config.string_max_len, 1.0),
            topics,
            config,
            rng,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// All topic specs.
    pub fn topics(&self) -> &[TopicSpec] {
        &self.topics
    }

    /// Topic-popularity probabilities (Zipf), index-aligned with
    /// [`Workload::topics`].
    pub fn topic_frequencies(&self) -> Vec<f64> {
        (0..self.topics.len())
            .map(|r| self.popularity.probability(r))
            .collect()
    }

    fn random_string(&mut self) -> String {
        let len = self.string_len.sample(&mut self.rng) + 1;
        (0..len)
            .map(|_| (b'a' + self.rng.gen_range(0..4u8)) as char)
            .collect()
    }

    /// A subscription filter for the given topic index, per its family.
    pub fn subscription_for_topic(&mut self, topic_idx: usize) -> Filter {
        let spec = self.topics[topic_idx].clone();
        let base = Filter::for_topic(&spec.name);
        match spec.kind {
            TopicKind::Plain => base,
            TopicKind::Numeric => {
                let (mean, sd) = self.config.range_width;
                let width = gaussian_clamped(
                    &mut self.rng,
                    mean,
                    sd,
                    self.config.numeric_lc as i64,
                    self.config.numeric_range,
                );
                let lo = self
                    .rng
                    .gen_range(0..=(self.config.numeric_range - width).max(0));
                // `gaussian_clamped` bounds width to [lc, range] with lc ≥ 1,
                // so the subscription interval is never empty.
                let range = IntRange::new(lo, lo + width.max(1) - 1).unwrap_or(IntRange::point(lo));
                base.with(Constraint::new("value", Op::InRange(range)))
            }
            TopicKind::Category => {
                // Category topics are always constructed with a tree; an
                // inconsistent spec degrades to an unconstrained filter.
                match spec.category_tree.as_ref() {
                    Some(tree) => {
                        let node = tree.sample_subtree(&mut self.rng);
                        base.with(Constraint::new("category", Op::CategoryIn(node)))
                    }
                    None => base,
                }
            }
            TopicKind::Str => {
                let s = self.random_string();
                let plen = self.rng.gen_range(1..=s.len());
                base.with(Constraint::new("str", Op::StrPrefix(s[..plen].to_owned())))
            }
        }
    }

    /// One subscriber's filters: `topics_per_subscriber` distinct topics
    /// drawn by popularity, each with a family-appropriate constraint.
    pub fn subscriptions(&mut self, count: usize) -> Vec<Filter> {
        let picks = self.popularity.sample_distinct(count, &mut self.rng);
        picks
            .into_iter()
            .map(|t| self.subscription_for_topic(t))
            .collect()
    }

    /// An event for the given topic index.
    pub fn event_for_topic(&mut self, topic_idx: usize) -> Event {
        let spec = self.topics[topic_idx].clone();
        let mut builder = Event::builder(&spec.name).publisher("P");
        match spec.kind {
            TopicKind::Plain => {}
            TopicKind::Numeric => {
                let v = self.rng.gen_range(0..self.config.numeric_range);
                builder = builder.attr("value", AttrValue::Int(v));
            }
            TopicKind::Category => {
                if let Some(tree) = spec.category_tree.as_ref() {
                    let leaf = tree.sample_leaf(&mut self.rng);
                    builder = builder.attr("category", AttrValue::Category(leaf));
                }
            }
            TopicKind::Str => {
                let s = self.random_string();
                builder = builder.attr("str", AttrValue::Str(s));
            }
        }
        let payload: Vec<u8> = (0..self.config.payload_bytes)
            .map(|_| self.rng.gen())
            .collect();
        builder.payload(payload).build()
    }

    /// An event on a popularity-drawn topic.
    pub fn random_event(&mut self) -> Event {
        let t = self.popularity.sample(&mut self.rng);
        self.event_for_topic(t)
    }

    /// A batch of events restricted to one topic family (the per-family
    /// series of Figures 9–10).
    pub fn events_of_kind(&mut self, kind: TopicKind, count: usize) -> Vec<Event> {
        let idxs: Vec<usize> = (0..self.topics.len())
            .filter(|&i| self.topics[i].kind == kind)
            .collect();
        (0..count)
            .map(|i| self.event_for_topic(idxs[i % idxs.len()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        Workload::new(WorkloadConfig::default(), 1)
    }

    #[test]
    fn paper_topic_mix() {
        let w = workload();
        let count = |k: TopicKind| w.topics().iter().filter(|t| t.kind == k).count();
        assert_eq!(count(TopicKind::Plain), 32);
        assert_eq!(count(TopicKind::Numeric), 32);
        assert_eq!(count(TopicKind::Category), 32);
        assert_eq!(count(TopicKind::Str), 32);
    }

    #[test]
    fn category_trees_match_paper_stats() {
        let w = workload();
        let sizes: Vec<usize> = w
            .topics()
            .iter()
            .filter_map(|t| t.category_tree.as_ref())
            .map(|tr| tr.element_count())
            .collect();
        assert_eq!(sizes.len(), 32);
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        // Paper: "the average number of elements in a category tree was 82".
        assert!(
            avg > 40.0 && avg < 140.0,
            "avg category tree size {avg} out of regime"
        );
        for t in w.topics().iter().filter_map(|t| t.category_tree.as_ref()) {
            assert_eq!(t.height(), 4);
        }
    }

    #[test]
    fn subscriptions_match_their_topics_events() {
        let mut w = workload();
        // A subscription on a numeric topic must sometimes match events of
        // that topic.
        let numeric_idx = w
            .topics()
            .iter()
            .position(|t| t.kind == TopicKind::Numeric)
            .unwrap();
        let f = w.subscription_for_topic(numeric_idx);
        let mut hits = 0;
        for _ in 0..500 {
            if f.matches(&w.event_for_topic(numeric_idx)) {
                hits += 1;
            }
        }
        assert!(hits > 0, "range subscriptions should match some events");
    }

    #[test]
    fn events_carry_paper_payload() {
        let mut w = workload();
        let e = w.random_event();
        assert_eq!(e.payload().len(), 256);
    }

    #[test]
    fn per_family_event_batches() {
        let mut w = workload();
        for kind in [
            TopicKind::Plain,
            TopicKind::Numeric,
            TopicKind::Category,
            TopicKind::Str,
        ] {
            let evs = w.events_of_kind(kind, 10);
            assert_eq!(evs.len(), 10);
            match kind {
                TopicKind::Numeric => assert!(evs[0].attr("value").is_some()),
                TopicKind::Category => assert!(evs[0].attr("category").is_some()),
                TopicKind::Str => assert!(evs[0].attr("str").is_some()),
                TopicKind::Plain => assert_eq!(evs[0].attr_count(), 0),
            }
        }
    }

    #[test]
    fn subscriber_gets_distinct_topics() {
        let mut w = workload();
        let filters = w.subscriptions(32);
        let topics: std::collections::HashSet<_> = filters
            .iter()
            .map(|f| f.topic().unwrap().to_owned())
            .collect();
        assert_eq!(topics.len(), 32);
    }

    #[test]
    fn frequencies_align_with_topics() {
        let w = workload();
        let f = w.topic_frequencies();
        assert_eq!(f.len(), 128);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(f[0] > f[127]);
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = Workload::new(WorkloadConfig::default(), 9);
        let mut b = Workload::new(WorkloadConfig::default(), 9);
        assert_eq!(a.random_event(), b.random_event());
        assert_eq!(a.subscriptions(4), b.subscriptions(4));
    }
}
