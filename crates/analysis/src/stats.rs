//! Small statistics helpers and fixed-width table rendering for the
//! bench harness (every `tableN`/`figN` binary prints through these).

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes summary statistics; an empty sample yields zeros.
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary {
            n: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
        max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// The `p`-quantile (0 ≤ p ≤ 1) by nearest-rank on a copy of the sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let idx = ((p.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
    v[idx]
}

/// A fixed-width text table, printed row by row — the output format of
/// the experiment harness.
///
/// # Example
///
/// ```
/// use psguard_analysis::TextTable;
///
/// let mut t = TextTable::new(&["R", "# Keys", "Key Gen (µs)"]);
/// t.row(&["10^2", "12", "23.66"]);
/// let s = t.render();
/// assert!(s.contains("# Keys"));
/// assert!(s.contains("23.66"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (missing cells render empty; extra cells are kept).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of formatted floats (2 decimal places).
    pub fn row_f64(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.2}")));
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (w, h) in widths.iter_mut().zip(&self.headers) {
            *w = (*w).max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width.saturating_sub(cell.chars().count());
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = summarize(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 0.5), 50.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["alpha", "1"]);
        t.row_f64("beta", &[1.23456]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        assert!(lines[3].contains("1.23"));
    }
}
