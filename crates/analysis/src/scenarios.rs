//! Adversarial workload scenarios for the end-to-end macro-bench and
//! the chaos suite.
//!
//! A [`ScenarioTrace`] is a pure-data script — initial subscriptions,
//! an ordered publish stream, churn operations and revocations pinned
//! to positions in that stream — generated deterministically from a
//! seed. The same trace drives two very different consumers:
//!
//! * the `e2e_scaling` bench replays it against a `ShardedPipeline`
//!   (publisher encrypt → match → wire fan-out) to measure throughput
//!   under adversarial shapes, and
//! * the chaos suite replays it through the overlay engine under a
//!   seeded `FaultPlan` and asserts exactly-once delivery.
//!
//! Topic popularity is Zipf-skewed ([`ZipfSampler`]) as in §5.2; each
//! [`ScenarioKind`] then distorts the steady state in one adversarial
//! direction: a flash crowd collapsing onto one hot topic, rolling
//! churn waves, a revocation storm, or same-topic publisher bursts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::samplers::ZipfSampler;

/// The adversarial shape a scenario trace exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Zipf-popular topics, uniform values, no churn — the baseline.
    Steady,
    /// Mid-trace, publishes collapse onto the hottest topic while a
    /// wave of new subscribers joins it just beforehand.
    FlashCrowd,
    /// Rolling waves of unsubscribe-then-resubscribe over the trace.
    ChurnWave,
    /// A burst of client revocations concentrated mid-trace.
    RevocationStorm,
    /// Publishers emit long same-topic runs instead of mixing topics.
    PublisherBurst,
}

impl ScenarioKind {
    /// Every scenario kind, in matrix order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Steady,
        ScenarioKind::FlashCrowd,
        ScenarioKind::ChurnWave,
        ScenarioKind::RevocationStorm,
        ScenarioKind::PublisherBurst,
    ];

    /// Stable lowercase name (JSON keys, test labels).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Steady => "steady",
            ScenarioKind::FlashCrowd => "flash_crowd",
            ScenarioKind::ChurnWave => "churn_wave",
            ScenarioKind::RevocationStorm => "revocation_storm",
            ScenarioKind::PublisherBurst => "publisher_burst",
        }
    }
}

/// Parameters for [`ScenarioTrace::generate`].
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Which adversarial shape to generate.
    pub kind: ScenarioKind,
    /// Distinct topics (Zipf ranks); clamped to at least 1.
    pub topics: usize,
    /// Zipf exponent for topic popularity.
    pub zipf_s: f64,
    /// Initial subscriber clients (ids `0..subscribers`).
    pub subscribers: u32,
    /// Publish operations in the trace.
    pub events: usize,
    /// Attribute values are drawn uniformly from `0..value_range`.
    pub value_range: i64,
    /// Width of each subscription's value range.
    pub sub_width: i64,
    /// RNG seed; equal seeds yield bit-identical traces.
    pub seed: u64,
}

impl ScenarioConfig {
    /// A small default sized for tests: 16 topics, 32 subscribers,
    /// 200 events.
    pub fn small(kind: ScenarioKind, seed: u64) -> Self {
        ScenarioConfig {
            kind,
            topics: 16,
            zipf_s: 1.1,
            subscribers: 32,
            events: 200,
            value_range: 256,
            sub_width: 96,
            seed,
        }
    }
}

/// One subscription: a client interested in `topic` with an inclusive
/// value range `[lo, hi]` on the numeric attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscription {
    /// Subscriber client id.
    pub client: u32,
    /// Topic rank the subscription covers.
    pub topic: u32,
    /// Inclusive lower bound on the attribute.
    pub lo: i64,
    /// Inclusive upper bound on the attribute.
    pub hi: i64,
}

/// One publish: an event on `topic` carrying attribute value `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishOp {
    /// Topic rank published to.
    pub topic: u32,
    /// Numeric attribute value.
    pub value: i64,
    /// Burst id: consecutive publishes sharing a burst id came from one
    /// publisher burst (always 0 outside [`ScenarioKind::PublisherBurst`]).
    pub burst: u32,
}

/// Whether a churn operation adds or removes the subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// Subscribe before the pinned publish.
    Join,
    /// Unsubscribe before the pinned publish.
    Leave,
}

/// A churn operation pinned to a position in the publish stream: apply
/// it before publishing event number `at_event`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnOp {
    /// Publish index this op precedes.
    pub at_event: usize,
    /// Join or leave.
    pub kind: ChurnKind,
    /// The subscription added or removed.
    pub sub: Subscription,
}

/// A revocation pinned to a position in the publish stream: the client
/// loses every subscription before event number `at_event` is published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevokeOp {
    /// Publish index this revocation precedes.
    pub at_event: usize,
    /// Client revoked.
    pub client: u32,
}

/// A deterministic, replayable workload script (see module docs).
#[derive(Debug, Clone)]
pub struct ScenarioTrace {
    /// The shape this trace exercises.
    pub kind: ScenarioKind,
    /// Seed it was generated from.
    pub seed: u64,
    /// Subscriptions in place before the first publish.
    pub initial: Vec<Subscription>,
    /// The ordered publish stream.
    pub publishes: Vec<PublishOp>,
    /// Churn operations, sorted by `at_event`.
    pub churn: Vec<ChurnOp>,
    /// Revocations, sorted by `at_event`.
    pub revocations: Vec<RevokeOp>,
}

/// Draws a subscription for `client`: Zipf topic, range of width
/// `sub_width` placed uniformly inside `0..value_range`.
fn draw_sub(
    client: u32,
    zipf: &ZipfSampler,
    cfg: &ScenarioConfig,
    rng: &mut StdRng,
) -> Subscription {
    let topic = zipf.sample(rng) as u32;
    let width = cfg.sub_width.clamp(1, cfg.value_range.max(1));
    let lo_max = (cfg.value_range - width).max(1);
    let lo = rng.gen_range(0..lo_max);
    Subscription {
        client,
        topic,
        lo,
        hi: lo + width - 1,
    }
}

/// Draws a steady-state publish: Zipf topic, uniform value.
fn draw_publish(zipf: &ZipfSampler, cfg: &ScenarioConfig, rng: &mut StdRng) -> PublishOp {
    PublishOp {
        topic: zipf.sample(rng) as u32,
        value: rng.gen_range(0..cfg.value_range.max(1)),
        burst: 0,
    }
}

impl ScenarioTrace {
    /// Generates the trace for `cfg`. Deterministic: equal configs
    /// (including `seed`) yield identical traces.
    pub fn generate(cfg: &ScenarioConfig) -> ScenarioTrace {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let zipf = ZipfSampler::new(cfg.topics.max(1), cfg.zipf_s);

        let initial: Vec<Subscription> = (0..cfg.subscribers)
            .map(|c| draw_sub(c, &zipf, cfg, &mut rng))
            .collect();

        let mut publishes: Vec<PublishOp> = (0..cfg.events)
            .map(|_| draw_publish(&zipf, cfg, &mut rng))
            .collect();
        let mut churn = Vec::new();
        let mut revocations = Vec::new();

        let n = cfg.events;
        match cfg.kind {
            ScenarioKind::Steady => {}
            ScenarioKind::FlashCrowd => {
                // The middle third of the stream collapses onto the
                // hottest topic (rank 0); a join wave of fresh clients
                // subscribes to it right before the crowd arrives.
                let (start, end) = (n / 3, (2 * n) / 3);
                for p in &mut publishes[start..end] {
                    p.topic = 0;
                }
                let wave = (cfg.subscribers / 4).max(1);
                for w in 0..wave {
                    let client = cfg.subscribers + w;
                    let mut sub = draw_sub(client, &zipf, cfg, &mut rng);
                    sub.topic = 0;
                    churn.push(ChurnOp {
                        at_event: start,
                        kind: ChurnKind::Join,
                        sub,
                    });
                }
            }
            ScenarioKind::ChurnWave => {
                // Rolling waves: at each wave front a slice of the
                // initial population leaves, then rejoins (same
                // subscription) at the next front.
                let waves = 8usize.min(n.max(1));
                let slice = (initial.len() / waves.max(1)).max(1);
                for w in 0..waves {
                    let at = w * n / waves;
                    let rejoin_at = ((w + 1) * n / waves).min(n);
                    for s in initial.iter().skip(w * slice).take(slice) {
                        churn.push(ChurnOp {
                            at_event: at,
                            kind: ChurnKind::Leave,
                            sub: *s,
                        });
                        churn.push(ChurnOp {
                            at_event: rejoin_at,
                            kind: ChurnKind::Join,
                            sub: *s,
                        });
                    }
                }
            }
            ScenarioKind::RevocationStorm => {
                // A quarter of the clients revoked in a burst around the
                // middle of the stream.
                let storm = (cfg.subscribers / 4).max(1);
                let at = n / 2;
                for k in 0..storm {
                    // Spread over a short window so revocations interleave
                    // with publishes instead of landing as one batch.
                    let jitter = rng.gen_range(0..(n / 8).max(1));
                    // Widen before multiplying: k * subscribers overflows
                    // u32 once subscribers·(subscribers/4) exceeds 2^32
                    // (~131k subscribers), which used to wrap most revoked
                    // ids into a tiny duplicated range at the 1M scale.
                    let client =
                        u64::from(k) * u64::from(cfg.subscribers.max(1)) / u64::from(storm);
                    revocations.push(RevokeOp {
                        at_event: (at + jitter).min(n),
                        client: client as u32,
                    });
                }
                revocations.sort_by_key(|r| (r.at_event, r.client));
                revocations.dedup_by_key(|r| r.client);
            }
            ScenarioKind::PublisherBurst => {
                // Rewrite the stream as back-to-back same-topic runs of
                // 8–32 events, each tagged with its burst id.
                let mut i = 0usize;
                let mut burst = 0u32;
                while i < n {
                    let run = rng.gen_range(8usize..=32).min(n - i);
                    let topic = zipf.sample(&mut rng) as u32;
                    for p in &mut publishes[i..i + run] {
                        p.topic = topic;
                        p.burst = burst;
                    }
                    burst += 1;
                    i += run;
                }
            }
        }

        churn.sort_by_key(|c| c.at_event);
        ScenarioTrace {
            kind: cfg.kind,
            seed: cfg.seed,
            initial,
            publishes,
            churn,
            revocations,
        }
    }

    /// The highest client id the trace touches (initial or churned-in),
    /// or `None` for an empty trace.
    pub fn max_client(&self) -> Option<u32> {
        self.initial
            .iter()
            .map(|s| s.client)
            .chain(self.churn.iter().map(|c| c.sub.client))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_by_topic(trace: &ScenarioTrace, topics: usize) -> Vec<usize> {
        let mut counts = vec![0usize; topics];
        for p in &trace.publishes {
            counts[p.topic as usize] += 1;
        }
        counts
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_differ() {
        for kind in ScenarioKind::ALL {
            let a = ScenarioTrace::generate(&ScenarioConfig::small(kind, 7));
            let b = ScenarioTrace::generate(&ScenarioConfig::small(kind, 7));
            assert_eq!(a.initial, b.initial, "{}", kind.name());
            assert_eq!(a.publishes, b.publishes, "{}", kind.name());
            assert_eq!(a.churn, b.churn, "{}", kind.name());
            assert_eq!(a.revocations, b.revocations, "{}", kind.name());

            let c = ScenarioTrace::generate(&ScenarioConfig::small(kind, 8));
            assert!(
                a.initial != c.initial || a.publishes != c.publishes,
                "{}: different seeds should differ",
                kind.name()
            );
        }
    }

    #[test]
    fn steady_is_zipf_skewed_with_no_churn() {
        let cfg = ScenarioConfig::small(ScenarioKind::Steady, 3);
        let trace = ScenarioTrace::generate(&cfg);
        assert!(trace.churn.is_empty());
        assert!(trace.revocations.is_empty());
        assert_eq!(trace.publishes.len(), cfg.events);
        let counts = counts_by_topic(&trace, cfg.topics);
        assert!(
            counts[0] > counts[cfg.topics - 1],
            "rank 0 should outdraw the coldest rank: {counts:?}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_middle_third_on_topic_zero() {
        let cfg = ScenarioConfig::small(ScenarioKind::FlashCrowd, 11);
        let trace = ScenarioTrace::generate(&cfg);
        let (start, end) = (cfg.events / 3, 2 * cfg.events / 3);
        assert!(trace.publishes[start..end].iter().all(|p| p.topic == 0));
        let joins: Vec<_> = trace
            .churn
            .iter()
            .filter(|c| c.kind == ChurnKind::Join)
            .collect();
        assert!(!joins.is_empty());
        assert!(joins
            .iter()
            .all(|c| c.sub.topic == 0 && c.at_event == start));
        assert!(
            joins.iter().all(|c| c.sub.client >= cfg.subscribers),
            "flash-crowd joiners are fresh clients"
        );
    }

    #[test]
    fn churn_wave_pairs_every_leave_with_a_rejoin() {
        let cfg = ScenarioConfig::small(ScenarioKind::ChurnWave, 5);
        let trace = ScenarioTrace::generate(&cfg);
        let leaves: Vec<_> = trace
            .churn
            .iter()
            .filter(|c| c.kind == ChurnKind::Leave)
            .collect();
        assert!(!leaves.is_empty());
        for l in &leaves {
            assert!(
                trace.churn.iter().any(|c| c.kind == ChurnKind::Join
                    && c.sub == l.sub
                    && c.at_event >= l.at_event),
                "leave of {:?} has no later rejoin",
                l.sub
            );
        }
        assert!(trace
            .churn
            .windows(2)
            .all(|w| w[0].at_event <= w[1].at_event));
    }

    #[test]
    fn revocation_storm_revokes_distinct_clients_mid_trace() {
        let cfg = ScenarioConfig::small(ScenarioKind::RevocationStorm, 9);
        let trace = ScenarioTrace::generate(&cfg);
        assert!(!trace.revocations.is_empty());
        let mut clients: Vec<u32> = trace.revocations.iter().map(|r| r.client).collect();
        clients.sort_unstable();
        clients.dedup();
        assert_eq!(clients.len(), trace.revocations.len(), "distinct clients");
        assert!(trace
            .revocations
            .iter()
            .all(|r| r.at_event >= cfg.events / 2 && r.at_event <= cfg.events));
    }

    #[test]
    fn publisher_burst_runs_share_topic_and_id() {
        let cfg = ScenarioConfig::small(ScenarioKind::PublisherBurst, 13);
        let trace = ScenarioTrace::generate(&cfg);
        let mut bursts = 0u32;
        for pair in trace.publishes.windows(2) {
            if pair[0].burst == pair[1].burst {
                assert_eq!(pair[0].topic, pair[1].topic, "burst mixes topics");
            } else {
                assert_eq!(pair[1].burst, pair[0].burst + 1, "burst ids are dense");
                bursts += 1;
            }
        }
        assert!(bursts >= 2, "200 events at <=32/run must span >=3 bursts");
    }

    #[test]
    fn revocation_storm_survives_large_populations() {
        // Regression: `k * subscribers` overflowed u32 above ~131k
        // subscribers (debug panic, silent wrap in release), collapsing
        // most revoked ids into a small duplicated range.
        let cfg = ScenarioConfig {
            kind: ScenarioKind::RevocationStorm,
            topics: 4,
            zipf_s: 1.1,
            subscribers: 200_000,
            events: 16,
            value_range: 64,
            sub_width: 16,
            seed: 1,
        };
        let trace = ScenarioTrace::generate(&cfg);
        let n = trace.revocations.len();
        assert_eq!(n, 50_000);
        let mut clients: Vec<u32> = trace.revocations.iter().map(|r| r.client).collect();
        clients.sort_unstable();
        clients.dedup();
        assert_eq!(clients.len(), n, "revoked clients must be distinct");
        assert!(clients.iter().all(|&c| c < cfg.subscribers));
        // The storm spans the whole id space, not a wrapped prefix.
        assert!(*clients.last().unwrap() > cfg.subscribers / 2);
    }

    #[test]
    fn max_client_covers_churned_in_clients() {
        let cfg = ScenarioConfig::small(ScenarioKind::FlashCrowd, 2);
        let trace = ScenarioTrace::generate(&cfg);
        let max = trace.max_client().expect("non-empty");
        assert!(max >= cfg.subscribers, "joiners extend the client space");
    }
}
