//! Analytical models, synthetic workload generation and statistics for
//! the PSGuard evaluation.
//!
//! Four pieces:
//!
//! * model-level functions ([`nakt_max_costs`], [`nakt_avg_costs`],
//!   [`kdc_costs`], [`subscriber_costs`], [`cost_ratio_lower_bound`],
//!   [`ChurnModel`]) — the closed forms of §3.2.2 behind Tables 1–6;
//! * [`Workload`] — the §5.2 synthetic workload: 128 Zipf-popular topics
//!   (32 plain / numeric / category / string), Gaussian subscription
//!   ranges, 256-byte payloads;
//! * [`ScenarioTrace`] — seeded adversarial workload scripts (flash
//!   crowds, churn waves, revocation storms, publisher bursts) replayed
//!   by the `e2e_scaling` macro-bench and the chaos suite;
//! * [`summarize`] / [`percentile`] / [`TextTable`] — the statistics and
//!   fixed-width rendering used by every `tableN`/`figN` harness binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod models;
mod samplers;
mod scenarios;
mod stats;
mod workload;

pub use churn::{simulate_churn, ChurnEvent, ChurnTrace};
pub use models::{
    cost_ratio_lower_bound, kdc_costs, nakt_avg_costs, nakt_max_costs, subscriber_costs,
    ChurnModel, KdcCostRow, NaktCosts, SubscriberCostRow,
};
pub use samplers::{gaussian, gaussian_clamped, ZipfSampler};
pub use scenarios::{
    ChurnKind, ChurnOp, PublishOp, RevokeOp, ScenarioConfig, ScenarioKind, ScenarioTrace,
    Subscription,
};
pub use stats::{percentile, summarize, Summary, TextTable};
pub use workload::{CategoryTree, TopicKind, TopicSpec, Workload, WorkloadConfig};
