//! The closed-form cost models of §3.2.2 — the formulas behind Tables 1–6.
//!
//! All costs are in primitive operations (hash invocations, key messages);
//! the bench harness converts hashes to microseconds using the measured
//! per-hash cost on the host, mirroring how the paper reports µs on its
//! 550 MHz Xeons.

/// log₂ helper used throughout the models.
fn lg(x: f64) -> f64 {
    x.log2()
}

/// Per-subscription key counts and costs for the PSGuard key hierarchy
/// over a numeric attribute of effective range `r = |R|/lc`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaktCosts {
    /// Number of authorization keys.
    pub keys: f64,
    /// KDC key-generation cost in hash operations.
    pub gen_hashes: f64,
    /// Subscriber key-derivation cost in hash operations.
    pub derive_hashes: f64,
}

/// Worst-case costs for any subscription over effective range `r`
/// (Table 1): `2·log₂r − 2` keys, `4·log₂r − 2` generation hashes,
/// `log₂r` derivation hashes.
pub fn nakt_max_costs(r: f64) -> NaktCosts {
    NaktCosts {
        keys: (2.0 * lg(r) - 2.0).max(1.0),
        gen_hashes: (4.0 * lg(r) - 2.0).max(1.0),
        derive_hashes: lg(r).max(1.0),
    }
}

/// Average costs for a uniformly random subscription of width `phi` over
/// effective range `r` (Table 2): `log₂φ` keys, `log₂r + log₂φ − 1`
/// generation hashes, `log₂φ` derivation hashes.
pub fn nakt_avg_costs(r: f64, phi: f64) -> NaktCosts {
    NaktCosts {
        keys: lg(phi).max(1.0),
        gen_hashes: (lg(r) + lg(phi) - 1.0).max(1.0),
        derive_hashes: lg(phi).max(1.0),
    }
}

/// One row of the KDC-cost comparison (Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct KdcCostRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Key messages per join.
    pub join_messages: f64,
    /// Hash operations per join at the KDC.
    pub join_compute_hashes: f64,
    /// Keys stored at the KDC.
    pub storage_keys: f64,
    /// Whether the KDC is stateless.
    pub stateless: bool,
}

/// Table 3: KDC costs per join, for average subscription width `phi`,
/// range `r`, and `ns` active subscribers.
pub fn kdc_costs(ns: f64, r: f64, phi: f64) -> [KdcCostRow; 2] {
    [
        KdcCostRow {
            scheme: "PSGuard",
            join_messages: lg(phi),
            join_compute_hashes: 2.0 * lg(phi),
            storage_keys: 1.0,
            stateless: true,
        },
        KdcCostRow {
            scheme: "SubscriberGroup",
            join_messages: 6.0 * ns * phi / r,
            join_compute_hashes: 6.0 * ns * phi / r,
            storage_keys: 2.0 * ns,
            stateless: false,
        },
    ]
}

/// One row of the subscriber-cost comparison (Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriberCostRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Keys delivered to a new subscriber at join.
    pub join_messages_new: f64,
    /// Key updates pushed to existing subscribers per join.
    pub join_messages_active: f64,
    /// Keys a subscriber stores.
    pub storage_keys: f64,
    /// Event-processing cost: decryptions.
    pub event_decrypts: f64,
    /// Event-processing cost: hash operations (key derivation).
    pub event_hashes: f64,
}

/// Table 4: per-subscriber costs.
pub fn subscriber_costs(ns: f64, r: f64, phi: f64) -> [SubscriberCostRow; 2] {
    [
        SubscriberCostRow {
            scheme: "PSGuard",
            join_messages_new: lg(phi),
            join_messages_active: 0.0,
            storage_keys: lg(phi),
            event_decrypts: 1.0,
            event_hashes: lg(phi),
        },
        SubscriberCostRow {
            scheme: "SubscriberGroup",
            join_messages_new: 2.0 * ns * phi / r,
            join_messages_active: 4.0 * ns * phi / r,
            storage_keys: 2.0 * ns * phi / r,
            event_decrypts: 1.0,
            event_hashes: 0.0,
        },
    ]
}

/// The theoretical lower bound on the messaging-cost ratio
/// `C_subscribergroup : C_psguard = 6·NS·φ / (R·log₂φ)` (Tables 5–6).
///
/// The bound assumes uniformly random subscription ranges — the *best*
/// case for the subscriber-group approach; real (heavy-tailed) interest
/// distributions only increase the ratio.
pub fn cost_ratio_lower_bound(ns: f64, r: f64, phi: f64) -> f64 {
    6.0 * ns * phi / (r * lg(phi))
}

/// Steady-state quantities of the M/M/N subscriber churn model used by
/// the quantitative analysis (arrival rate `lambda` per inactive
/// subscriber, departure rate `mu` per active subscriber, `n` total).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Total subscribers (active + inactive).
    pub n: f64,
    /// Arrival rate per inactive subscriber.
    pub lambda: f64,
    /// Departure rate per active subscriber.
    pub mu: f64,
}

impl ChurnModel {
    /// Average number of active subscribers `NS = N·λ/(λ+µ)`.
    pub fn active_subscribers(&self) -> f64 {
        self.n * self.lambda / (self.lambda + self.mu)
    }

    /// Steady-state join (= leave) rate `N·λµ/(λ+µ)`.
    pub fn join_rate(&self) -> f64 {
        self.n * self.lambda * self.mu / (self.lambda + self.mu)
    }

    /// Total messaging cost over an epoch of length `t` for both schemes:
    /// `(C_subscribergroup, C_psguard)`.
    pub fn epoch_messaging_costs(&self, t: f64, r: f64, phi: f64) -> (f64, f64) {
        let joins = self.join_rate() * t;
        let ns = self.active_subscribers();
        let group = joins * 6.0 * ns * phi / r;
        let psguard = joins * phi.log2();
        (group, psguard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        // Paper Table 1 (lc = 1): R = 10² → 12 keys; R = 10⁴ → 26 keys.
        let c2 = nakt_max_costs(1e2);
        assert!((c2.keys - 11.29).abs() < 0.1);
        assert!((c2.gen_hashes - 24.58).abs() < 0.1);
        assert!((c2.derive_hashes - 6.64).abs() < 0.1);
        let c4 = nakt_max_costs(1e4);
        assert!((c4.keys - 24.6).abs() < 0.2);
        assert!(c4.keys.round() >= 24.0 && c4.keys.round() <= 26.0);
    }

    #[test]
    fn table2_values() {
        // R = 10³: φ = 10 → 3.32 keys and 3.32 derive hashes.
        let c = nakt_avg_costs(1e3, 10.0);
        assert!((c.keys - 3.32).abs() < 0.01);
        assert!((c.derive_hashes - 3.32).abs() < 0.01);
        assert!(c.gen_hashes > c.keys);
    }

    #[test]
    fn table5_ratio_row() {
        // NS = 10³, R = 10⁴: φ = 10 → 1.81; φ = 10³ → 60.18.
        assert!((cost_ratio_lower_bound(1e3, 1e4, 10.0) - 1.81).abs() < 0.01);
        assert!((cost_ratio_lower_bound(1e3, 1e4, 1e2) - 9.04).abs() < 0.01);
        assert!((cost_ratio_lower_bound(1e3, 1e4, 1e3) - 60.18).abs() < 0.05);
        assert!((cost_ratio_lower_bound(1e3, 1e4, 1e4) - 451.81).abs() < 0.5);
    }

    #[test]
    fn table6_ratio_column() {
        // φ = 100, R = 10⁴: NS = 10 → 0.09; NS = 10⁴ → 90.36.
        assert!((cost_ratio_lower_bound(10.0, 1e4, 100.0) - 0.09).abs() < 0.005);
        assert!((cost_ratio_lower_bound(1e2, 1e4, 100.0) - 0.90).abs() < 0.01);
        assert!((cost_ratio_lower_bound(1e3, 1e4, 100.0) - 9.04).abs() < 0.05);
        assert!((cost_ratio_lower_bound(1e4, 1e4, 100.0) - 90.36).abs() < 0.5);
    }

    #[test]
    fn kdc_costs_structure() {
        let [ps, group] = kdc_costs(1000.0, 1e4, 100.0);
        assert!(ps.stateless && !group.stateless);
        assert!(ps.storage_keys < group.storage_keys);
        assert!(ps.join_messages < group.join_messages);
    }

    #[test]
    fn subscriber_costs_structure() {
        let [ps, group] = subscriber_costs(1000.0, 1e4, 100.0);
        assert_eq!(ps.join_messages_active, 0.0);
        assert!(group.join_messages_active > 0.0);
        assert!(ps.event_hashes > 0.0);
        assert_eq!(group.event_hashes, 0.0);
    }

    #[test]
    fn churn_model_steady_state() {
        let m = ChurnModel {
            n: 1000.0,
            lambda: 1.0,
            mu: 3.0,
        };
        assert!((m.active_subscribers() - 250.0).abs() < 1e-9);
        assert!((m.join_rate() - 750.0).abs() < 1e-9);
        let (group, psguard) = m.epoch_messaging_costs(1.0, 1e4, 100.0);
        assert!(group > psguard);
    }

    #[test]
    fn ratio_can_favor_groups_for_tiny_ns() {
        // Table 6's first row: NS = 10 gives ratio < 1 (groups win).
        assert!(cost_ratio_lower_bound(10.0, 1e4, 100.0) < 1.0);
        assert!(cost_ratio_lower_bound(1e4, 1e4, 100.0) > 1.0);
    }

    #[test]
    fn small_ranges_clamped() {
        let c = nakt_max_costs(2.0);
        assert!(c.keys >= 1.0 && c.gen_hashes >= 1.0 && c.derive_hashes >= 1.0);
    }
}
