//! A stochastic M/M/N subscriber-churn simulator (§3.2.2's model),
//! validating the closed forms in [`crate::ChurnModel`] and feeding the
//! epoch-cost comparison with realistic join/leave traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::models::ChurnModel;

/// One membership change in a churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Subscriber `id` became active.
    Join(u64),
    /// Subscriber `id` became inactive.
    Leave(u64),
}

/// Result of a churn simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTrace {
    /// Timestamped events `(time, event)`.
    pub events: Vec<(f64, ChurnEvent)>,
    /// Time-weighted average number of active subscribers.
    pub avg_active: f64,
    /// Joins per unit time.
    pub join_rate: f64,
    /// Final active-set size.
    pub final_active: usize,
}

/// Simulates the M/M/N model with Gillespie's algorithm: each inactive
/// subscriber joins at rate λ, each active one leaves at rate µ.
///
/// # Panics
///
/// Panics when the model has no subscribers or non-positive rates.
pub fn simulate_churn(model: &ChurnModel, horizon: f64, seed: u64) -> ChurnTrace {
    assert!(model.n >= 1.0, "need at least one subscriber");
    assert!(
        model.lambda > 0.0 && model.mu > 0.0,
        "rates must be positive"
    );
    let n = model.n as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<bool> = vec![false; n as usize];
    let mut active_count = 0usize;
    let mut t = 0.0f64;
    let mut events = Vec::new();
    let mut weighted_active = 0.0f64;
    let mut joins = 0u64;

    while t < horizon {
        let inactive = n as usize - active_count;
        let join_rate = model.lambda * inactive as f64;
        let leave_rate = model.mu * active_count as f64;
        let total = join_rate + leave_rate;
        if total <= 0.0 {
            break;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let dt = -u.ln() / total;
        if t + dt > horizon {
            weighted_active += active_count as f64 * (horizon - t);
            break;
        }
        weighted_active += active_count as f64 * dt;
        t += dt;

        let is_join = rng.gen_range(0.0..total) < join_rate;
        if is_join {
            // Pick a uniformly random inactive subscriber.
            let mut pick = rng.gen_range(0..inactive);
            for (id, a) in active.iter_mut().enumerate() {
                if !*a {
                    if pick == 0 {
                        *a = true;
                        active_count += 1;
                        joins += 1;
                        events.push((t, ChurnEvent::Join(id as u64)));
                        break;
                    }
                    pick -= 1;
                }
            }
        } else {
            let mut pick = rng.gen_range(0..active_count);
            for (id, a) in active.iter_mut().enumerate() {
                if *a {
                    if pick == 0 {
                        *a = false;
                        active_count -= 1;
                        events.push((t, ChurnEvent::Leave(id as u64)));
                        break;
                    }
                    pick -= 1;
                }
            }
        }
    }

    ChurnTrace {
        avg_active: weighted_active / horizon,
        join_rate: joins as f64 / horizon,
        final_active: active_count,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ChurnModel {
        ChurnModel {
            n: 400.0,
            lambda: 1.0,
            mu: 3.0,
        }
    }

    #[test]
    fn steady_state_matches_closed_form() {
        let m = model();
        // Long horizon so the transient from the all-inactive start fades.
        let trace = simulate_churn(&m, 200.0, 11);
        let expect_active = m.active_subscribers(); // 100
        assert!(
            (trace.avg_active - expect_active).abs() / expect_active < 0.08,
            "avg_active={} expected≈{expect_active}",
            trace.avg_active
        );
        let expect_joins = m.join_rate(); // 300/unit time
        assert!(
            (trace.join_rate - expect_joins).abs() / expect_joins < 0.08,
            "join_rate={} expected≈{expect_joins}",
            trace.join_rate
        );
    }

    #[test]
    fn trace_is_consistent() {
        let trace = simulate_churn(&model(), 5.0, 3);
        // Events are time-ordered and the running balance matches.
        let mut last_t = 0.0;
        let mut balance = 0i64;
        for (t, e) in &trace.events {
            assert!(*t >= last_t);
            last_t = *t;
            match e {
                ChurnEvent::Join(_) => balance += 1,
                ChurnEvent::Leave(_) => balance -= 1,
            }
            assert!(balance >= 0);
        }
        assert_eq!(balance as usize, trace.final_active);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_churn(&model(), 3.0, 9);
        let b = simulate_churn(&model(), 3.0, 9);
        assert_eq!(a, b);
        let c = simulate_churn(&model(), 3.0, 10);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn no_subscriber_joins_twice_without_leaving() {
        let trace = simulate_churn(&model(), 4.0, 5);
        let mut active = std::collections::HashSet::new();
        for (_, e) in &trace.events {
            match e {
                ChurnEvent::Join(id) => assert!(active.insert(*id), "double join of {id}"),
                ChurnEvent::Leave(id) => assert!(active.remove(id), "leave of inactive {id}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rates_rejected() {
        simulate_churn(
            &ChurnModel {
                n: 10.0,
                lambda: 0.0,
                mu: 1.0,
            },
            1.0,
            0,
        );
    }
}
