//! The tokenization PRF `F` (Song–Wagner–Perrig searchable encryption).
//!
//! The KDC issues a topic token `T(w) = F_{rk(KDC)}(w)`. A publisher tags an
//! event with `⟨r, F_{T(w)}(r)⟩` for a fresh nonce `r`, and a broker holding
//! the subscription token `tok` tests `F_tok(r) == match` — learning only
//! whether the event matches, never the topic `w` itself.

use crate::ct_eq;
use crate::hmac::hmac_sha1;

/// Length in bytes of a PRF output / routing token.
pub const TOKEN_LEN: usize = 20;

/// A routing token: either a subscription token `T(w)` or an event match
/// value `F_{T(w)}(r)`.
///
/// Tokens are pseudonymous but not secret from the broker that matches on
/// them, so normal `Debug`/`Ord`/`Hash` are provided; equality used for
/// *matching* should go through [`prf_verify`], which is constant time.
///
/// # Example
///
/// ```
/// use psguard_crypto::{prf, prf_verify, Token};
///
/// let master = b"rk(KDC)";
/// let token = prf(master, b"cancerTrail");
/// let r = b"random nonce";
/// let tag = prf(token.as_bytes(), r);
/// assert!(prf_verify(&token, r, &tag));
/// assert!(!prf_verify(&token, b"other nonce", &tag));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token([u8; TOKEN_LEN]);

impl Token {
    /// Wraps raw token bytes.
    pub fn from_raw(raw: [u8; TOKEN_LEN]) -> Self {
        Token(raw)
    }

    /// Raw token bytes.
    pub fn as_bytes(&self) -> &[u8; TOKEN_LEN] {
        &self.0
    }

    /// Short hex fingerprint for diagnostics.
    pub fn fingerprint(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Token({}…)", self.fingerprint())
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::Token;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    impl Serialize for Token {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serde::Serialize::serialize(&self.0[..], serializer)
        }
    }

    impl<'de> Deserialize<'de> for Token {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let v: Vec<u8> = Deserialize::deserialize(deserializer)?;
            let arr: [u8; 20] = v
                .try_into()
                .map_err(|_| serde::de::Error::custom("token must be 20 bytes"))?;
            Ok(Token(arr))
        }
    }
}

/// The PRF `F`: HMAC-SHA1 keyed by `key`.
pub fn prf(key: &[u8], data: &[u8]) -> Token {
    Token(hmac_sha1(key, data))
}

/// Verifies an event's routable attribute `⟨r, match⟩` against a
/// subscription token, in constant time: `F_tok(r) == match`.
pub fn prf_verify(token: &Token, r: &[u8], matched: &Token) -> bool {
    let expect = prf(token.as_bytes(), r);
    ct_eq(expect.as_bytes(), matched.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_succeeds_for_correct_token() {
        let token = prf(b"master", b"stockQuote");
        let r = b"nonce-123";
        let tag = prf(token.as_bytes(), r);
        assert!(prf_verify(&token, r, &tag));
    }

    #[test]
    fn match_fails_for_wrong_token() {
        let token = prf(b"master", b"stockQuote");
        let other = prf(b"master", b"weather");
        let r = b"nonce-123";
        let tag = prf(token.as_bytes(), r);
        assert!(!prf_verify(&other, r, &tag));
    }

    #[test]
    fn match_fails_for_replayed_nonce_with_other_tag() {
        let token = prf(b"master", b"stockQuote");
        let tag1 = prf(token.as_bytes(), b"r1");
        assert!(!prf_verify(&token, b"r2", &tag1));
    }

    #[test]
    fn distinct_topics_distinct_tokens() {
        let a = prf(b"master", b"topicA");
        let b = prf(b"master", b"topicB");
        assert_ne!(a, b);
    }

    #[test]
    fn token_debug_is_fingerprint_only() {
        let t = prf(b"k", b"w");
        assert!(format!("{t:?}").starts_with("Token("));
    }
}
