//! Hand-rolled zeroize-on-drop support for key material.
//!
//! The reproduction has no crates.io access, so this is the classic
//! volatile-overwrite idiom rather than the `zeroize` crate: write zeros
//! through `write_volatile` (which the optimizer must not elide, even for
//! a buffer about to be freed) and fence the compiler so the wipe is not
//! reordered past the deallocation.
//!
//! This is the single audited use of `unsafe` in the workspace; every
//! other crate forbids it via `[workspace.lints]`.
#![allow(unsafe_code)]

use core::sync::atomic::{compiler_fence, Ordering};

/// Overwrites `buf` with zeros in a way the optimizer must preserve.
pub fn zeroize(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        // SAFETY: `b` is a valid, aligned, exclusive reference obtained
        // from the iterator; writing a plain byte through it is sound.
        unsafe { core::ptr::write_volatile(b, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

/// Overwrites a word buffer with zeros in a way the optimizer must
/// preserve. Used to wipe digest chaining state (`[u32; N]`) that has
/// absorbed key material, e.g. HMAC pad states held by reusable contexts.
pub fn zeroize_u32(buf: &mut [u32]) {
    for w in buf.iter_mut() {
        // SAFETY: `w` is a valid, aligned, exclusive reference obtained
        // from the iterator; writing a plain word through it is sound.
        unsafe { core::ptr::write_volatile(w, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroize_clears_every_byte() {
        let mut buf = [0xAAu8; 64];
        zeroize(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn zeroize_empty_is_fine() {
        zeroize(&mut []);
    }

    #[test]
    fn zeroize_u32_clears_every_word() {
        let mut buf = [0xDEADBEEFu32; 16];
        zeroize_u32(&mut buf);
        assert!(buf.iter().all(|&w| w == 0));
        zeroize_u32(&mut []);
    }
}
