//! Reusable keyed crypto contexts that amortize per-key setup across events.
//!
//! The one-shot APIs (`prf`, `hmac_sha1`, `Aes128::new` + `cbc_encrypt`)
//! redo key setup on every call: HMAC hashes the padded key block twice
//! (two compression-function calls) before touching the message, and AES
//! expands the full round-key schedule. On the broker's hot path the *same*
//! key is used for thousands of events — a subscription token probes every
//! event in a batch, a publisher encrypts a stream of events under the same
//! content key. The contexts here precompute the keyed state once:
//!
//! * [`HmacContext`] — keyed inner/outer digest states per RFC 2104,
//!   cloned per MAC instead of re-deriving the pads;
//! * [`PrfContext`] — the same idea specialized to the tokenization PRF
//!   `F` (HMAC-SHA1), with an allocation-free verify path: two SHA-1
//!   compressions per probe instead of four, and zero heap traffic;
//! * [`AesContext`] — an expanded AES-128 round-key schedule reused across
//!   CBC calls.
//!
//! All three hold key-equivalent material (pad-absorbed digest states are
//! as good as the key for forging MACs; round keys invert to the AES key),
//! so they wipe themselves on drop, print redacted `Debug` forms, and are
//! on the psguard-xtask secret-hygiene taint list.

use crate::aes::Aes128;
use crate::ct::ct_eq;
use crate::digest::Digest;
use crate::hmac::{keyed_pads, Hmac};
use crate::modes::{cbc_decrypt, cbc_encrypt, CipherError};
use crate::prf::Token;
use crate::sha1::Sha1;
use crate::BLOCK_SIZE;

/// A reusable HMAC key context: the inner/outer digest states with the
/// padded key block already absorbed.
///
/// Creating the context costs the same as one [`Hmac::new`]; every
/// subsequent [`mac`](Self::mac) skips the key-block preparation and the
/// two pad-absorbing compression calls.
///
/// # Example
///
/// ```
/// use psguard_crypto::{hmac_sha1, HmacContext, Sha1};
///
/// let ctx = HmacContext::<Sha1>::new(b"key");
/// for msg in [b"first".as_slice(), b"second"] {
///     assert_eq!(ctx.mac(msg), hmac_sha1(b"key", msg).to_vec());
/// }
/// ```
#[derive(Clone)]
pub struct HmacContext<D: Digest> {
    inner: D,
    outer: D,
}

impl<D: Digest> std::fmt::Debug for HmacContext<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacContext").finish_non_exhaustive()
    }
}

impl<D: Digest> HmacContext<D> {
    /// Precomputes the keyed pad states for `key` (RFC 2104 key prep).
    pub fn new(key: &[u8]) -> Self {
        let (inner, outer) = keyed_pads::<D>(key);
        Self { inner, outer }
    }

    /// One-shot MAC over `message`, reusing the precomputed pad states.
    pub fn mac(&self, message: &[u8]) -> Vec<u8> {
        let mut mac = self.streaming();
        mac.update(message);
        mac.finalize()
    }

    /// A streaming [`Hmac`] resumed from the precomputed pad states.
    pub fn streaming(&self) -> Hmac<D> {
        Hmac::from_parts(self.inner.clone(), self.outer.clone())
    }
}

impl<D: Digest> Drop for HmacContext<D> {
    fn drop(&mut self) {
        // The pad-absorbed states are key-equivalent: wipe them.
        self.inner.wipe();
        self.outer.wipe();
    }
}

/// A reusable context for the tokenization PRF `F` (HMAC-SHA1), keyed by a
/// subscription token or PRF key.
///
/// This is the broker's matching hot path: with `n` subscriptions sharing a
/// token, every event probe recomputes `F_tok(r)`. The context holds the
/// pad-absorbed SHA-1 states, cutting each probe from four compression
/// calls (two pads + nonce block + outer block) to two, and the
/// [`Sha1::finalize_fixed`] path keeps the probe entirely allocation-free.
///
/// Output is byte-identical to the one-shot [`crate::prf`] /
/// [`crate::prf_verify`] for every input (asserted against the RFC 2202
/// vectors in this module's tests).
///
/// # Example
///
/// ```
/// use psguard_crypto::{prf, PrfContext};
///
/// let token = prf(b"rk(KDC)", b"cancerTrail");
/// let ctx = PrfContext::for_token(&token);
/// let tag = prf(token.as_bytes(), b"nonce");
/// assert!(ctx.verify(b"nonce", &tag));
/// assert_eq!(ctx.prf(b"nonce"), tag);
/// ```
#[derive(Clone)]
pub struct PrfContext {
    inner: Sha1,
    outer: Sha1,
}

impl std::fmt::Debug for PrfContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrfContext").finish_non_exhaustive()
    }
}

impl PrfContext {
    /// Precomputes the keyed pad states for a raw PRF key.
    pub fn new(key: &[u8]) -> Self {
        let (inner, outer) = keyed_pads::<Sha1>(key);
        Self { inner, outer }
    }

    /// Context keyed by a subscription token `T(w)`, for probing event
    /// tags `⟨r, F_{T(w)}(r)⟩`.
    pub fn for_token(token: &Token) -> Self {
        Self::new(token.as_bytes())
    }

    /// Computes `F_key(data)`, byte-identical to [`crate::prf`].
    pub fn prf(&self, data: &[u8]) -> Token {
        let mut inner = self.inner.clone();
        inner.update(data);
        let inner_digest = inner.finalize_fixed();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        Token::from_raw(outer.finalize_fixed())
    }

    /// Constant-time probe `F_key(r) == matched`, byte-identical to
    /// [`crate::prf_verify`] with this context's key.
    pub fn verify(&self, r: &[u8], matched: &Token) -> bool {
        ct_eq(self.prf(r).as_bytes(), matched.as_bytes())
    }
}

impl Drop for PrfContext {
    fn drop(&mut self) {
        // The pad-absorbed states are key-equivalent: wipe them.
        self.inner.wipe();
        self.outer.wipe();
    }
}

/// A reusable AES-128 context: the expanded round-key schedule, shared
/// across CBC calls instead of re-running the key schedule per event.
///
/// [`Aes128`] already zeroizes its round keys on drop; this wrapper gives
/// the reuse pattern a name the secret-hygiene tooling can track and adds
/// the CBC conveniences the publish path wants.
///
/// # Example
///
/// ```
/// use psguard_crypto::AesContext;
///
/// let ctx = AesContext::new(&[7u8; 16]);
/// let iv = [9u8; 16];
/// let ct = ctx.encrypt_cbc(&iv, b"attribute payload");
/// assert_eq!(ctx.decrypt_cbc(&iv, &ct).unwrap(), b"attribute payload");
/// ```
#[derive(Clone)]
pub struct AesContext {
    cipher: Aes128,
}

impl std::fmt::Debug for AesContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesContext").finish_non_exhaustive()
    }
}

impl AesContext {
    /// Expands `key` into a reusable round-key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        Self {
            cipher: Aes128::new(key),
        }
    }

    /// The underlying block cipher, for use with [`crate::ctr_apply`] and
    /// friends.
    pub fn cipher(&self) -> &Aes128 {
        &self.cipher
    }

    /// AES-128-CBC encryption with PKCS#7 padding, reusing the schedule.
    pub fn encrypt_cbc(&self, iv: &[u8; BLOCK_SIZE], plaintext: &[u8]) -> Vec<u8> {
        cbc_encrypt(&self.cipher, iv, plaintext)
    }

    /// AES-128-CBC decryption with PKCS#7 unpadding, reusing the schedule.
    pub fn decrypt_cbc(
        &self,
        iv: &[u8; BLOCK_SIZE],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, CipherError> {
        cbc_decrypt(&self.cipher, iv, ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmac::{hmac_md5, hmac_sha1};
    use crate::prf::{prf, prf_verify};
    use crate::Md5;

    /// RFC 2202 HMAC-SHA1 cases as (key, data) pairs. Expected digests are
    /// covered by the hmac module's tests; here they anchor the
    /// context-equality satellite: `PrfContext` must be byte-identical to
    /// the one-shot `prf` on each of them.
    fn rfc2202_sha1_cases() -> Vec<(Vec<u8>, Vec<u8>)> {
        vec![
            (vec![0x0b; 20], b"Hi There".to_vec()),
            (b"Jefe".to_vec(), b"what do ya want for nothing?".to_vec()),
            (vec![0xaa; 20], vec![0xdd; 50]),
            (
                (1..=25).collect(),
                vec![0xcd; 50], // case 4: 25-byte key
            ),
            (vec![0x0c; 20], b"Test With Truncation".to_vec()),
            (
                vec![0xaa; 80], // case 6: key longer than the block size
                b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            ),
            (
                vec![0xaa; 80],
                b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data"
                    .to_vec(),
            ),
        ]
    }

    #[test]
    fn prf_context_matches_oneshot_on_rfc2202_vectors() {
        for (i, (key, data)) in rfc2202_sha1_cases().into_iter().enumerate() {
            let ctx = PrfContext::new(&key);
            assert_eq!(ctx.prf(&data), prf(&key, &data), "case {}", i + 1);
        }
    }

    #[test]
    fn prf_context_verify_matches_oneshot_verify() {
        let token = prf(b"rk(KDC)", b"stockQuote");
        let ctx = PrfContext::for_token(&token);
        for r in [b"r1".as_slice(), b"r2", &[0u8; 16], &[0xff; 64]] {
            let tag = prf(token.as_bytes(), r);
            assert_eq!(ctx.verify(r, &tag), prf_verify(&token, r, &tag));
            assert!(ctx.verify(r, &tag));
            let wrong = prf(b"other key", r);
            assert_eq!(ctx.verify(r, &wrong), prf_verify(&token, r, &wrong));
            assert!(!ctx.verify(r, &wrong));
        }
    }

    #[test]
    fn prf_context_reuse_across_many_inputs() {
        let ctx = PrfContext::new(b"key");
        for i in 0..200u32 {
            let data = i.to_be_bytes();
            assert_eq!(ctx.prf(&data), prf(b"key", &data), "i={i}");
        }
    }

    #[test]
    fn hmac_context_matches_oneshot_sha1_and_md5() {
        for (key, data) in rfc2202_sha1_cases() {
            let ctx = HmacContext::<Sha1>::new(&key);
            assert_eq!(ctx.mac(&data), hmac_sha1(&key, &data).to_vec());
            let ctx = HmacContext::<Md5>::new(&key);
            assert_eq!(ctx.mac(&data), hmac_md5(&key, &data).to_vec());
        }
    }

    #[test]
    fn hmac_context_streaming_matches_oneshot() {
        let ctx = HmacContext::<Sha1>::new(b"key");
        let mut mac = ctx.streaming();
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha1(b"key", b"hello world").to_vec());
    }

    #[test]
    fn aes_context_matches_fresh_schedule() {
        let key = [0x2bu8; 16];
        let iv = [0x01u8; 16];
        let pt = b"the quick brown fox jumps over the lazy dog";
        let ctx = AesContext::new(&key);
        let fresh = cbc_encrypt(&Aes128::new(&key), &iv, pt);
        assert_eq!(ctx.encrypt_cbc(&iv, pt), fresh);
        assert_eq!(ctx.decrypt_cbc(&iv, &fresh).unwrap(), pt.to_vec());
    }

    #[test]
    fn contexts_debug_is_redacted() {
        let p = PrfContext::new(b"secret key material");
        assert_eq!(format!("{p:?}"), "PrfContext { .. }");
        let h = HmacContext::<Sha1>::new(b"secret key material");
        assert_eq!(format!("{h:?}"), "HmacContext { .. }");
        let a = AesContext::new(&[3u8; 16]);
        assert_eq!(format!("{a:?}"), "AesContext { .. }");
    }

    #[test]
    fn wipe_resets_digest_to_initial_state() {
        use crate::digest::Digest;
        let mut s = <Sha1 as Digest>::new();
        s.update(b"key-equivalent material");
        s.wipe();
        assert_eq!(s.finalize(), <Sha1 as Digest>::new().finalize());
    }
}
