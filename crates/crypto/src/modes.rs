//! Block-cipher modes of operation for AES-128: ECB (single block), CBC
//! with PKCS#7 padding (the paper's `E` = AES-128-CBC), and CTR.

use crate::aes::{Aes128, BLOCK_SIZE};

/// Errors raised by the cipher-mode helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherError {
    /// Ciphertext length is zero or not a multiple of the block size.
    BadCiphertextLength {
        /// Offending length in bytes.
        len: usize,
    },
    /// PKCS#7 padding bytes were inconsistent after decryption.
    BadPadding,
}

impl std::fmt::Display for CipherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CipherError::BadCiphertextLength { len } => {
                write!(
                    f,
                    "ciphertext length {len} is not a positive multiple of {BLOCK_SIZE}"
                )
            }
            CipherError::BadPadding => write!(f, "invalid pkcs#7 padding"),
        }
    }
}

impl std::error::Error for CipherError {}

/// Appends PKCS#7 padding so the buffer length becomes a multiple of
/// [`BLOCK_SIZE`]. A full padding block is added when the input is already
/// block-aligned.
///
/// # Example
///
/// ```
/// let mut buf = vec![1, 2, 3];
/// psguard_crypto::pkcs7_pad(&mut buf);
/// assert_eq!(buf.len(), 16);
/// assert_eq!(buf[15], 13);
/// ```
pub fn pkcs7_pad(buf: &mut Vec<u8>) {
    let pad = BLOCK_SIZE - (buf.len() % BLOCK_SIZE);
    buf.extend(std::iter::repeat_n(pad as u8, pad));
}

/// Strips PKCS#7 padding in place.
///
/// # Errors
///
/// Returns [`CipherError::BadPadding`] when the final byte is not a valid
/// pad length or the padding bytes disagree.
pub fn pkcs7_unpad(buf: &mut Vec<u8>) -> Result<(), CipherError> {
    let &last = buf.last().ok_or(CipherError::BadPadding)?;
    let pad = last as usize;
    if pad == 0 || pad > BLOCK_SIZE || pad > buf.len() {
        return Err(CipherError::BadPadding);
    }
    // Check all padding bytes; accumulate differences to avoid an early exit
    // oracle on which byte mismatched.
    let start = buf.len() - pad;
    let mut diff = 0u8;
    for &b in &buf[start..] {
        diff |= b ^ last;
    }
    if diff != 0 {
        return Err(CipherError::BadPadding);
    }
    buf.truncate(start);
    Ok(())
}

/// Encrypts a single raw block (ECB). Used by unit tests and the CTR mode.
pub fn ecb_encrypt_block(cipher: &Aes128, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    let mut b = *block;
    cipher.encrypt_block(&mut b);
    b
}

/// Decrypts a single raw block (ECB).
pub fn ecb_decrypt_block(cipher: &Aes128, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    let mut b = *block;
    cipher.decrypt_block(&mut b);
    b
}

/// AES-128-CBC encryption with PKCS#7 padding — the paper's `E`.
///
/// # Example
///
/// ```
/// use psguard_crypto::{cbc_decrypt, cbc_encrypt, Aes128};
///
/// let cipher = Aes128::new(&[7u8; 16]);
/// let iv = [9u8; 16];
/// let ct = cbc_encrypt(&cipher, &iv, b"patient record");
/// let pt = cbc_decrypt(&cipher, &iv, &ct).unwrap();
/// assert_eq!(pt, b"patient record");
/// ```
pub fn cbc_encrypt(cipher: &Aes128, iv: &[u8; BLOCK_SIZE], plaintext: &[u8]) -> Vec<u8> {
    let mut buf = plaintext.to_vec();
    pkcs7_pad(&mut buf);
    let mut prev = *iv;
    for chunk in buf.chunks_exact_mut(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        block.copy_from_slice(chunk);
        for (c, p) in block.iter_mut().zip(prev.iter()) {
            *c ^= p;
        }
        cipher.encrypt_block(&mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
    buf
}

/// AES-128-CBC decryption with PKCS#7 unpadding.
///
/// # Errors
///
/// Returns [`CipherError::BadCiphertextLength`] for empty/misaligned input
/// and [`CipherError::BadPadding`] when the padding check fails (e.g. the
/// wrong key was used).
pub fn cbc_decrypt(
    cipher: &Aes128,
    iv: &[u8; BLOCK_SIZE],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CipherError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_SIZE) {
        return Err(CipherError::BadCiphertextLength {
            len: ciphertext.len(),
        });
    }
    let mut buf = ciphertext.to_vec();
    let mut prev = *iv;
    for chunk in buf.chunks_exact_mut(BLOCK_SIZE) {
        let mut cipher_block = [0u8; BLOCK_SIZE];
        cipher_block.copy_from_slice(chunk);
        let mut block = cipher_block;
        cipher.decrypt_block(&mut block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        chunk.copy_from_slice(&block);
        prev = cipher_block;
    }
    pkcs7_unpad(&mut buf)?;
    Ok(buf)
}

/// AES-128-CTR keystream application (encryption and decryption are the same
/// operation). The 16-byte `nonce` forms the initial counter block; the low
/// 64 bits are incremented per block.
pub fn ctr_apply(cipher: &Aes128, nonce: &[u8; BLOCK_SIZE], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut counter = nonce[8..16]
        .iter()
        .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
    let mut prefix = [0u8; 8];
    prefix.copy_from_slice(&nonce[..8]);
    for chunk in data.chunks(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        block[..8].copy_from_slice(&prefix);
        block[8..].copy_from_slice(&counter.to_be_bytes());
        cipher.encrypt_block(&mut block);
        for (d, k) in chunk.iter().zip(block.iter()) {
            out.push(d ^ k);
        }
        counter = counter.wrapping_add(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // NIST SP 800-38A F.2.1 (CBC-AES128.Encrypt), first two blocks.
    #[test]
    fn nist_cbc_vectors() {
        let key: [u8; 16] = from_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let iv: [u8; 16] = from_hex("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        let cipher = Aes128::new(&key);
        let ct = cbc_encrypt(&cipher, &iv, &pt);
        // Our output includes a third block of PKCS#7 padding; the first two
        // blocks must match the NIST vector exactly.
        assert_eq!(
            ct[..32].to_vec(),
            from_hex("7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2")
        );
        assert_eq!(ct.len(), 48);
        assert_eq!(cbc_decrypt(&cipher, &iv, &ct).unwrap(), pt);
    }

    // NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt), first block.
    #[test]
    fn nist_ctr_vector() {
        let key: [u8; 16] = from_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let nonce: [u8; 16] = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
        let cipher = Aes128::new(&key);
        let ct = ctr_apply(&cipher, &nonce, &pt);
        assert_eq!(ct, from_hex("874d6191b620e3261bef6864990db6ce"));
        assert_eq!(ctr_apply(&cipher, &nonce, &ct), pt);
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let cipher = Aes128::new(&[3u8; 16]);
        let iv = [11u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 255, 256, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = cbc_encrypt(&cipher, &iv, &pt);
            assert_eq!(ct.len() % BLOCK_SIZE, 0);
            assert!(ct.len() > pt.len());
            assert_eq!(cbc_decrypt(&cipher, &iv, &ct).unwrap(), pt, "len={len}");
        }
    }

    #[test]
    fn cbc_wrong_key_fails_or_garbles() {
        let cipher = Aes128::new(&[3u8; 16]);
        let wrong = Aes128::new(&[4u8; 16]);
        let iv = [0u8; 16];
        let pt = b"confidential medical record payload".to_vec();
        let ct = cbc_encrypt(&cipher, &iv, &pt);
        match cbc_decrypt(&wrong, &iv, &ct) {
            Err(CipherError::BadPadding) => {}
            Ok(garbled) => assert_ne!(garbled, pt),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn cbc_rejects_bad_lengths() {
        let cipher = Aes128::new(&[3u8; 16]);
        let iv = [0u8; 16];
        assert!(matches!(
            cbc_decrypt(&cipher, &iv, &[]),
            Err(CipherError::BadCiphertextLength { len: 0 })
        ));
        assert!(matches!(
            cbc_decrypt(&cipher, &iv, &[0u8; 17]),
            Err(CipherError::BadCiphertextLength { len: 17 })
        ));
    }

    #[test]
    fn pkcs7_full_block_when_aligned() {
        let mut buf = vec![0u8; 16];
        pkcs7_pad(&mut buf);
        assert_eq!(buf.len(), 32);
        assert!(buf[16..].iter().all(|&b| b == 16));
        pkcs7_unpad(&mut buf).unwrap();
        assert_eq!(buf.len(), 16);
    }

    #[test]
    fn pkcs7_rejects_corrupt_padding() {
        let mut buf = vec![1u8, 2, 3, 3, 4];
        assert_eq!(pkcs7_unpad(&mut buf), Err(CipherError::BadPadding));
        let mut buf = vec![0u8];
        assert_eq!(pkcs7_unpad(&mut buf), Err(CipherError::BadPadding));
        let mut buf: Vec<u8> = vec![17; 17];
        assert_eq!(pkcs7_unpad(&mut buf), Err(CipherError::BadPadding));
        let mut empty: Vec<u8> = vec![];
        assert_eq!(pkcs7_unpad(&mut empty), Err(CipherError::BadPadding));
    }

    #[test]
    fn ctr_is_an_involution() {
        let cipher = Aes128::new(&[9u8; 16]);
        let nonce = [1u8; 16];
        let data: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let once = ctr_apply(&cipher, &nonce, &data);
        assert_eq!(ctr_apply(&cipher, &nonce, &once), data);
        assert_eq!(once.len(), data.len());
    }
}
