//! AES-128 block cipher (FIPS-197), implemented from the specification.
//!
//! AES-128 in CBC mode instantiates the paper's event-encryption algorithm
//! `E`: a publisher encrypts the secret attributes of an event with the
//! event key `K(e)` derived from the key hierarchy.

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

const NB: usize = 4; // columns in the state
const NK: usize = 4; // 32-bit words in an AES-128 key
const NR: usize = 10; // rounds for AES-128

/// The AES S-box (FIPS-197 figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, computed once from [`SBOX`].
fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// Multiplication by `x` in GF(2^8) with the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// General GF(2^8) multiplication.
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key ready for block encryption/decryption.
///
/// # Example
///
/// ```
/// use psguard_crypto::Aes128;
///
/// let cipher = Aes128::new(&[0u8; 16]);
/// let mut block = [0u8; 16];
/// cipher.encrypt_block(&mut block);
/// cipher.decrypt_block(&mut block);
/// assert_eq!(block, [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
    inv_sbox: [u8; 256],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key schedule material through Debug.
        f.write_str("Aes128 { .. }")
    }
}

// Zeroize-on-drop: the expanded schedule is equivalent to the key itself.
impl Drop for Aes128 {
    fn drop(&mut self) {
        for rk in &mut self.round_keys {
            crate::zeroize::zeroize(rk);
        }
    }
}

impl Aes128 {
    /// Expands a 16-byte key into the full round-key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; NB * (NR + 1)];
        for i in 0..NK {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon: u8 = 1;
        for i in NK..NB * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }

        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..NB {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[r * NB + c]);
            }
        }
        Self {
            round_keys,
            inv_sbox: inv_sbox(),
        }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    #[inline]
    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    #[inline]
    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }

    /// State layout: column-major, `state[4c + r]` holds row `r`, column `c`.
    #[inline]
    fn shift_rows(state: &mut [u8; 16]) {
        // Row 1: shift left by 1.
        let t = state[1];
        state[1] = state[5];
        state[5] = state[9];
        state[9] = state[13];
        state[13] = t;
        // Row 2: shift left by 2.
        state.swap(2, 10);
        state.swap(6, 14);
        // Row 3: shift left by 3 (== right by 1).
        let t = state[15];
        state[15] = state[11];
        state[11] = state[7];
        state[7] = state[3];
        state[3] = t;
    }

    #[inline]
    fn inv_shift_rows(state: &mut [u8; 16]) {
        // Row 1: shift right by 1.
        let t = state[13];
        state[13] = state[9];
        state[9] = state[5];
        state[5] = state[1];
        state[1] = t;
        // Row 2: shift right by 2.
        state.swap(2, 10);
        state.swap(6, 14);
        // Row 3: shift right by 3 (== left by 1).
        let t = state[3];
        state[3] = state[7];
        state[7] = state[11];
        state[11] = state[15];
        state[15] = t;
    }

    #[inline]
    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
            state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }

    #[inline]
    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] =
                gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
            state[4 * c + 1] =
                gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
            state[4 * c + 2] =
                gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
            state[4 * c + 3] =
                gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..NR {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[NR]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            Self::inv_shift_rows(block);
            self.inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        self.inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // FIPS-197 appendix B.
    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = from_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let mut block: [u8; 16] = from_hex("3243f6a8885a308d313198a2e0370734")
            .try_into()
            .unwrap();
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("3925841d02dc09fbdc118597196a0b32"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("3243f6a8885a308d313198a2e0370734"));
    }

    // FIPS-197 appendix C.1.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = from_hex("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn roundtrip_random_blocks() {
        // Simple deterministic PRNG so the test needs no dependencies.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..64 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            for b in key.iter_mut().chain(block.iter_mut()) {
                *b = next() as u8;
            }
            let cipher = Aes128::new(&key);
            let original = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original);
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn gf_mul_matches_known_products() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(0x01, 0xab), 0xab);
        assert_eq!(gmul(0x00, 0xab), 0x00);
    }

    #[test]
    fn shift_rows_inverse() {
        let mut state = [0u8; 16];
        for (i, b) in state.iter_mut().enumerate() {
            *b = i as u8;
        }
        let original = state;
        Aes128::shift_rows(&mut state);
        assert_ne!(state, original);
        Aes128::inv_shift_rows(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn mix_columns_inverse() {
        let mut state = [0u8; 16];
        for (i, b) in state.iter_mut().enumerate() {
            *b = (i * 17 + 3) as u8;
        }
        let original = state;
        Aes128::mix_columns(&mut state);
        let cipher = Aes128::new(&[0u8; 16]);
        cipher.inv_mix_columns_pub_for_test(&mut state);
        assert_eq!(state, original);
    }

    impl Aes128 {
        fn inv_mix_columns_pub_for_test(&self, state: &mut [u8; 16]) {
            Self::inv_mix_columns(state);
        }
    }
}
