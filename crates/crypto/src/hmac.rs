//! HMAC (RFC 2104), generic over any [`Digest`].
//!
//! HMAC-SHA1 instantiates the paper's keyed pseudo-random function `KH`
//! (rooting the key hierarchies) and the tokenization PRF `F`.

use crate::digest::Digest;
use crate::md5::Md5;
use crate::sha1::Sha1;
use crate::zeroize::zeroize;

/// Largest digest block size the stack-allocated key schedule supports.
/// Both MD5 and SHA-1 use 64-byte blocks.
const MAX_BLOCK: usize = 64;

/// Prepares the inner/outer digests keyed per RFC 2104: hash-or-pad the
/// key into a block, then absorb `key ⊕ ipad` and `key ⊕ opad`.
///
/// All key-equivalent scratch lives in fixed stack buffers that are wiped
/// in place before returning — no per-call heap allocation on the short-key
/// path. Shared by [`Hmac::new`] and the reusable contexts in
/// [`crate::context`].
pub(crate) fn keyed_pads<D: Digest>(key: &[u8]) -> (D, D) {
    let block = D::BLOCK_LEN;
    assert!(
        block <= MAX_BLOCK,
        "digest block size exceeds the stack key schedule"
    );
    let mut key_block = [0u8; MAX_BLOCK];
    if key.len() > block {
        let mut hashed = D::digest_vec(key);
        key_block[..hashed.len()].copy_from_slice(&hashed);
        zeroize(&mut hashed);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut pad = [0u8; MAX_BLOCK];
    for (p, k) in pad.iter_mut().zip(key_block.iter()) {
        *p = k ^ 0x36;
    }
    let mut inner = D::new();
    inner.update(&pad[..block]);

    for (p, k) in pad.iter_mut().zip(key_block.iter()) {
        *p = k ^ 0x5c;
    }
    let mut outer = D::new();
    outer.update(&pad[..block]);

    // The padded key blocks are key-equivalent; wipe them in place before
    // the stack frame is reused.
    zeroize(&mut key_block);
    zeroize(&mut pad);

    (inner, outer)
}

/// Streaming HMAC computation generic over the underlying hash.
///
/// # Example
///
/// ```
/// use psguard_crypto::{Hmac, Sha1};
///
/// let mut mac = Hmac::<Sha1>::new(b"key");
/// mac.update(b"The quick brown fox ");
/// mac.update(b"jumps over the lazy dog");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 20);
/// ```
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    outer: D,
}

impl<D: Digest> std::fmt::Debug for Hmac<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hmac").finish_non_exhaustive()
    }
}

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC instance keyed with `key`.
    ///
    /// Keys longer than the hash block size are first hashed, per RFC 2104.
    /// Key-block preparation runs entirely in stack buffers (wiped in
    /// place), so keying allocates nothing on the short-key path.
    pub fn new(key: &[u8]) -> Self {
        let (inner, outer) = keyed_pads::<D>(key);
        Self { inner, outer }
    }

    /// Rebuilds an HMAC from already-keyed inner/outer digest states.
    /// Used by [`crate::HmacContext`] to resume from precomputed pads.
    pub(crate) fn from_parts(inner: D, outer: D) -> Self {
        Self { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the MAC and returns the tag ([`Digest::OUTPUT_LEN`] bytes).
    pub fn finalize(mut self) -> Vec<u8> {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }
}

/// One-shot HMAC over any digest.
///
/// # Example
///
/// ```
/// use psguard_crypto::{hmac, Sha1};
/// let tag = hmac::<Sha1>(b"key", b"message");
/// assert_eq!(tag.len(), 20);
/// ```
pub fn hmac<D: Digest>(key: &[u8], message: &[u8]) -> Vec<u8> {
    let mut mac = Hmac::<D>::new(key);
    mac.update(message);
    mac.finalize()
}

/// One-shot HMAC-SHA1 (the paper's `KH` and `F`).
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> [u8; 20] {
    let v = hmac::<Sha1>(key, message);
    let mut out = [0u8; 20];
    out.copy_from_slice(&v);
    out
}

/// One-shot HMAC-MD5 (the paper's alternative `KH`).
pub fn hmac_md5(key: &[u8], message: &[u8]) -> [u8; 16] {
    let v = hmac::<Md5>(key, message);
    let mut out = [0u8; 16];
    out.copy_from_slice(&v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 test vectors for HMAC-SHA1.
    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_sha1_case2() {
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_sha1_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_sha1_case6_long_key() {
        let key = [0xaau8; 80];
        assert_eq!(
            hex(&hmac_sha1(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    // RFC 2202 test vectors for HMAC-MD5.
    #[test]
    fn rfc2202_md5_case1() {
        let key = [0x0bu8; 16];
        assert_eq!(
            hex(&hmac_md5(&key, b"Hi There")),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );
    }

    #[test]
    fn rfc2202_md5_case2() {
        assert_eq!(
            hex(&hmac_md5(b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let expect = hmac_sha1(b"key", b"hello world");
        let mut mac = Hmac::<Sha1>::new(b"key");
        mac.update(b"hello");
        mac.update(b" world");
        assert_eq!(mac.finalize(), expect.to_vec());
    }

    #[test]
    fn key_exactly_block_size() {
        let key = [0x42u8; 64];
        // Must not be rehashed: check against the definition directly.
        let tag = hmac_sha1(&key, b"msg");
        let manual = {
            use crate::digest::Digest;
            use crate::sha1::Sha1;
            let ipad: Vec<u8> = key.iter().map(|b| b ^ 0x36).collect();
            let opad: Vec<u8> = key.iter().map(|b| b ^ 0x5c).collect();
            let mut inner = <Sha1 as Digest>::new();
            inner.update(&ipad);
            inner.update(b"msg");
            let id = inner.finalize();
            let mut outer = <Sha1 as Digest>::new();
            outer.update(&opad);
            outer.update(&id);
            outer.finalize()
        };
        assert_eq!(tag.to_vec(), manual);
    }
}
