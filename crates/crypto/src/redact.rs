//! The redacted display type for key-adjacent byte strings.
//!
//! Anything that must show up in logs, debug output, or measurement
//! harnesses but wraps secret bytes goes through [`Redacted`]: it prints a
//! two-byte fingerprint and the length, never the material itself. The
//! `psguard-xtask check` secret-hygiene rule forbids tainted types from
//! deriving `Debug`; their manual impls delegate here.

/// Displays a byte string as `a1b2…[20B]` — fingerprint and length only.
///
/// # Example
///
/// ```
/// use psguard_crypto::Redacted;
///
/// let secret_bytes = [0xDE, 0xAD, 0xBE, 0xEF];
/// assert_eq!(format!("{}", Redacted(&secret_bytes)), "dead…[4B]");
/// assert!(!format!("{:?}", Redacted(&secret_bytes)).contains("beef"));
/// ```
pub struct Redacted<'a>(pub &'a [u8]);

impl std::fmt::Display for Redacted<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            [a, b, ..] => write!(f, "{a:02x}{b:02x}…[{}B]", self.0.len()),
            _ => write!(f, "****[{}B]", self.0.len()),
        }
    }
}

impl std::fmt::Debug for Redacted<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_fingerprint_and_length_only() {
        let bytes: Vec<u8> = (0..20).collect();
        let shown = format!("{}", Redacted(&bytes));
        assert_eq!(shown, "0001…[20B]");
        // No rendering of the remaining 18 bytes.
        assert!(shown.chars().count() <= 10);
    }

    #[test]
    fn short_buffers_fully_masked() {
        assert_eq!(format!("{}", Redacted(&[7])), "****[1B]");
        assert_eq!(format!("{}", Redacted(&[])), "****[0B]");
    }
}
