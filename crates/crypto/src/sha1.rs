//! SHA-1 (RFC 3174 / FIPS 180-1), implemented from the specification.
//!
//! SHA-1 instantiates the paper's one-way hash `H` used for hierarchical
//! child-key derivation and, through HMAC, the keyed hash `KH` and PRF `F`.

use crate::digest::Digest;
use crate::zeroize::{zeroize, zeroize_u32};

/// Streaming SHA-1 hasher.
///
/// # Example
///
/// ```
/// use psguard_crypto::Sha1;
///
/// let d = Sha1::digest(b"abc");
/// assert_eq!(
///     d,
///     [
///         0xa9, 0x99, 0x3e, 0x36, 0x47, 0x06, 0x81, 0x6a, 0xba, 0x3e, 0x25, 0x71, 0x78, 0x50,
///         0xc2, 0x6c, 0x9c, 0xd0, 0xd8, 0x9d
///     ]
/// );
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl std::fmt::Debug for Sha1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sha1")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        <Self as Digest>::new()
    }
}

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

impl Sha1 {
    /// One-shot SHA-1 digest returning a fixed-size array.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut s = <Self as Digest>::new();
        Digest::update(&mut s, data);
        s.finalize_fixed()
    }

    /// Consumes the hasher and returns the digest as a fixed-size array
    /// without any heap allocation. This is the hot-path finalize used by
    /// [`crate::PrfContext`], where the per-call `Vec`s of
    /// [`Digest::finalize`] would dominate the amortized cost.
    pub fn finalize_fixed(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Merkle–Damgård padding on the stack: 0x80, zeros to 56 mod 64,
        // then the 8-byte big-endian bit length (≤ 72 bytes total).
        let rem = (self.total_len % 64) as usize;
        let pad_len = if rem < 56 { 56 - rem } else { 120 - rem };
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        // absorb() advances total_len, but the length is already latched.
        self.absorb(&pad[..pad_len + 8]);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 20];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }

    fn absorb(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            } else {
                // Buffer still partial and input exhausted.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        let rem = chunks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffer_len = rem.len();
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, data: &[u8]) {
        self.absorb(data);
    }

    fn finalize(self) -> Vec<u8> {
        self.finalize_fixed().to_vec()
    }

    fn wipe(&mut self) {
        zeroize(&mut self.buffer);
        zeroize_u32(&mut self.state);
        *self = <Self as Digest>::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 3174 and FIPS 180-1 test vectors.
    #[test]
    fn rfc3174_abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn rfc3174_two_block() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn rfc3174_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let expect = Sha1::digest(&data);
        for split in 0..data.len() {
            let mut s = <Sha1 as Digest>::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(Digest::finalize(s), expect.to_vec(), "split={split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise the 55/56/64-byte padding boundaries.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xABu8; len];
            let mut s = <Sha1 as Digest>::new();
            for b in &data {
                s.update(std::slice::from_ref(b));
            }
            assert_eq!(
                Digest::finalize(s),
                Sha1::digest(&data).to_vec(),
                "len={len}"
            );
        }
    }
}
