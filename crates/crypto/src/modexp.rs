//! Modular arithmetic in `Z_p`: exponentiation by squaring (§5.1 of the
//! paper lists it among the prototype's cryptographic building blocks,
//! computing results in `O(log² p)` time).

/// Modular multiplication `a·b mod m` without overflow (via `u128`).
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `base^exp mod m` by repeated squaring.
///
/// # Panics
///
/// Panics when `m == 0`. `m == 1` yields 0 for every input.
///
/// # Example
///
/// ```
/// use psguard_crypto::mod_exp;
/// // Fermat: a^(p−1) ≡ 1 (mod p) for prime p ∤ a.
/// assert_eq!(mod_exp(2, 1_000_000_006, 1_000_000_007), 1);
/// ```
pub fn mod_exp(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Modular inverse via Fermat's little theorem (`m` must be prime and
/// `a` not a multiple of `m`). Returns `None` when `a ≡ 0 (mod m)`.
pub fn mod_inv_prime(a: u64, m: u64) -> Option<u64> {
    if a.is_multiple_of(m) {
        return None;
    }
    Some(mod_exp(a, m - 2, m))
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = 1_000_000_007; // prime

    #[test]
    fn small_cases() {
        assert_eq!(mod_exp(2, 10, 1_000_000), 1024);
        assert_eq!(mod_exp(3, 0, 7), 1);
        assert_eq!(mod_exp(0, 5, 7), 0);
        assert_eq!(mod_exp(5, 5, 1), 0);
    }

    #[test]
    fn fermat_little_theorem() {
        for a in [2u64, 3, 65_537, 123_456_789] {
            assert_eq!(mod_exp(a, P - 1, P), 1, "a={a}");
        }
    }

    #[test]
    fn matches_naive_for_small_inputs() {
        for base in 0..20u64 {
            for exp in 0..12u64 {
                for m in 1..15u64 {
                    let mut naive = if m == 1 { 0 } else { 1 % m };
                    for _ in 0..exp {
                        naive = naive * base % m;
                    }
                    assert_eq!(mod_exp(base, exp, m), naive, "{base}^{exp} mod {m}");
                }
            }
        }
    }

    #[test]
    fn no_overflow_near_u64_max() {
        let m = u64::MAX - 58; // large odd modulus
        let r = mod_exp(u64::MAX - 1, 3, m);
        assert!(r < m);
        // Consistency: (x^3) == (x^2)·x.
        let x = u64::MAX - 1;
        let x2 = mod_mul(x % m, x % m, m);
        assert_eq!(r, mod_mul(x2, x % m, m));
    }

    #[test]
    fn inverse_round_trips() {
        for a in [1u64, 2, 999, 123_456_789] {
            let inv = mod_inv_prime(a, P).expect("invertible");
            assert_eq!(mod_mul(a, inv, P), 1, "a={a}");
        }
        assert_eq!(mod_inv_prime(P, P), None);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_modulus_panics() {
        mod_exp(2, 2, 0);
    }
}
