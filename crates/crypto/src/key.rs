//! Typed key material: derivation keys (hierarchy nodes), AES content keys,
//! and nonces.

use crate::aes::BLOCK_SIZE;
use crate::hmac::hmac_sha1;
use crate::redact::Redacted;
use crate::sha1::Sha1;
use crate::zeroize::zeroize;
use crate::{ct_eq, HASH_LEN};

/// Length in bytes of a hierarchy derivation key (one SHA-1 output).
pub const DERIVE_KEY_LEN: usize = HASH_LEN;

/// Errors raised when constructing keys from raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyError {
    /// The supplied byte string had the wrong length.
    BadLength {
        /// Expected number of bytes.
        expected: usize,
        /// Number of bytes supplied.
        got: usize,
    },
}

impl std::fmt::Display for KeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyError::BadLength { expected, got } => {
                write!(f, "key material must be {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for KeyError {}

/// A node key in one of PSGuard's key hierarchies (NAKT, category tree,
/// string prefix chain).
///
/// The two derivation operations of the paper are methods here:
///
/// * [`DeriveKey::kh`] — the keyed hash `KH` rooting sub-hierarchies
///   (`K(w) = KH_{rk}(w)`, `K_Ø^num = KH_{K(w)}(num)`);
/// * [`DeriveKey::child`] — one-way child derivation
///   (`K_{ktid‖b} = H(K_ktid ‖ b)`).
///
/// Equality is constant time. `Debug` prints a short fingerprint, never the
/// key bytes.
///
/// # Example
///
/// ```
/// use psguard_crypto::DeriveKey;
///
/// let master = DeriveKey::from_bytes(b"rk(KDC)");
/// let topic = master.kh(b"cancerTrail");
/// let age_root = topic.kh(b"age");
/// // Walking down ktid = 101 for the event value 22 in Figure 1:
/// let k101 = age_root.child(1).child(0).child(1);
/// assert_eq!(k101, age_root.child(1).child(0).child(1));
/// ```
#[derive(Clone)]
pub struct DeriveKey([u8; DERIVE_KEY_LEN]);

impl DeriveKey {
    /// Builds a derivation key by hashing arbitrary seed bytes.
    ///
    /// This is how a deployment turns a master secret into the fixed-length
    /// root `rk(KDC)`.
    pub fn from_bytes(seed: &[u8]) -> Self {
        Self(Sha1::digest(seed))
    }

    /// Wraps exactly [`DERIVE_KEY_LEN`] raw bytes as a key.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::BadLength`] when `raw` is not exactly
    /// [`DERIVE_KEY_LEN`] bytes.
    pub fn from_raw(raw: &[u8]) -> Result<Self, KeyError> {
        let arr: [u8; DERIVE_KEY_LEN] = raw.try_into().map_err(|_| KeyError::BadLength {
            expected: DERIVE_KEY_LEN,
            got: raw.len(),
        })?;
        Ok(Self(arr))
    }

    /// Wraps a full-length hash output as a key — the infallible
    /// counterpart of [`DeriveKey::from_raw`] for derivation loops that
    /// already hold a `[u8; DERIVE_KEY_LEN]` digest (e.g. the batched LKH
    /// refresh threading a [`crate::PrfContext`] through a key tree).
    pub fn from_hash(raw: [u8; DERIVE_KEY_LEN]) -> Self {
        Self(raw)
    }

    /// The keyed hash `KH`: derives a sub-hierarchy root from this key.
    pub fn kh(&self, label: &[u8]) -> DeriveKey {
        DeriveKey(hmac_sha1(&self.0, label))
    }

    /// One-way child derivation `K_{ktid‖b} = H(K_ktid ‖ b)` for a binary
    /// tree. `bit` must be 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics when `bit > 1`; use [`DeriveKey::child_n`] for a-ary trees.
    pub fn child(&self, bit: u8) -> DeriveKey {
        assert!(bit <= 1, "binary child index must be 0 or 1, got {bit}");
        self.child_n(bit as u32)
    }

    /// One-way child derivation for an a-ary tree: `H(K ‖ index)`.
    pub fn child_n(&self, index: u32) -> DeriveKey {
        let mut data = [0u8; DERIVE_KEY_LEN + 4];
        data[..DERIVE_KEY_LEN].copy_from_slice(&self.0);
        data[DERIVE_KEY_LEN..].copy_from_slice(&index.to_be_bytes());
        DeriveKey(Sha1::digest(&data))
    }

    /// Derives the AES-128 content key used to encrypt an event under this
    /// hierarchy node (the first 16 bytes of `KH(self, "enc")`).
    pub fn content_key(&self) -> AesKey {
        let full = hmac_sha1(&self.0, b"psguard-content-key");
        let mut k = [0u8; BLOCK_SIZE];
        k.copy_from_slice(&full[..BLOCK_SIZE]);
        AesKey(k)
    }

    /// Raw key bytes (for wire transfer to an authorized subscriber).
    pub fn as_bytes(&self) -> &[u8; DERIVE_KEY_LEN] {
        &self.0
    }

    /// A short hex fingerprint for logs and `Debug` output.
    pub fn fingerprint(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl PartialEq for DeriveKey {
    fn eq(&self, other: &Self) -> bool {
        ct_eq(&self.0, &other.0)
    }
}

impl Eq for DeriveKey {}

impl std::hash::Hash for DeriveKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl std::fmt::Debug for DeriveKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeriveKey({})", Redacted(&self.0))
    }
}

// Zeroize-on-drop: hierarchy keys grant decryption of whole event classes;
// wipe them before the memory is reused.
impl Drop for DeriveKey {
    fn drop(&mut self) {
        zeroize(&mut self.0);
    }
}

/// A 16-byte AES-128 content-encryption key.
///
/// Equality is constant time; `Debug` never prints key bytes.
#[derive(Clone)]
pub struct AesKey([u8; BLOCK_SIZE]);

impl AesKey {
    /// Wraps exactly 16 raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::BadLength`] for any other length.
    pub fn from_raw(raw: &[u8]) -> Result<Self, KeyError> {
        let arr: [u8; BLOCK_SIZE] = raw.try_into().map_err(|_| KeyError::BadLength {
            expected: BLOCK_SIZE,
            got: raw.len(),
        })?;
        Ok(Self(arr))
    }

    /// Raw key bytes, e.g. to construct an [`crate::Aes128`].
    pub fn as_bytes(&self) -> &[u8; BLOCK_SIZE] {
        &self.0
    }
}

impl PartialEq for AesKey {
    fn eq(&self, other: &Self) -> bool {
        ct_eq(&self.0, &other.0)
    }
}

impl Eq for AesKey {}

impl std::fmt::Debug for AesKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AesKey({})", Redacted(&self.0))
    }
}

// Zeroize-on-drop: content keys decrypt event payloads directly.
impl Drop for AesKey {
    fn drop(&mut self) {
        zeroize(&mut self.0);
    }
}

/// A 16-byte nonce / IV.
///
/// Nonces are public values, so `Debug`, ordering and hashing are all
/// derived normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nonce(pub [u8; BLOCK_SIZE]);

impl Nonce {
    /// Builds a nonce from a counter value (low 8 bytes big-endian).
    pub fn from_counter(counter: u64) -> Self {
        let mut n = [0u8; BLOCK_SIZE];
        n[8..].copy_from_slice(&counter.to_be_bytes());
        Nonce(n)
    }

    /// Raw nonce bytes.
    pub fn as_bytes(&self) -> &[u8; BLOCK_SIZE] {
        &self.0
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::Nonce;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    impl Serialize for Nonce {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            self.0.serialize(serializer)
        }
    }

    impl<'de> Deserialize<'de> for Nonce {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            <[u8; 16]>::deserialize(deserializer).map(Nonce)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = DeriveKey::from_bytes(b"seed");
        let b = DeriveKey::from_bytes(b"seed");
        assert_eq!(a, b);
        assert_eq!(a.kh(b"topic"), b.kh(b"topic"));
        assert_eq!(a.child(0), b.child(0));
        assert_eq!(a.child_n(3), b.child_n(3));
        assert_eq!(a.content_key(), b.content_key());
    }

    #[test]
    fn children_differ_from_parent_and_siblings() {
        let root = DeriveKey::from_bytes(b"root");
        let left = root.child(0);
        let right = root.child(1);
        assert_ne!(left, right);
        assert_ne!(left, root);
        assert_ne!(right, root);
        assert_ne!(root.child_n(2), root.child_n(3));
    }

    #[test]
    fn binary_child_matches_child_n() {
        let root = DeriveKey::from_bytes(b"root");
        assert_eq!(root.child(0), root.child_n(0));
        assert_eq!(root.child(1), root.child_n(1));
    }

    #[test]
    #[should_panic(expected = "binary child index")]
    fn binary_child_panics_on_large_bit() {
        DeriveKey::from_bytes(b"root").child(2);
    }

    #[test]
    fn from_raw_checks_length() {
        assert!(DeriveKey::from_raw(&[0u8; DERIVE_KEY_LEN]).is_ok());
        assert_eq!(
            DeriveKey::from_raw(&[0u8; 5]),
            Err(KeyError::BadLength {
                expected: DERIVE_KEY_LEN,
                got: 5
            })
        );
        assert!(AesKey::from_raw(&[0u8; 16]).is_ok());
        assert!(AesKey::from_raw(&[0u8; 20]).is_err());
    }

    #[test]
    fn debug_never_leaks_full_key() {
        let k = DeriveKey::from_bytes(b"secret");
        let dbg = format!("{k:?}");
        assert!(dbg.len() < 30, "{dbg}");
        let hex_full: String = k.as_bytes().iter().map(|b| format!("{b:02x}")).collect();
        assert!(!dbg.contains(&hex_full));
    }

    #[test]
    fn redacting_debug_prints_at_most_the_fingerprint() {
        let k = DeriveKey::from_bytes(b"secret material");
        let ck = k.content_key();
        let outputs = [
            (format!("{k:?}"), k.as_bytes().to_vec()),
            (format!("{ck:?}"), ck.as_bytes().to_vec()),
        ];
        for (dbg, bytes) in outputs {
            // The redacted form may show a two-byte fingerprint; any run of
            // three consecutive key bytes in the output is a leak.
            for window in bytes.windows(3) {
                let hex: String = window.iter().map(|b| format!("{b:02x}")).collect();
                assert!(!dbg.contains(&hex), "{dbg} leaks key bytes {hex}");
            }
        }
    }

    #[test]
    fn zeroize_wipes_key_material() {
        let mut buf = *DeriveKey::from_bytes(b"to wipe").as_bytes();
        assert!(buf.iter().any(|&b| b != 0));
        crate::zeroize::zeroize(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn nonce_from_counter_is_distinct() {
        assert_ne!(Nonce::from_counter(1), Nonce::from_counter(2));
        assert_eq!(Nonce::from_counter(7), Nonce::from_counter(7));
    }
}
