//! A minimal streaming digest abstraction shared by [`crate::Md5`] and
//! [`crate::Sha1`], and consumed generically by [`crate::Hmac`].

/// A cryptographic hash function with a streaming (init/update/finalize) API.
///
/// Implementations buffer input into 64-byte blocks and run their
/// compression function per block, exactly like the reference
/// implementations in RFC 1321 / RFC 3174.
///
/// # Example
///
/// ```
/// use psguard_crypto::{Digest, Sha1};
///
/// let mut hasher = Sha1::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let streamed = hasher.finalize();
/// assert_eq!(streamed, Sha1::digest(b"hello world"));
/// ```
pub trait Digest: Clone {
    /// Digest output size in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block size in bytes (64 for MD5 and SHA-1).
    const BLOCK_LEN: usize;

    /// Creates a fresh hasher in its initial state.
    fn new() -> Self;

    /// Absorbs `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest.
    ///
    /// The returned vector has exactly [`Digest::OUTPUT_LEN`] bytes.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience over `new` → `update` → `finalize`.
    fn digest_vec(data: &[u8]) -> Vec<u8> {
        let mut d = Self::new();
        d.update(data);
        d.finalize()
    }

    /// Erases any absorbed (possibly key-equivalent) material and resets
    /// the hasher to its initial state.
    ///
    /// Long-lived holders of keyed digest states (e.g. the reusable HMAC
    /// contexts) call this from `Drop`. Implementations should overwrite
    /// the chaining state and block buffer with volatile writes so the
    /// wipe survives optimization; the default merely reassigns the
    /// initial state.
    fn wipe(&mut self)
    where
        Self: Sized,
    {
        *self = Self::new();
    }
}

/// Serializes the 64-bit message bit-length in the byte order the algorithm
/// requires and appends the standard `0x80 … 0x00` Merkle–Damgård padding.
///
/// Returns the padding block(s) to feed through `update`.
pub(crate) fn md_padding(message_len_bytes: u64, little_endian: bool) -> Vec<u8> {
    let bit_len = message_len_bytes.wrapping_mul(8);
    // Pad to 56 mod 64 then append the 8-byte length.
    let rem = (message_len_bytes % 64) as usize;
    let pad_len = if rem < 56 { 56 - rem } else { 120 - rem };
    let mut pad = Vec::with_capacity(pad_len + 8);
    pad.push(0x80);
    pad.resize(pad_len, 0);
    if little_endian {
        pad.extend_from_slice(&bit_len.to_le_bytes());
    } else {
        pad.extend_from_slice(&bit_len.to_be_bytes());
    }
    pad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_length_is_multiple_of_block() {
        for len in 0..300u64 {
            let pad = md_padding(len, false);
            assert_eq!((len as usize + pad.len()) % 64, 0, "len={len}");
            assert!(pad.len() >= 9);
            assert_eq!(pad[0], 0x80);
        }
    }

    #[test]
    fn padding_encodes_bit_length() {
        let pad = md_padding(3, true);
        let tail: [u8; 8] = pad[pad.len() - 8..].try_into().unwrap();
        assert_eq!(u64::from_le_bytes(tail), 24);
        let pad = md_padding(3, false);
        let tail: [u8; 8] = pad[pad.len() - 8..].try_into().unwrap();
        assert_eq!(u64::from_be_bytes(tail), 24);
    }
}
