//! From-scratch cryptographic primitives for the PSGuard reproduction.
//!
//! The PSGuard paper (Srivatsa & Liu, ICDCS 2007) instantiates its key
//! derivation and event encryption with the following concrete algorithms
//! (§5.1 of the paper):
//!
//! * `H`  — a one-way hash function, approximated by MD5 or **SHA-1**;
//! * `KH` — a keyed pseudo-random function, approximated by **HMAC-SHA1**;
//! * `E`  — an encryption algorithm, **AES-128-CBC**;
//! * `F`  — a PRF used for tokenization (Song–Wagner–Perrig searchable
//!   encryption), instantiated here as HMAC-SHA1.
//!
//! This crate implements all of them from first principles so that the
//! reproduction has no external cryptographic dependencies. Every primitive
//! is validated against the published test vectors (RFC 1321 for MD5,
//! RFC 3174 for SHA-1, RFC 2202 for HMAC, FIPS-197 and NIST SP 800-38A for
//! AES).
//!
//! **Scope note:** these implementations aim for correctness and clarity,
//! which is what a systems-paper reproduction needs. They are *not* hardened
//! against side channels (except [`ct_eq`], which is constant time) and
//! should not be lifted into unrelated production systems as-is.
//!
//! # Example
//!
//! ```
//! use psguard_crypto::{Sha1, Digest, hmac_sha1, DeriveKey};
//!
//! // One-way hash H.
//! let digest = Sha1::digest(b"cancerTrail");
//! assert_eq!(digest.len(), 20);
//!
//! // Keyed hash KH used to root the key hierarchy.
//! let master = DeriveKey::from_bytes(b"kdc master key");
//! let topic_key = master.kh(b"cancerTrail");
//! let num_root = topic_key.kh(b"age");
//! // Child key derivation: K_{xi || b} = H(K_xi || b).
//! let left = num_root.child(0);
//! let right = num_root.child(1);
//! assert_ne!(left, right);
//! let _ = hmac_sha1(topic_key.as_bytes(), b"age");
//! ```

// `deny` rather than the workspace-wide `forbid`: the zeroize module holds
// the one audited volatile write and scopes its own `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod aes;
mod context;
mod ct;
mod digest;
mod hmac;
mod key;
mod md5;
mod modes;
mod modexp;
mod prf;
mod redact;
mod sha1;
mod zeroize;

pub use aes::{Aes128, BLOCK_SIZE};
pub use context::{AesContext, HmacContext, PrfContext};
pub use ct::ct_eq;
pub use digest::Digest;
pub use hmac::{hmac, hmac_md5, hmac_sha1, Hmac};
pub use key::{AesKey, DeriveKey, KeyError, Nonce, DERIVE_KEY_LEN};
pub use md5::Md5;
pub use modes::{
    cbc_decrypt, cbc_encrypt, ctr_apply, ecb_decrypt_block, ecb_encrypt_block, pkcs7_pad,
    pkcs7_unpad, CipherError,
};
pub use modexp::{mod_exp, mod_inv_prime, mod_mul};
pub use prf::{prf, prf_verify, Token, TOKEN_LEN};
pub use redact::Redacted;
pub use sha1::Sha1;
pub use zeroize::{zeroize, zeroize_u32};

/// Number of bytes produced by the one-way hash `H` (SHA-1).
pub const HASH_LEN: usize = 20;

/// The one-way hash function `H` from the paper: SHA-1.
///
/// `H` is used for child-key derivation inside every key tree:
/// `K_{ktid || b} = H(K_ktid || b)`.
///
/// # Example
///
/// ```
/// let d = psguard_crypto::h(b"hello");
/// assert_eq!(d.len(), psguard_crypto::HASH_LEN);
/// ```
pub fn h(data: &[u8]) -> [u8; HASH_LEN] {
    Sha1::digest(data)
}

/// The keyed pseudo-random function `KH` from the paper: HMAC-SHA1.
///
/// `KH` roots each hierarchy: `K(w) = KH_{rk(KDC)}(w)` and
/// `K_Ø^num = KH_{K(w)}(num)`.
///
/// # Example
///
/// ```
/// let k = psguard_crypto::kh(b"master", b"cancerTrail");
/// assert_eq!(k.len(), psguard_crypto::HASH_LEN);
/// ```
pub fn kh(key: &[u8], data: &[u8]) -> [u8; HASH_LEN] {
    hmac_sha1(key, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_is_sha1() {
        assert_eq!(h(b"abc"), Sha1::digest(b"abc"));
    }

    #[test]
    fn kh_is_hmac_sha1() {
        assert_eq!(kh(b"k", b"m"), hmac_sha1(b"k", b"m"));
    }

    #[test]
    fn kh_differs_by_key_and_message() {
        assert_ne!(kh(b"k1", b"m"), kh(b"k2", b"m"));
        assert_ne!(kh(b"k", b"m1"), kh(b"k", b"m2"));
    }
}
