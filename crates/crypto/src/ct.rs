//! Constant-time comparison for secret material.

/// Compares two byte slices in time independent of where they differ.
///
/// Returns `false` immediately (and safely — length is public information)
/// when the lengths differ.
///
/// # Example
///
/// ```
/// assert!(psguard_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!psguard_crypto::ct_eq(b"abc", b"abd"));
/// assert!(!psguard_crypto::ct_eq(b"abc", b"ab"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse without branching on the value.
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[0, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
    }
}
