//! MD5 (RFC 1321), implemented from the specification.
//!
//! The paper lists MD5 as an alternative instantiation of the one-way hash
//! `H` (and HMAC-MD5 for `KH`). We provide it so the key hierarchy can be
//! benchmarked under either hash, mirroring the paper's choice.

use crate::digest::{md_padding, Digest};
use crate::zeroize::{zeroize, zeroize_u32};

/// Streaming MD5 hasher.
///
/// # Example
///
/// ```
/// use psguard_crypto::Md5;
///
/// let d = Md5::digest(b"abc");
/// assert_eq!(d[0], 0x90);
/// assert_eq!(d.len(), 16);
/// ```
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl std::fmt::Debug for Md5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Md5")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Default for Md5 {
    fn default() -> Self {
        <Self as Digest>::new()
    }
}

/// Per-round shift amounts (RFC 1321 §3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `T[i] = floor(2^32 * |sin(i+1)|` (RFC 1321 §3.4).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Md5 {
    /// One-shot MD5 digest returning a fixed-size array.
    pub fn digest(data: &[u8]) -> [u8; 16] {
        let mut s = <Self as Digest>::new();
        Digest::update(&mut s, data);
        let v = Digest::finalize(s);
        let mut out = [0u8; 16];
        out.copy_from_slice(&v);
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | ((!b) & d), i),
                16..=31 => ((d & b) | ((!d) & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let temp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }

    fn absorb(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            } else {
                // Buffer still partial and input exhausted.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        let rem = chunks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffer_len = rem.len();
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = 16;
    const BLOCK_LEN: usize = 64;

    fn new() -> Self {
        Self {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, data: &[u8]) {
        self.absorb(data);
    }

    fn finalize(mut self) -> Vec<u8> {
        let pad = md_padding(self.total_len, true);
        self.absorb(&pad);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = Vec::with_capacity(16);
        for word in self.state {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn wipe(&mut self) {
        zeroize(&mut self.buffer);
        zeroize_u32(&mut self.state);
        *self = <Self as Digest>::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_suite() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex(&Md5::digest(input)), want);
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(200).collect();
        let expect = Md5::digest(&data);
        for split in [0usize, 1, 63, 64, 65, 100, 199, 200] {
            let mut s = <Md5 as Digest>::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(Digest::finalize(s), expect.to_vec(), "split={split}");
        }
    }
}
