//! Extended vector tests and property tests for the crypto crate.

use proptest::prelude::*;
use psguard_crypto::{
    cbc_decrypt, cbc_encrypt, ct_eq, hmac_md5, hmac_sha1, mod_exp, mod_mul, Aes128, DeriveKey,
    Digest, Md5, Sha1,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// RFC 2202 cases 4, 5, 7 for HMAC-SHA1 (the ones not covered by the unit
// tests).
#[test]
fn rfc2202_sha1_case4() {
    let key: Vec<u8> = (0x01..=0x19).collect();
    let data = [0xcdu8; 50];
    assert_eq!(
        hex(&hmac_sha1(&key, &data)),
        "4c9007f4026250c6bc8414f9bf50c86c2d7235da"
    );
}

#[test]
fn rfc2202_sha1_case5_truncation_source() {
    let key = [0x0cu8; 20];
    assert_eq!(
        hex(&hmac_sha1(&key, b"Test With Truncation")),
        "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04"
    );
}

#[test]
fn rfc2202_sha1_case7() {
    let key = [0xaau8; 80];
    assert_eq!(
        hex(&hmac_sha1(
            &key,
            b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data"
        )),
        "e8e99d0f45237d786d6bbaa7965c7808bbff1a91"
    );
}

#[test]
fn rfc2202_md5_case3() {
    let key = [0xaau8; 16];
    let data = [0xddu8; 50];
    assert_eq!(
        hex(&hmac_md5(&key, &data)),
        "56be34521d144c88dbb8c733f0e8b3f6"
    );
}

// NIST SP 800-38A F.2.2 (CBC-AES128.Decrypt) — all four blocks.
#[test]
fn nist_cbc_four_blocks() {
    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }
    let key: [u8; 16] = from_hex("2b7e151628aed2a6abf7158809cf4f3c")
        .try_into()
        .unwrap();
    let iv: [u8; 16] = from_hex("000102030405060708090a0b0c0d0e0f")
        .try_into()
        .unwrap();
    let pt = from_hex(
        "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
         30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
    );
    let expect_ct = from_hex(
        "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2\
         73bed6b8e3c1743b7116e69e222295163ff1caa1681fac09120eca307586e1a7",
    );
    let cipher = Aes128::new(&key);
    let ct = cbc_encrypt(&cipher, &iv, &pt);
    assert_eq!(&ct[..64], expect_ct.as_slice());
    assert_eq!(cbc_decrypt(&cipher, &iv, &ct).unwrap(), pt);
}

proptest! {
    #[test]
    fn sha1_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..600), split in 0usize..600) {
        let split = split.min(data.len());
        let mut s = <Sha1 as Digest>::new();
        s.update(&data[..split]);
        s.update(&data[split..]);
        prop_assert_eq!(Digest::finalize(s), Sha1::digest(&data).to_vec());
    }

    #[test]
    fn md5_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..600), splits in prop::collection::vec(0usize..600, 0..4)) {
        let mut s = <Md5 as Digest>::new();
        let mut prev = 0usize;
        let mut splits = splits;
        splits.sort_unstable();
        for sp in splits {
            let sp = sp.min(data.len()).max(prev);
            s.update(&data[prev..sp]);
            prev = sp;
        }
        s.update(&data[prev..]);
        prop_assert_eq!(Digest::finalize(s), Md5::digest(&data).to_vec());
    }

    #[test]
    fn hmac_distinguishes_keys(k1 in prop::collection::vec(any::<u8>(), 1..100), k2 in prop::collection::vec(any::<u8>(), 1..100), msg in prop::collection::vec(any::<u8>(), 0..100)) {
        prop_assume!(k1 != k2);
        // Not a cryptographic proof — a regression guard against key
        // handling bugs (e.g. ignoring part of the key).
        prop_assert_ne!(hmac_sha1(&k1, &msg), hmac_sha1(&k2, &msg));
    }

    #[test]
    fn ct_eq_agrees_with_eq(a in prop::collection::vec(any::<u8>(), 0..64), b in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn derive_chain_depends_on_every_step(path in prop::collection::vec(0u32..4, 1..10), flip in 0usize..10) {
        let root = DeriveKey::from_bytes(b"root");
        let walk = |p: &[u32]| p.iter().fold(root.clone(), |k, &d| k.child_n(d));
        let k1 = walk(&path);
        let mut altered = path.clone();
        let i = flip % altered.len();
        altered[i] = (altered[i] + 1) % 4;
        prop_assert_ne!(k1, walk(&altered));
    }

    #[test]
    fn mod_exp_multiplicative(base in 1u64..1_000_000, e1 in 0u64..64, e2 in 0u64..64) {
        const P: u64 = 1_000_000_007;
        // base^(e1+e2) == base^e1 · base^e2 (mod p)
        let lhs = mod_exp(base, e1 + e2, P);
        let rhs = mod_mul(mod_exp(base, e1, P), mod_exp(base, e2, P), P);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn cbc_ciphertext_differs_from_plaintext(key: [u8; 16], iv: [u8; 16], data in prop::collection::vec(any::<u8>(), 16..128)) {
        let cipher = Aes128::new(&key);
        let ct = cbc_encrypt(&cipher, &iv, &data);
        prop_assert_ne!(&ct[..data.len().min(ct.len())], data.as_slice());
    }
}
