//! Property tests for the secure-routing fast path: token-bucketed
//! matching with PRF probing and the per-nonce memo must be
//! observationally identical to the linear scan over every
//! `SecureFilter`, while performing one PRF verification per *distinct*
//! token (not per subscription).

use proptest::prelude::*;
use psguard_crypto::{prf, Token};
use psguard_model::{AttrValue, Constraint, Event, Op};
use psguard_routing::{RoutableTag, SecureEvent, SecureFilter};
use psguard_siena::{Peer, SubscriptionTable};

fn token(topic: u8) -> Token {
    prf(b"kdc-master", &[topic])
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (-10i64..40).prop_map(Op::Ge),
        (-10i64..40).prop_map(Op::Le),
        (-10i64..40).prop_map(|v| Op::Eq(AttrValue::Int(v))),
    ]
    .boxed()
}

fn filter_strategy() -> BoxedStrategy<SecureFilter> {
    (0u8..4, prop::collection::vec(("[xy]", op_strategy()), 0..3))
        .prop_map(|(topic, constraints)| SecureFilter {
            token: token(topic),
            constraints: constraints
                .into_iter()
                .map(|(name, op)| Constraint::new(name, op))
                .collect(),
        })
        .boxed()
}

fn event_strategy() -> BoxedStrategy<SecureEvent> {
    (
        0u8..5,
        any::<u128>(),
        prop::collection::vec(("[xy]", -15i64..45), 0..3),
    )
        .prop_map(|(topic, nonce, attrs)| {
            let mut b = Event::builder("");
            for (name, value) in attrs {
                b = b.attr(name, value);
            }
            SecureEvent {
                // Topic 4 is published under a token nobody subscribes to.
                tag: RoutableTag::with_nonce(&token(topic), nonce.to_le_bytes()),
                event: b.payload(vec![0u8; 8]).build(),
                iv: [0u8; 16],
                epoch: 0,
                mac: [0u8; 20],
            }
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn secure_index_agrees_with_linear_scan(
        subs in prop::collection::vec((0u32..6, filter_strategy()), 0..24),
        events in prop::collection::vec(event_strategy(), 1..6),
    ) {
        let mut table: SubscriptionTable<SecureFilter> = SubscriptionTable::new();
        for (peer, filter) in subs {
            table.insert(Peer::Local(peer), filter);
        }
        for event in &events {
            let fast = table.matching_peers(event);
            let reference = table.matching_peers_linear(event);
            prop_assert_eq!(fast, reference);
        }
    }

    #[test]
    fn prf_work_is_per_distinct_token_and_memoized(
        fanout in 1u32..40,
        nonce in any::<u128>(),
    ) {
        // `fanout` subscribers all share one topic token; a second topic
        // has a single subscriber.
        let mut table: SubscriptionTable<SecureFilter> = SubscriptionTable::new();
        for peer in 0..fanout {
            table.insert(
                Peer::Local(peer),
                SecureFilter { token: token(0), constraints: vec![] },
            );
        }
        table.insert(
            Peer::Local(1000),
            SecureFilter { token: token(1), constraints: vec![] },
        );

        let event = SecureEvent {
            tag: RoutableTag::with_nonce(&token(0), nonce.to_le_bytes()),
            event: Event::builder("").payload(vec![1]).build(),
            iv: [0u8; 16],
            epoch: 0,
            mac: [0u8; 20],
        };

        let first = table.matching_peers(&event);
        prop_assert_eq!(first.len() as u32, fanout);
        let stats = table.last_match_stats();
        // One PRF test per distinct live token — 2 — regardless of fanout.
        prop_assert_eq!(stats.key_probes, 2);
        prop_assert_eq!(stats.memo_hits, 0);

        // Re-publishing the same envelope hits the nonce memo: no PRF.
        let second = table.matching_peers(&event);
        prop_assert_eq!(first, second);
        let stats = table.last_match_stats();
        prop_assert_eq!(stats.key_probes, 0);
        prop_assert_eq!(stats.memo_hits, 1);

        // A subscription change invalidates the memo soundly.
        table.insert(
            Peer::Local(2000),
            SecureFilter { token: token(0), constraints: vec![] },
        );
        let third = table.matching_peers(&event);
        prop_assert_eq!(third.len() as u32, fanout + 1);
        prop_assert_eq!(table.last_match_stats().key_probes, 2);

        // Token interning: fanout+2 subscriptions, 2 distinct keys.
        prop_assert_eq!(table.index().distinct_keys(), 2);
    }
}
