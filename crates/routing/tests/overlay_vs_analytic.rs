//! Cross-validation of the operational overlay against the analytic
//! delivery model: for every `(ind, drop fraction, seed)` the simulator
//! run and `RedundantRouter::simulate_drops` must agree — the acceptance
//! bound is 2 percentage points, but sharing the RNG stream makes the
//! agreement exact per event.

use psguard_routing::{MultipathOverlay, MultipathTree, RedundantRouter};

const EVENTS: u64 = 400;
const DROP_FRACTIONS: [f64; 3] = [0.05, 0.15, 0.30];
const SEEDS: [u64; 5] = [1, 2, 3, 7, 11];

#[test]
fn overlay_matches_analytic_within_two_points() {
    let tree = MultipathTree::new(3, 3).unwrap();
    let leaves = [
        tree.leaf_digits(0),
        tree.leaf_digits(tree.leaf_count() / 2),
        tree.leaf_digits(tree.leaf_count() - 1),
    ];
    for ind in 1..=3u8 {
        for &drop in &DROP_FRACTIONS {
            for &seed in &SEEDS {
                let leaf = &leaves[(seed as usize) % leaves.len()];
                let router = RedundantRouter::new(tree.clone(), ind, ind).unwrap();
                let analytic = router.simulate_drops(leaf, drop, EVENTS, seed).unwrap();
                let overlay = MultipathOverlay::new(router)
                    .run_drops(leaf, drop, EVENTS, seed)
                    .unwrap();
                let gap = (overlay.delivery_rate() - analytic.delivery_rate()).abs();
                assert!(
                    gap <= 0.02,
                    "ind={ind} drop={drop} seed={seed}: overlay {:.3} vs analytic {:.3}",
                    overlay.delivery_rate(),
                    analytic.delivery_rate()
                );
                // Stronger than the acceptance bound: the shared RNG
                // stream makes the agreement exact.
                assert_eq!(overlay.delivered, analytic.delivered);
                assert_eq!(overlay.path_transmissions, analytic.transmissions);
            }
        }
    }
}

#[test]
fn overlay_matches_analytic_with_partial_replication() {
    // replicas < ind exercises the per-event path lottery; the streams
    // still coincide because choose_paths is drawn in publish order.
    let tree = MultipathTree::new(3, 2).unwrap();
    let leaf = tree.leaf_digits(4);
    for replicas in 1..=2u8 {
        for &seed in &SEEDS {
            let router = RedundantRouter::new(tree.clone(), 3, replicas).unwrap();
            let analytic = router.simulate_drops(&leaf, 0.2, EVENTS, seed).unwrap();
            let overlay = MultipathOverlay::new(router)
                .run_drops(&leaf, 0.2, EVENTS, seed)
                .unwrap();
            assert_eq!(
                overlay.delivered, analytic.delivered,
                "replicas={replicas} seed={seed}"
            );
        }
    }
}

#[test]
fn redundancy_monotonically_improves_overlay_delivery() {
    // More disjoint paths never hurt: ind=3 must dominate ind=1 on the
    // same dropping set (same seed draws the same adversaries).
    let tree = MultipathTree::new(3, 3).unwrap();
    let leaf = tree.leaf_digits(9);
    for &seed in &SEEDS {
        let mut rates = Vec::new();
        for ind in 1..=3u8 {
            let router = RedundantRouter::new(tree.clone(), ind, ind).unwrap();
            let run = MultipathOverlay::new(router)
                .run_drops(&leaf, 0.25, EVENTS, seed)
                .unwrap();
            rates.push(run.delivery_rate());
        }
        assert!(
            rates[0] <= rates[1] + 1e-12 && rates[1] <= rates[2] + 1e-12,
            "seed {seed}: rates {rates:?}"
        );
    }
}
