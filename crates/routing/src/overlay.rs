//! Event-level multipath dissemination on the discrete-event simulator.
//!
//! [`RedundantRouter::simulate_drops`] computes delivery analytically: it
//! marks dropping routers, checks which path variants survive, and counts.
//! [`MultipathOverlay`] answers the same question *operationally*: every
//! routing node of the [`MultipathTree`] becomes a simulator node, each
//! event is forwarded hop by hop along its chosen variant paths through
//! [`Simulator::send_faulty`], crashed routers swallow arrivals, and the
//! subscriber suppresses redundant copies with a [`DedupWindow`]. Both
//! draw the dropping set and the per-event path choices from the same
//! seeded RNG stream, so for equal `(leaf, drop_fraction, events, seed)`
//! the two agree event for event — the cross-check that validates the
//! fault-injection layer against the analytic model.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use psguard_net::{FaultPlan, FaultStats, NodeId, SimTime, Simulator, Window};

use crate::dedup::DedupWindow;
use crate::multipath::MultipathError;
use crate::redundant::RedundantRouter;

/// One in-flight copy of an event: which event, which path variant, and
/// how far along that path it has travelled (`pos` indexes the variant
/// path's node list; `depth + 1` means "at the subscriber").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Hop {
    event: u64,
    path: u8,
    pos: usize,
}

/// Outcome of an overlay dissemination run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayReport {
    /// Events published.
    pub sent: u64,
    /// Events for which at least one copy reached the subscriber.
    pub delivered: u64,
    /// Redundant copies suppressed by the subscriber's dedup window.
    pub duplicates_suppressed: u64,
    /// Copies swallowed because they arrived at a crashed router.
    pub blocked_at_crashed: u64,
    /// Path-level transmissions (`events × replicas`), the bandwidth
    /// metric of [`crate::DeliveryReport`].
    pub path_transmissions: u64,
    /// Simulated time at which the last copy was resolved (µs).
    pub completed_at_us: SimTime,
    /// What the fault plan did to the hop-level traffic.
    pub fault_stats: FaultStats,
}

impl OverlayReport {
    /// Fraction of events delivered (1.0 when nothing was sent).
    pub fn delivery_rate(&self) -> f64 {
        if self.sent == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.sent as f64
    }
}

/// The multipath network `G_ind` run as a live overlay on the simulator.
///
/// # Example
///
/// ```
/// use psguard_routing::{MultipathOverlay, MultipathTree, RedundantRouter};
///
/// let tree = MultipathTree::new(3, 2).unwrap();
/// let leaf = tree.leaf_digits(4);
/// let router = RedundantRouter::new(tree, 3, 3).unwrap();
/// // Same seed ⇒ the operational run reproduces the analytic one.
/// let analytic = router.simulate_drops(&leaf, 0.2, 200, 9).unwrap();
/// let overlay = MultipathOverlay::new(router);
/// let run = overlay.run_drops(&leaf, 0.2, 200, 9).unwrap();
/// assert_eq!(run.delivered, analytic.delivered);
/// ```
#[derive(Debug, Clone)]
pub struct MultipathOverlay {
    router: RedundantRouter,
    hop_latency_us: SimTime,
    event_spacing_us: SimTime,
}

/// Identity under which the publisher's events are deduplicated.
const PUBLISHER: &str = "P";

impl MultipathOverlay {
    /// Wraps a [`RedundantRouter`] with default timing: 2 ms per hop,
    /// one event published every 1 ms.
    pub fn new(router: RedundantRouter) -> Self {
        MultipathOverlay {
            router,
            hop_latency_us: 2_000,
            event_spacing_us: 1_000,
        }
    }

    /// Overrides the per-hop latency and the publish interval (µs).
    pub fn with_timing(mut self, hop_latency_us: SimTime, event_spacing_us: SimTime) -> Self {
        self.hop_latency_us = hop_latency_us.max(1);
        self.event_spacing_us = event_spacing_us.max(1);
        self
    }

    /// The router whose paths this overlay forwards on.
    pub fn router(&self) -> &RedundantRouter {
        &self.router
    }

    /// Disseminates `events` to the subscriber at `leaf` while a random
    /// fraction `drop_fraction` of routing nodes is crashed for the whole
    /// run — the persistent-adversary model of
    /// [`RedundantRouter::simulate_drops`], realised as crash windows in a
    /// [`FaultPlan`]. The dropping set and the per-event path choices are
    /// drawn exactly as in `simulate_drops`, so equal arguments yield
    /// equal per-event outcomes.
    ///
    /// # Errors
    ///
    /// Propagates path-construction errors for malformed leaves.
    pub fn run_drops(
        &self,
        leaf: &[u8],
        drop_fraction: f64,
        events: u64,
        seed: u64,
    ) -> Result<OverlayReport, MultipathError> {
        let mut rng = StdRng::seed_from_u64(seed);
        // Identical draw to simulate_drops: one Bernoulli per node index in
        // 0..routing_node_count. (Index 0 is the publisher root, which no
        // copy ever transits back through, and the highest routing index
        // equals routing_node_count and is never drawn — both quirks are
        // shared with the analytic model by construction.)
        let node_count = self.router.tree().routing_node_count();
        let dropping: HashSet<u64> = (0..node_count)
            .filter(|_| rng.gen_bool(drop_fraction.clamp(0.0, 1.0)))
            .collect();
        let mut crashed: Vec<u64> = dropping.into_iter().collect();
        crashed.sort_unstable();

        let mut plan = FaultPlan::new(seed);
        for idx in crashed {
            plan.add_crash(NodeId(idx as u32), Window::new(0, SimTime::MAX));
        }
        self.run_with_plan(&mut plan, leaf, events, &mut rng)
    }

    /// Disseminates `events` under an arbitrary caller-built [`FaultPlan`]
    /// (link drops, partitions, timed crash windows…). Path choices are
    /// drawn from `path_seed`; the plan keeps its own fault stream.
    ///
    /// # Errors
    ///
    /// Propagates path-construction errors for malformed leaves.
    pub fn run_under(
        &self,
        plan: &mut FaultPlan,
        leaf: &[u8],
        events: u64,
        path_seed: u64,
    ) -> Result<OverlayReport, MultipathError> {
        let mut rng = StdRng::seed_from_u64(path_seed);
        self.run_with_plan(plan, leaf, events, &mut rng)
    }

    fn run_with_plan(
        &self,
        plan: &mut FaultPlan,
        leaf: &[u8],
        events: u64,
        rng: &mut StdRng,
    ) -> Result<OverlayReport, MultipathError> {
        let tree = self.router.tree();
        let arity = tree.arity();
        let depth = tree.depth();
        let ind = self.router.ind();

        // Node indices per variant path; entry 0 is the root (index 0).
        let mut paths: Vec<Vec<u64>> = Vec::with_capacity(ind as usize);
        for k in 0..ind {
            paths.push(
                tree.variant_path(leaf, k)?
                    .into_iter()
                    .map(|n| n.index(arity))
                    .collect(),
            );
        }
        let node_count = tree.routing_node_count();
        assert!(
            node_count < u32::MAX as u64,
            "tree too large for simulator node ids"
        );
        let root = NodeId(0);
        let subscriber = NodeId((node_count + 1) as u32);

        // Publish phase: each event departs the root on its chosen
        // variants. choose_paths is called once per event in publish
        // order, consuming the RNG stream exactly as simulate_drops does.
        let mut sim: Simulator<Hop> = Simulator::new();
        let mut path_transmissions = 0u64;
        for event in 0..events {
            let depart = event * self.event_spacing_us;
            for k in self.router.choose_paths(rng) {
                path_transmissions += 1;
                let dst = NodeId(paths[k as usize][1] as u32);
                for jitter in plan.transmit(root, dst, depart).iter() {
                    sim.schedule_at(
                        depart + self.hop_latency_us + jitter,
                        dst,
                        Hop {
                            event,
                            path: k,
                            pos: 1,
                        },
                    );
                }
            }
        }

        // Forwarding phase: routers relay copies hop by hop; crashed
        // routers swallow arrivals; the subscriber deduplicates.
        let mut dedup = DedupWindow::new(4 * ind as usize * (depth + 2));
        let mut delivered = 0u64;
        let mut blocked = 0u64;
        let max_events = events
            .saturating_mul(ind as u64)
            .saturating_mul(2 * (depth as u64 + 2))
            + 64;
        sim.run(max_events, |sim, d| {
            let Hop { event, path, pos } = d.msg;
            if d.dst == subscriber {
                if dedup.first_seen(PUBLISHER, event) {
                    delivered += 1;
                }
                return;
            }
            if !plan.is_up(d.dst, d.at) {
                blocked += 1;
                return;
            }
            let next = pos + 1;
            let dst = if pos == depth {
                subscriber
            } else {
                NodeId(paths[path as usize][next] as u32)
            };
            sim.send_faulty(
                plan,
                d.dst,
                dst,
                self.hop_latency_us,
                Hop {
                    event,
                    path,
                    pos: next,
                },
            );
        });

        Ok(OverlayReport {
            sent: events,
            delivered,
            duplicates_suppressed: dedup.duplicates(),
            blocked_at_crashed: blocked,
            path_transmissions,
            completed_at_us: sim.now(),
            fault_stats: plan.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multipath::MultipathTree;
    use psguard_net::LinkFaults;

    fn overlay(arity: u8, depth: usize, ind: u8, replicas: u8) -> MultipathOverlay {
        let tree = MultipathTree::new(arity, depth).unwrap();
        MultipathOverlay::new(RedundantRouter::new(tree, ind, replicas).unwrap())
    }

    #[test]
    fn zero_drops_deliver_every_event_exactly_once() {
        let ov = overlay(3, 2, 3, 3);
        let tree = MultipathTree::new(3, 2).unwrap();
        let leaf = tree.leaf_digits(5);
        let r = ov.run_drops(&leaf, 0.0, 100, 42).unwrap();
        assert_eq!(r.delivered, 100);
        assert_eq!(r.duplicates_suppressed, 200, "two redundant copies each");
        assert_eq!(r.blocked_at_crashed, 0);
        assert_eq!(r.path_transmissions, 300);
        assert!((r.delivery_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn full_drops_deliver_nothing() {
        let ov = overlay(2, 3, 2, 2);
        let tree = MultipathTree::new(2, 3).unwrap();
        let leaf = tree.leaf_digits(0);
        let r = ov.run_drops(&leaf, 1.0, 50, 7).unwrap();
        assert_eq!(r.delivered, 0);
        assert!(
            r.blocked_at_crashed > 0,
            "copies must die at crashed routers"
        );
    }

    #[test]
    fn matches_analytic_model_per_seed() {
        let tree = MultipathTree::new(3, 3).unwrap();
        let leaf = tree.leaf_digits(13);
        for seed in [1u64, 2, 3] {
            let router = RedundantRouter::new(tree.clone(), 3, 2).unwrap();
            let analytic = router.simulate_drops(&leaf, 0.2, 150, seed).unwrap();
            let run = MultipathOverlay::new(router)
                .run_drops(&leaf, 0.2, 150, seed)
                .unwrap();
            assert_eq!(run.delivered, analytic.delivered, "seed {seed}");
            assert_eq!(run.path_transmissions, analytic.transmissions);
        }
    }

    #[test]
    fn run_under_timed_crash_window_recovers() {
        // Crash every level-1 router for the first half of the run: early
        // events are lost on all variants, later ones get through.
        let ov = overlay(3, 2, 3, 3);
        let tree = MultipathTree::new(3, 2).unwrap();
        let leaf = tree.leaf_digits(2);
        let mut plan = FaultPlan::new(11);
        for idx in 1..=3u32 {
            plan.add_crash(NodeId(idx), Window::new(0, 52_000));
        }
        let r = ov.run_under(&mut plan, &leaf, 100, 11).unwrap();
        assert!(r.delivered > 0, "post-restart events must arrive");
        assert!(r.delivered < 100, "pre-restart events must be lost");
        assert!(r.blocked_at_crashed > 0);
    }

    #[test]
    fn run_under_link_drops_degrades_but_delivers() {
        let ov = overlay(3, 2, 3, 3);
        let tree = MultipathTree::new(3, 2).unwrap();
        let leaf = tree.leaf_digits(7);
        let mut plan = FaultPlan::new(5).with_default_link_faults(LinkFaults::drops(0.3));
        let r = ov.run_under(&mut plan, &leaf, 200, 5).unwrap();
        assert!(r.fault_stats.dropped > 0);
        assert!(r.delivered > 0, "three disjoint paths should beat 30% loss");
        assert!(r.delivered < 200, "lossy links must cost something");
    }

    #[test]
    fn malformed_leaf_rejected() {
        let ov = overlay(2, 2, 2, 2);
        assert!(ov.run_drops(&[0, 5], 0.1, 10, 1).is_err());
        assert!(ov.run_drops(&[0], 0.1, 10, 1).is_err());
    }
}
