//! Entropy metrics for measuring information leakage (§4.2).
//!
//! The paper quantifies what curious routing nodes can infer by the
//! entropy of the token-frequency distribution they observe:
//! `S = −Σ_t λ_t·log₂(λ_t)`. The lower the observed entropy, the sharper
//! the attacker's inference. `S_max = log₂|Γ|` is the ideal (uniform)
//! case; `S_act` is the entropy of the true frequencies.

/// Shannon entropy (bits) of a (possibly unnormalized) non-negative count
/// or frequency vector. Zero entries are skipped; an all-zero input has
/// entropy 0.
///
/// # Example
///
/// ```
/// use psguard_routing::entropy_bits;
/// assert_eq!(entropy_bits(&[1.0, 1.0, 1.0, 1.0]), 2.0);
/// assert_eq!(entropy_bits(&[5.0, 0.0]), 0.0);
/// ```
pub fn entropy_bits(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|&&w| w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    -weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| {
            let p = w / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// The maximum entropy for `n` tokens: `log₂ n` bits.
pub fn max_entropy_bits(n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        (n as f64).log2()
    }
}

/// Zipf-like frequencies over `n` tokens with exponent `s`, normalized to
/// sum to 1 — the popularity model of the paper's workload (§5.2).
pub fn zipf_frequencies(n: usize, s: f64) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-s)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|v| v / total).collect()
}

/// Entropy report for one observer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyReport {
    /// `S_max = log₂|Γ|`.
    pub s_max: f64,
    /// Entropy of the true token frequencies.
    pub s_act: f64,
    /// Entropy as observed by the (coalition of) routing nodes.
    pub s_app: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_max() {
        let u = vec![0.25; 4];
        assert!((entropy_bits(&u) - 2.0).abs() < 1e-12);
        assert_eq!(max_entropy_bits(4), 2.0);
    }

    #[test]
    fn skew_lowers_entropy() {
        let skewed = [0.9, 0.05, 0.03, 0.02];
        assert!(entropy_bits(&skewed) < 2.0);
        assert!(entropy_bits(&skewed) > 0.0);
    }

    #[test]
    fn scale_invariant() {
        let a = entropy_bits(&[1.0, 2.0, 3.0]);
        let b = entropy_bits(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[0.0, 0.0]), 0.0);
        assert_eq!(entropy_bits(&[7.0]), 0.0);
        assert_eq!(max_entropy_bits(0), 0.0);
    }

    #[test]
    fn zipf_is_normalized_and_decreasing() {
        let f = zipf_frequencies(128, 0.9);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for w in f.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Zipf entropy sits strictly between 0 and S_max.
        let h = entropy_bits(&f);
        assert!(h > 0.0 && h < max_entropy_bits(128));
    }

    #[test]
    fn zipf_s0_is_uniform() {
        let f = zipf_frequencies(16, 0.0);
        assert!((entropy_bits(&f) - 4.0).abs() < 1e-9);
    }
}
