//! The frequency-inference attack simulator behind Figures 6 and 7.
//!
//! Curious routing nodes know the a-priori frequency distribution of
//! tokens and watch the tokens of events routed through them. Under
//! probabilistic multi-path routing, an event with token `t` takes one of
//! `ind_t ∝ λ_t` vertex-disjoint paths chosen uniformly at random, so any
//! single node — necessarily sitting on exactly one of those paths — sees
//! token `t` at the *apparent* rate `λ_t / ind_t` (§4.2).
//!
//! ## Estimators
//!
//! * **Non-collusive** ([`Observations::non_collusive_s_app`]): no node
//!   shares information. The apparent frequency of token `t` is the
//!   largest event rate for `t` observed at any single routing node —
//!   exactly the paper's `λ'_t = λ_t / ind_t`. `S_app` is the entropy of
//!   that apparent distribution.
//! * **Collusive** ([`Observations::collusive_s_app`]): a random coalition
//!   holding a fraction of the routing nodes pools its views. Because the
//!   path systems are vertex-disjoint, the coalition reconstructs
//!   `λ̂_t = λ_t · c_t / ind_t` where `c_t` is the number of `t`'s path
//!   systems on which it has at least one member. With full collusion
//!   `c_t = ind_t` and the true distribution (entropy `S_act`) reappears.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::entropy::{entropy_bits, max_entropy_bits, EntropyReport};
use crate::multipath::{MultipathError, MultipathTree, TreeNode};

/// Configuration of one attack simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSimConfig {
    /// Tree arity (must be ≥ the largest `ind` simulated).
    pub arity: u8,
    /// Routing depth.
    pub depth: usize,
    /// True token frequencies `λ_t` (need not be normalized).
    pub token_freqs: Vec<f64>,
    /// Maximum independent paths `ind_max` the overlay provides.
    pub ind_max: u8,
    /// Number of events to publish.
    pub events: u64,
    /// RNG seed (subscriber placement, token draws, path choices).
    pub seed: u64,
}

/// The observations produced by one simulation run.
#[derive(Debug, Clone)]
pub struct Observations {
    node_count: u64,
    total_events: u64,
    /// `events[t][k]`: events of token `t` routed on path system `k`.
    events_per_path: Vec<Vec<u64>>,
    /// `path_nodes[t][k]`: routing-node indices of that path system.
    path_nodes: Vec<Vec<Vec<u64>>>,
    /// Entropy of the true frequencies.
    s_act: f64,
    /// `log₂ |Γ|`.
    s_max: f64,
}

impl Observations {
    /// `S_act`: entropy of the true token frequencies.
    pub fn s_act(&self) -> f64 {
        self.s_act
    }

    /// `S_max = log₂|Γ|`.
    pub fn s_max(&self) -> f64 {
        self.s_max
    }

    /// Number of events simulated.
    pub fn event_count(&self) -> u64 {
        self.total_events
    }

    /// Number of independent path systems provisioned for each token.
    pub fn paths_of(&self, token: usize) -> usize {
        self.events_per_path[token].len()
    }

    /// Non-collusive apparent entropy (see module docs).
    pub fn non_collusive_s_app(&self) -> f64 {
        let apparent: Vec<f64> = self
            .events_per_path
            .iter()
            .map(|per_k| per_k.iter().copied().max().unwrap_or(0) as f64)
            .collect();
        entropy_bits(&apparent)
    }

    /// Collusive apparent entropy for a coalition holding `fraction` of
    /// the routing nodes (see module docs). The coalition always contains
    /// at least one node.
    pub fn collusive_s_app(&self, fraction: f64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes: Vec<u64> = (0..self.node_count).collect();
        nodes.shuffle(&mut rng);
        let k = ((fraction.clamp(0.0, 1.0) * nodes.len() as f64).round() as usize)
            .clamp(1, nodes.len());
        let coalition: std::collections::HashSet<u64> = nodes.into_iter().take(k).collect();

        let apparent: Vec<f64> = self
            .events_per_path
            .iter()
            .zip(&self.path_nodes)
            .map(|(per_k, paths)| {
                // What the coalition reconstructs by pooling the disjoint
                // path systems it covers…
                let pooled: u64 = per_k
                    .iter()
                    .zip(paths)
                    .filter(|(_, path)| path.iter().any(|n| coalition.contains(n)))
                    .map(|(count, _)| *count)
                    .sum();
                // …but never less than what any single curious node
                // already sees (λ_t / ind_t): tokens outside the
                // coalition's coverage still leak their apparent rate to
                // their on-path routers.
                let single = per_k.iter().copied().max().unwrap_or(0);
                pooled.max(single) as f64
            })
            .collect();
        entropy_bits(&apparent)
    }

    /// Full report at the given collusion fraction (0 = non-collusive).
    pub fn report(&self, collusion_fraction: f64, seed: u64) -> EntropyReport {
        let s_app = if collusion_fraction <= 0.0 {
            self.non_collusive_s_app()
        } else {
            self.collusive_s_app(collusion_fraction, seed)
        };
        EntropyReport {
            s_max: self.s_max,
            s_act: self.s_act,
            s_app,
        }
    }
}

/// Runs the simulation: each token is subscribed at one leaf; events are
/// drawn by true frequency; each event takes a uniformly chosen variant
/// path among its token's `ind_t` vertex-disjoint paths.
///
/// # Errors
///
/// Propagates [`MultipathError`] for inconsistent parameters.
pub fn simulate(config: &AttackSimConfig) -> Result<Observations, MultipathError> {
    let tree = MultipathTree::new(config.arity, config.depth)?;
    if config.ind_max == 0 || config.ind_max > config.arity {
        return Err(MultipathError::TooManyPaths {
            requested: config.ind_max,
            arity: config.arity,
        });
    }
    let n_tokens = config.token_freqs.len();
    assert!(n_tokens > 0, "need at least one token");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Subscriber placement: one leaf per token, spread over the leaves.
    let leaf_count = tree.leaf_count();
    let mut leaf_order: Vec<u64> = (0..leaf_count).collect();
    leaf_order.shuffle(&mut rng);
    let token_leaf: Vec<Vec<u8>> = (0..n_tokens)
        .map(|t| tree.leaf_digits(leaf_order[t % leaf_count as usize]))
        .collect();

    let ind = MultipathTree::paths_per_token(&config.token_freqs, config.ind_max);

    // Precompute variant paths (routing-node indices) per token.
    let arity = config.arity;
    let path_nodes: Vec<Vec<Vec<u64>>> = (0..n_tokens)
        .map(|t| {
            // `paths_per_token` caps ind[t] at the arity, so every variant
            // index is valid; a hypothetical out-of-range k is skipped
            // rather than aborting the whole experiment.
            (0..ind[t])
                .filter_map(|k| tree.variant_path(&token_leaf[t], k).ok())
                .map(|path| {
                    path.into_iter()
                        .skip(1) // the root is the publisher, not curious
                        .map(|n: TreeNode| n.index(arity))
                        .collect()
                })
                .collect()
        })
        .collect();

    // Cumulative distribution for token draws.
    let total: f64 = config.token_freqs.iter().sum();
    let mut cdf = Vec::with_capacity(n_tokens);
    let mut acc = 0.0;
    for &f in &config.token_freqs {
        acc += f / total;
        cdf.push(acc);
    }

    let mut events_per_path: Vec<Vec<u64>> =
        (0..n_tokens).map(|t| vec![0u64; ind[t] as usize]).collect();
    for _ in 0..config.events {
        let u: f64 = rng.gen();
        let token = cdf.partition_point(|&c| c < u).min(n_tokens - 1);
        let k = rng.gen_range(0..ind[token] as usize);
        events_per_path[token][k] += 1;
    }

    Ok(Observations {
        node_count: tree.routing_node_count(),
        total_events: config.events,
        events_per_path,
        path_nodes,
        s_act: entropy_bits(&config.token_freqs),
        s_max: max_entropy_bits(n_tokens),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::zipf_frequencies;

    fn base_config(ind_max: u8) -> AttackSimConfig {
        AttackSimConfig {
            arity: 8,
            depth: 3,
            token_freqs: zipf_frequencies(128, 0.9),
            ind_max,
            events: 40_000,
            seed: 7,
        }
    }

    #[test]
    fn more_paths_raise_apparent_entropy() {
        let mut last = 0.0;
        for ind in [1u8, 2, 3, 5] {
            let obs = simulate(&base_config(ind)).unwrap();
            let s_app = obs.non_collusive_s_app();
            assert!(
                s_app >= last - 0.05,
                "ind={ind}: s_app={s_app} dropped below {last}"
            );
            assert!(s_app <= obs.s_max() + 1e-9);
            last = s_app;
        }
    }

    #[test]
    fn ind5_is_near_max_entropy() {
        // Paper: with ind_max = 5 the apparent entropy is within ~10% of
        // S_max.
        let obs = simulate(&base_config(5)).unwrap();
        let s_app = obs.non_collusive_s_app();
        assert!(
            s_app >= 0.85 * obs.s_max(),
            "s_app={s_app} s_max={}",
            obs.s_max()
        );
    }

    #[test]
    fn ind1_matches_actual_entropy() {
        // With a single path the apparent distribution is the true one.
        let obs = simulate(&base_config(1)).unwrap();
        let s_app = obs.non_collusive_s_app();
        assert!(
            (s_app - obs.s_act()).abs() < 0.1,
            "s_app={s_app} s_act={}",
            obs.s_act()
        );
    }

    #[test]
    fn full_collusion_recovers_actual_entropy() {
        let obs = simulate(&base_config(5)).unwrap();
        let s_full = obs.collusive_s_app(1.0, 1);
        assert!(
            (s_full - obs.s_act()).abs() < 0.1,
            "s_full={s_full} s_act={}",
            obs.s_act()
        );
    }

    #[test]
    fn collusion_monotonically_erodes_entropy() {
        let obs = simulate(&base_config(5)).unwrap();
        let fractions = [0.05, 0.2, 0.5, 1.0];
        let entropies: Vec<f64> = fractions
            .iter()
            .map(|&f| {
                // Average a few coalition draws for stability.
                (0..8).map(|s| obs.collusive_s_app(f, s)).sum::<f64>() / 8.0
            })
            .collect();
        for w in entropies.windows(2) {
            assert!(
                w[1] <= w[0] + 0.05,
                "entropy should fall with collusion: {entropies:?}"
            );
        }
        // Small coalitions stay well above S_act…
        assert!(
            entropies[0] > obs.s_act() + 0.2,
            "{entropies:?} vs s_act={}",
            obs.s_act()
        );
        // …and full collusion lands on it.
        assert!((entropies[3] - obs.s_act()).abs() < 0.1);
    }

    #[test]
    fn paths_per_token_reflect_popularity() {
        let obs = simulate(&base_config(5)).unwrap();
        assert_eq!(obs.paths_of(0), 5); // the most popular token
        assert_eq!(obs.paths_of(127), 1); // the least popular token
    }

    #[test]
    fn report_selects_estimator() {
        let obs = simulate(&base_config(3)).unwrap();
        let non = obs.report(0.0, 1);
        assert_eq!(non.s_app, obs.non_collusive_s_app());
        let coll = obs.report(0.5, 1);
        assert_eq!(coll.s_app, obs.collusive_s_app(0.5, 1));
        assert_eq!(non.s_max, obs.s_max());
    }

    #[test]
    fn invalid_ind_rejected() {
        let mut cfg = base_config(9);
        cfg.arity = 4;
        assert!(matches!(
            simulate(&cfg),
            Err(MultipathError::TooManyPaths { .. })
        ));
    }

    #[test]
    fn determinism() {
        let a = simulate(&base_config(3)).unwrap();
        let b = simulate(&base_config(3)).unwrap();
        assert_eq!(a.non_collusive_s_app(), b.non_collusive_s_app());
        assert_eq!(a.collusive_s_app(0.4, 9), b.collusive_s_app(0.4, 9));
        assert_eq!(a.event_count(), 40_000);
    }
}
