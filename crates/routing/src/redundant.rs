//! Extensions of §4.2: path-assignment ablation and redundant
//! (parallel) multi-path dissemination.
//!
//! * **Assignment ablation** — the paper sets `ind_t ∝ λ_t`. The obvious
//!   alternative, giving *every* token `ind_max` paths, costs the same
//!   overlay but flattens nothing: each router then sees `λ_t/ind_max`,
//!   which is just the true distribution rescaled. [`flattening_gain`]
//!   quantifies the difference.
//! * **Redundant routing** — the paper notes the scheme "could easily be
//!   extended to route an event on two or more independent paths (in
//!   parallel)", trading bandwidth for resilience against
//!   message-dropping routers. [`RedundantRouter`] implements that
//!   extension and computes delivery probability under adversarial
//!   dropping.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::entropy::entropy_bits;
use crate::multipath::{MultipathError, MultipathTree};

/// How per-token path counts are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathAssignment {
    /// The paper's rule: `ind_t = clamp(λ_t/λ_min, 1, ind_max)`.
    Proportional,
    /// Ablation: every token gets `ind_max` paths.
    Uniform,
}

impl PathAssignment {
    /// Paths per token under this policy.
    pub fn paths(&self, frequencies: &[f64], ind_max: u8) -> Vec<u8> {
        match self {
            PathAssignment::Proportional => MultipathTree::paths_per_token(frequencies, ind_max),
            PathAssignment::Uniform => vec![ind_max; frequencies.len()],
        }
    }
}

/// The apparent (single-router) entropy under an assignment policy:
/// `H(λ_t / ind_t)`. For [`PathAssignment::Uniform`] this equals the true
/// entropy — uniform replication hides nothing.
pub fn apparent_entropy(frequencies: &[f64], ind_max: u8, policy: PathAssignment) -> f64 {
    let ind = policy.paths(frequencies, ind_max);
    let apparent: Vec<f64> = frequencies
        .iter()
        .zip(&ind)
        .map(|(&f, &i)| f / i as f64)
        .collect();
    entropy_bits(&apparent)
}

/// How many bits of apparent entropy proportional assignment gains over
/// uniform assignment at equal `ind_max` — the ablation headline.
pub fn flattening_gain(frequencies: &[f64], ind_max: u8) -> f64 {
    apparent_entropy(frequencies, ind_max, PathAssignment::Proportional)
        - apparent_entropy(frequencies, ind_max, PathAssignment::Uniform)
}

/// Redundant dissemination: each event is sent on `replicas` of the
/// `ind` vertex-disjoint paths in parallel.
#[derive(Debug, Clone)]
pub struct RedundantRouter {
    tree: MultipathTree,
    ind: u8,
    replicas: u8,
}

/// Outcome of a redundant-delivery simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryReport {
    /// Events sent.
    pub sent: u64,
    /// Events with at least one surviving copy.
    pub delivered: u64,
    /// Total path transmissions (bandwidth cost).
    pub transmissions: u64,
}

impl DeliveryReport {
    /// Fraction of events delivered.
    pub fn delivery_rate(&self) -> f64 {
        if self.sent == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.sent as f64
    }
}

impl RedundantRouter {
    /// Creates a router sending `replicas` parallel copies over an
    /// overlay with `ind` vertex-disjoint paths per subscriber.
    ///
    /// # Errors
    ///
    /// Returns [`MultipathError::TooManyPaths`] when
    /// `replicas > ind` or `ind` exceeds the tree arity.
    pub fn new(tree: MultipathTree, ind: u8, replicas: u8) -> Result<Self, MultipathError> {
        if ind == 0 || ind > tree.arity() || replicas == 0 || replicas > ind {
            return Err(MultipathError::TooManyPaths {
                requested: replicas.max(ind),
                arity: tree.arity(),
            });
        }
        Ok(RedundantRouter {
            tree,
            ind,
            replicas,
        })
    }

    /// Number of parallel copies per event.
    pub fn replicas(&self) -> u8 {
        self.replicas
    }

    /// Number of vertex-disjoint path systems provisioned per subscriber.
    pub fn ind(&self) -> u8 {
        self.ind
    }

    /// The underlying multipath tree.
    pub fn tree(&self) -> &MultipathTree {
        &self.tree
    }

    /// The distinct path variants chosen for one event (uniformly random
    /// without replacement among the `ind` systems).
    pub fn choose_paths(&self, rng: &mut StdRng) -> Vec<u8> {
        let mut candidates: Vec<u8> = (0..self.ind).collect();
        for i in (1..candidates.len()).rev() {
            let j = rng.gen_range(0..=i);
            candidates.swap(i, j);
        }
        candidates.truncate(self.replicas as usize);
        candidates
    }

    /// Simulates `events` deliveries to the subscriber at `leaf` while a
    /// random fraction `drop_fraction` of routing nodes silently drops
    /// everything (the malicious-router model the extension defends
    /// against). An event survives if at least one replica's path avoids
    /// all dropping nodes.
    ///
    /// # Errors
    ///
    /// Propagates path-construction errors for malformed leaves.
    pub fn simulate_drops(
        &self,
        leaf: &[u8],
        drop_fraction: f64,
        events: u64,
        seed: u64,
    ) -> Result<DeliveryReport, MultipathError> {
        let mut rng = StdRng::seed_from_u64(seed);
        // Mark dropping nodes once (persistent adversaries).
        let node_count = self.tree.routing_node_count();
        let dropping: std::collections::HashSet<u64> = (0..node_count)
            .filter(|_| rng.gen_bool(drop_fraction.clamp(0.0, 1.0)))
            .collect();

        // Precompute which variants survive.
        let arity = self.tree.arity();
        let surviving: Vec<bool> = (0..self.ind)
            .map(|k| {
                self.tree
                    .variant_path(leaf, k)
                    .map(|path| {
                        path.into_iter()
                            .skip(1)
                            .all(|n| !dropping.contains(&n.index(arity)))
                    })
                    .unwrap_or(false)
            })
            .collect::<Vec<bool>>();

        let mut delivered = 0u64;
        for _ in 0..events {
            let chosen = self.choose_paths(&mut rng);
            if chosen.iter().any(|&k| surviving[k as usize]) {
                delivered += 1;
            }
        }
        Ok(DeliveryReport {
            sent: events,
            delivered,
            transmissions: events * self.replicas as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::zipf_frequencies;

    #[test]
    fn uniform_assignment_hides_nothing() {
        let freqs = zipf_frequencies(64, 1.0);
        let uniform = apparent_entropy(&freqs, 5, PathAssignment::Uniform);
        let true_h = entropy_bits(&freqs);
        assert!((uniform - true_h).abs() < 1e-9, "uniform = rescaled truth");
    }

    #[test]
    fn proportional_assignment_flattens() {
        let freqs = zipf_frequencies(64, 1.0);
        let gain = flattening_gain(&freqs, 5);
        assert!(gain > 0.3, "proportional must beat uniform: gain={gain}");
        // And the gain grows with ind_max (until saturation).
        assert!(flattening_gain(&freqs, 8) >= gain);
    }

    #[test]
    fn uniform_frequencies_nothing_to_gain() {
        let freqs = vec![1.0 / 32.0; 32];
        assert!(flattening_gain(&freqs, 5).abs() < 1e-9);
    }

    #[test]
    fn replicas_improve_delivery_under_drops() {
        let tree = MultipathTree::new(5, 3).unwrap();
        let leaf = tree.leaf_digits(7);
        let one = RedundantRouter::new(tree.clone(), 5, 1).unwrap();
        let three = RedundantRouter::new(tree, 5, 3).unwrap();
        let r1 = one.simulate_drops(&leaf, 0.15, 4000, 9).unwrap();
        let r3 = three.simulate_drops(&leaf, 0.15, 4000, 9).unwrap();
        assert!(
            r3.delivery_rate() > r1.delivery_rate(),
            "3 replicas {:.3} must beat 1 replica {:.3}",
            r3.delivery_rate(),
            r1.delivery_rate()
        );
        assert_eq!(r3.transmissions, 3 * r1.transmissions);
    }

    #[test]
    fn no_drops_full_delivery() {
        let tree = MultipathTree::new(4, 2).unwrap();
        let leaf = tree.leaf_digits(3);
        let r = RedundantRouter::new(tree, 4, 2)
            .unwrap()
            .simulate_drops(&leaf, 0.0, 500, 1)
            .unwrap();
        assert_eq!(r.delivery_rate(), 1.0);
    }

    #[test]
    fn full_drops_no_delivery() {
        let tree = MultipathTree::new(4, 2).unwrap();
        let leaf = tree.leaf_digits(3);
        let r = RedundantRouter::new(tree, 4, 4)
            .unwrap()
            .simulate_drops(&leaf, 1.0, 100, 1)
            .unwrap();
        assert_eq!(r.delivered, 0);
    }

    #[test]
    fn invalid_configurations_rejected() {
        let tree = MultipathTree::new(3, 2).unwrap();
        assert!(RedundantRouter::new(tree.clone(), 4, 1).is_err()); // ind > arity
        assert!(RedundantRouter::new(tree.clone(), 3, 4).is_err()); // replicas > ind
        assert!(RedundantRouter::new(tree, 0, 0).is_err());
    }

    #[test]
    fn chosen_paths_are_distinct() {
        let tree = MultipathTree::new(8, 2).unwrap();
        let router = RedundantRouter::new(tree, 8, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let paths = router.choose_paths(&mut rng);
            let set: std::collections::HashSet<_> = paths.iter().collect();
            assert_eq!(set.len(), 4);
            assert!(paths.iter().all(|&k| k < 8));
        }
    }
}
