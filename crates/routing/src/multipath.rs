//! The multi-path event-dissemination network `G_ind` (§4.2.1).
//!
//! Starting from an a-ary dissemination tree (publisher at the root,
//! subscribers at the leaves), every node `n` gains edges to `ind − 1`
//! distinct siblings of `parent(n)`. Theorem 4.2 then gives `ind ≤ a`
//! vertex-disjoint publisher→subscriber paths: variant `k` of the path
//! through `(c₁, …, c_d)` replaces each level-`i` node with its sibling
//! `(c₁, …, c_{i−1}, (c_i + k) mod a)`.

/// A node in the dissemination tree, identified by its level and its digit
/// path from the root. The root (publisher) is `(0, [])`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeNode {
    digits: Vec<u8>,
}

impl TreeNode {
    /// The root (publisher).
    pub fn root() -> Self {
        TreeNode { digits: Vec::new() }
    }

    /// Builds a node from its digit path.
    pub fn from_digits(digits: impl IntoIterator<Item = u8>) -> Self {
        TreeNode {
            digits: digits.into_iter().collect(),
        }
    }

    /// Level below the root.
    pub fn level(&self) -> usize {
        self.digits.len()
    }

    /// Digit path.
    pub fn digits(&self) -> &[u8] {
        &self.digits
    }

    /// A compact index unique within a tree of the given arity: level-order
    /// position.
    pub fn index(&self, arity: u8) -> u64 {
        // Offset of this level plus position within the level.
        let a = arity as u64;
        let level_offset: u64 = (0..self.level() as u32).map(|l| a.pow(l)).sum();
        let within = self.digits.iter().fold(0u64, |acc, &d| acc * a + d as u64);
        level_offset + within
    }
}

/// The multi-path dissemination network over a complete a-ary tree of the
/// given routing depth.
///
/// # Example
///
/// ```
/// use psguard_routing::MultipathTree;
///
/// // Figure 2: a binary tree with ind = 2.
/// let tree = MultipathTree::new(2, 3).unwrap();
/// let leaf = [1u8, 0, 1];
/// let q1 = tree.variant_path(&leaf, 0).unwrap();
/// let q2 = tree.variant_path(&leaf, 1).unwrap();
/// // Theorem 4.2: the interior nodes are disjoint.
/// assert!(q1.iter().skip(1).all(|n| !q2.contains(n)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipathTree {
    arity: u8,
    depth: usize,
}

/// Errors from multipath construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultipathError {
    /// Arity must be ≥ 2.
    BadArity(u8),
    /// Depth must be ≥ 1.
    BadDepth(usize),
    /// Requested more independent paths than the arity supports
    /// (Claim 4.3 requires `ind ≤ a`).
    TooManyPaths {
        /// Requested path count.
        requested: u8,
        /// Tree arity.
        arity: u8,
    },
    /// A leaf digit exceeded the arity or had the wrong length.
    BadLeaf,
}

impl std::fmt::Display for MultipathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultipathError::BadArity(a) => write!(f, "arity must be ≥ 2, got {a}"),
            MultipathError::BadDepth(d) => write!(f, "depth must be ≥ 1, got {d}"),
            MultipathError::TooManyPaths { requested, arity } => write!(
                f,
                "{requested} independent paths requested but arity {arity} supports at most {arity}"
            ),
            MultipathError::BadLeaf => write!(f, "invalid leaf digit path"),
        }
    }
}

impl std::error::Error for MultipathError {}

impl MultipathTree {
    /// Creates a tree with `arity ≥ 2` and routing `depth ≥ 1` (levels of
    /// routing nodes between publisher and subscribers).
    ///
    /// # Errors
    ///
    /// Returns [`MultipathError::BadArity`] / [`MultipathError::BadDepth`].
    pub fn new(arity: u8, depth: usize) -> Result<Self, MultipathError> {
        if arity < 2 {
            return Err(MultipathError::BadArity(arity));
        }
        if depth == 0 {
            return Err(MultipathError::BadDepth(depth));
        }
        Ok(MultipathTree { arity, depth })
    }

    /// Tree arity `a` (also the maximum supported `ind`).
    pub fn arity(&self) -> u8 {
        self.arity
    }

    /// Routing depth `d`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of routing nodes (levels 1..=d).
    pub fn routing_node_count(&self) -> u64 {
        let a = self.arity as u64;
        (1..=self.depth as u32).map(|l| a.pow(l)).sum()
    }

    /// Number of leaf positions (subscriber slots) = `a^d`.
    pub fn leaf_count(&self) -> u64 {
        (self.arity as u64).pow(self.depth as u32)
    }

    /// The digit path of leaf number `i` (0-based, left to right).
    ///
    /// # Panics
    ///
    /// Panics when `i ≥ leaf_count()`.
    pub fn leaf_digits(&self, i: u64) -> Vec<u8> {
        assert!(i < self.leaf_count(), "leaf {i} out of range");
        let a = self.arity as u64;
        let mut digits = vec![0u8; self.depth];
        let mut rem = i;
        for d in digits.iter_mut().rev() {
            *d = (rem % a) as u8;
            rem /= a;
        }
        digits
    }

    /// Variant `k` of the path to the subscriber at `leaf` (Theorem 4.2):
    /// `⟨P, σ_k(n₁), …, σ_k(n_d)⟩` where `σ_k` replaces the node's last
    /// digit `c` with `(c + k) mod a`. Returns the node list including the
    /// root; the subscriber hangs off the final node.
    ///
    /// # Errors
    ///
    /// Returns [`MultipathError::TooManyPaths`] when `k ≥ arity` and
    /// [`MultipathError::BadLeaf`] for malformed digit paths.
    pub fn variant_path(&self, leaf: &[u8], k: u8) -> Result<Vec<TreeNode>, MultipathError> {
        if k >= self.arity {
            return Err(MultipathError::TooManyPaths {
                requested: k + 1,
                arity: self.arity,
            });
        }
        if leaf.len() != self.depth || leaf.iter().any(|&d| d >= self.arity) {
            return Err(MultipathError::BadLeaf);
        }
        let mut path = Vec::with_capacity(self.depth + 1);
        path.push(TreeNode::root());
        for i in 0..self.depth {
            let mut digits = leaf[..=i].to_vec();
            let c = digits[i];
            digits[i] = (c + k) % self.arity;
            path.push(TreeNode::from_digits(digits));
        }
        Ok(path)
    }

    /// Verifies that variants `0..ind` of the path to `leaf` are pairwise
    /// vertex-disjoint apart from the shared root — the property proved in
    /// Theorem 4.2.
    ///
    /// # Errors
    ///
    /// Propagates path-construction errors.
    pub fn verify_disjoint(&self, leaf: &[u8], ind: u8) -> Result<bool, MultipathError> {
        let mut seen = std::collections::HashSet::new();
        for k in 0..ind {
            for node in self.variant_path(leaf, k)?.into_iter().skip(1) {
                if !seen.insert(node) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Number of overlay edges needed to support `ind` independent paths:
    /// every routing node and subscriber keeps its parent edge plus
    /// `ind − 1` edges to distinct siblings of its parent. This is the
    /// construction cost sweep of Figure 8.
    ///
    /// # Errors
    ///
    /// Returns [`MultipathError::TooManyPaths`] when `ind > arity`.
    pub fn edge_count(&self, ind: u8) -> Result<u64, MultipathError> {
        if ind == 0 || ind > self.arity {
            return Err(MultipathError::TooManyPaths {
                requested: ind,
                arity: self.arity,
            });
        }
        // Level-1 nodes have no distinct "sibling of parent" other than the
        // root itself; their extra edges are not needed (all level-1 nodes
        // connect to the publisher directly).
        let a = self.arity as u64;
        let level1 = a;
        let deeper = self.routing_node_count() - level1 + self.leaf_count();
        Ok(level1 + deeper * ind as u64)
    }

    /// The per-token number of independent paths: `ind_t = τ·λ_t`, capped
    /// at `ind_max` and floored at 1, with `τ = 1/λ_min` so that the most
    /// constrained token still gets one path and apparent frequencies
    /// approach `λ_min` (§4.2).
    pub fn paths_per_token(frequencies: &[f64], ind_max: u8) -> Vec<u8> {
        let min = frequencies
            .iter()
            .copied()
            .filter(|&f| f > 0.0)
            .fold(f64::INFINITY, f64::min);
        frequencies
            .iter()
            .map(|&f| {
                if f <= 0.0 {
                    1
                } else {
                    ((f / min).round() as u64).clamp(1, ind_max as u64) as u8
                }
            })
            .collect()
    }

    /// Total path-provisioning cost for a token population: each token `t`
    /// needs `ind_t` path systems wired through the overlay; the cost of a
    /// token is the number of edges its paths use. Figure 8 plots this
    /// normalized to `ind_max = 1`.
    pub fn construction_cost(&self, frequencies: &[f64], ind_max: u8) -> f64 {
        let ind = Self::paths_per_token(frequencies, ind_max.min(self.arity));
        ind.iter()
            .map(|&i| (self.depth as f64 + 1.0) * i as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_binary_two_paths() {
        let tree = MultipathTree::new(2, 3).unwrap();
        for leaf_idx in 0..tree.leaf_count() {
            let leaf = tree.leaf_digits(leaf_idx);
            assert!(tree.verify_disjoint(&leaf, 2).unwrap(), "leaf {leaf:?}");
        }
    }

    #[test]
    fn theorem_holds_up_to_arity() {
        for arity in [2u8, 3, 5, 10] {
            let tree = MultipathTree::new(arity, 3).unwrap();
            let leaf = tree.leaf_digits(tree.leaf_count() - 1);
            assert!(tree.verify_disjoint(&leaf, arity).unwrap(), "arity {arity}");
        }
    }

    #[test]
    fn too_many_paths_rejected() {
        let tree = MultipathTree::new(2, 2).unwrap();
        assert!(matches!(
            tree.variant_path(&[0, 0], 2),
            Err(MultipathError::TooManyPaths { .. })
        ));
        assert!(tree.edge_count(3).is_err());
        assert!(tree.edge_count(0).is_err());
    }

    #[test]
    fn variant_path_structure() {
        let tree = MultipathTree::new(2, 3).unwrap();
        let q1 = tree.variant_path(&[1, 0, 1], 0).unwrap();
        assert_eq!(q1.len(), 4);
        assert_eq!(q1[0], TreeNode::root());
        assert_eq!(q1[3], TreeNode::from_digits([1, 0, 1]));
        let q2 = tree.variant_path(&[1, 0, 1], 1).unwrap();
        // σ₁ flips the last digit at each level, keeping the original prefix.
        assert_eq!(q2[1], TreeNode::from_digits([0]));
        assert_eq!(q2[2], TreeNode::from_digits([1, 1]));
        assert_eq!(q2[3], TreeNode::from_digits([1, 0, 0]));
    }

    #[test]
    fn counts() {
        let tree = MultipathTree::new(2, 3).unwrap();
        assert_eq!(tree.routing_node_count(), 2 + 4 + 8);
        assert_eq!(tree.leaf_count(), 8);
        let t10 = MultipathTree::new(10, 2).unwrap();
        assert_eq!(t10.routing_node_count(), 110);
    }

    #[test]
    fn leaf_digits_roundtrip() {
        let tree = MultipathTree::new(3, 4).unwrap();
        for i in 0..tree.leaf_count() {
            let d = tree.leaf_digits(i);
            let back = d.iter().fold(0u64, |acc, &x| acc * 3 + x as u64);
            assert_eq!(back, i);
        }
    }

    #[test]
    fn edge_count_grows_linearly_in_ind() {
        let tree = MultipathTree::new(5, 3).unwrap();
        let e1 = tree.edge_count(1).unwrap();
        let e2 = tree.edge_count(2).unwrap();
        let e5 = tree.edge_count(5).unwrap();
        assert!(e1 < e2 && e2 < e5);
    }

    #[test]
    fn paths_per_token_proportional_and_capped() {
        let freqs = [8.0, 4.0, 2.0, 1.0];
        assert_eq!(MultipathTree::paths_per_token(&freqs, 10), vec![8, 4, 2, 1]);
        assert_eq!(MultipathTree::paths_per_token(&freqs, 3), vec![3, 3, 2, 1]);
        // Zero frequencies degrade to one path.
        assert_eq!(MultipathTree::paths_per_token(&[0.0, 1.0], 5), vec![1, 1]);
    }

    #[test]
    fn construction_cost_saturates_for_skewed_tokens() {
        let tree = MultipathTree::new(10, 3).unwrap();
        // Zipf-like frequencies over 128 tokens.
        let freqs: Vec<f64> = (1..=128).map(|r| 1.0 / r as f64).collect();
        let c: Vec<f64> = (1..=10)
            .map(|ind| tree.construction_cost(&freqs, ind as u8))
            .collect();
        // Monotone nondecreasing…
        for w in c.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // …and saturating: the late increments are smaller than early ones.
        let early = c[1] - c[0];
        let late = c[9] - c[8];
        assert!(late < early, "early={early} late={late}");
    }

    #[test]
    fn node_index_is_unique() {
        let tree = MultipathTree::new(3, 3).unwrap();
        let mut seen = std::collections::HashSet::new();
        for l1 in 0..3u8 {
            assert!(seen.insert(TreeNode::from_digits([l1]).index(3)));
            for l2 in 0..3u8 {
                assert!(seen.insert(TreeNode::from_digits([l1, l2]).index(3)));
                for l3 in 0..3u8 {
                    assert!(seen.insert(TreeNode::from_digits([l1, l2, l3]).index(3)));
                }
            }
        }
        assert_eq!(seen.len() as u64, tree.routing_node_count());
    }
}
