//! Duplicate suppression for redundant multi-path delivery.
//!
//! When events ride several vertex-disjoint paths in parallel
//! ([`crate::RedundantRouter`]), subscribers receive up to `replicas`
//! copies. A bounded sliding window over `(publisher, event id)` pairs
//! suppresses the duplicates without unbounded memory.

use std::collections::{HashSet, VecDeque};

/// A bounded first-seen filter over event identities.
///
/// # Example
///
/// ```
/// use psguard_routing::DedupWindow;
///
/// let mut window = DedupWindow::new(128);
/// assert!(window.first_seen("pub-a", 1));
/// assert!(!window.first_seen("pub-a", 1)); // duplicate copy
/// assert!(window.first_seen("pub-b", 1)); // different publisher
/// ```
#[derive(Debug, Clone)]
pub struct DedupWindow {
    capacity: usize,
    seen: HashSet<(String, u64)>,
    order: VecDeque<(String, u64)>,
    duplicates: u64,
    accepted: u64,
}

impl DedupWindow {
    /// Creates a window remembering up to `capacity` identities
    /// (`capacity == 0` disables suppression: everything is "first").
    pub fn new(capacity: usize) -> Self {
        DedupWindow {
            capacity,
            seen: HashSet::new(),
            order: VecDeque::new(),
            duplicates: 0,
            accepted: 0,
        }
    }

    /// Whether this `(publisher, id)` pair is new; records it if so.
    pub fn first_seen(&mut self, publisher: &str, id: u64) -> bool {
        if self.capacity == 0 {
            self.accepted += 1;
            return true;
        }
        let key = (publisher.to_owned(), id);
        if self.seen.contains(&key) {
            self.duplicates += 1;
            return false;
        }
        if self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.seen.insert(key.clone());
        self.order.push_back(key);
        self.accepted += 1;
        true
    }

    /// Identities currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Copies suppressed so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// First copies accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppresses_replicas() {
        let mut w = DedupWindow::new(16);
        // Three parallel copies of the same event: one delivery.
        assert!(w.first_seen("P", 7));
        assert!(!w.first_seen("P", 7));
        assert!(!w.first_seen("P", 7));
        assert_eq!(w.accepted(), 1);
        assert_eq!(w.duplicates(), 2);
    }

    #[test]
    fn distinct_identities_pass() {
        let mut w = DedupWindow::new(16);
        assert!(w.first_seen("P", 1));
        assert!(w.first_seen("P", 2));
        assert!(w.first_seen("Q", 1));
        assert_eq!(w.accepted(), 3);
        assert_eq!(w.duplicates(), 0);
    }

    #[test]
    fn window_expires_oldest() {
        let mut w = DedupWindow::new(2);
        assert!(w.first_seen("P", 1));
        assert!(w.first_seen("P", 2));
        assert!(w.first_seen("P", 3)); // evicts (P,1)
        assert_eq!(w.len(), 2);
        // (P,1) fell out of the window: seen "again" as first.
        assert!(w.first_seen("P", 1));
        // (P,3) is still remembered.
        assert!(!w.first_seen("P", 3));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut w = DedupWindow::new(0);
        assert!(w.first_seen("P", 1));
        assert!(w.first_seen("P", 1));
        assert!(w.is_empty());
    }

    #[test]
    fn end_to_end_with_redundant_router() {
        use crate::multipath::MultipathTree;
        use crate::redundant::RedundantRouter;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // 3 replicas per event; the subscriber must still see each event
        // exactly once.
        let tree = MultipathTree::new(5, 2).unwrap();
        let router = RedundantRouter::new(tree, 5, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut window = DedupWindow::new(64);
        for event_id in 0..50u64 {
            let copies = router.choose_paths(&mut rng).len() as u64;
            assert_eq!(copies, 3);
            let mut delivered = 0;
            for _ in 0..copies {
                if window.first_seen("P", event_id) {
                    delivered += 1;
                }
            }
            assert_eq!(delivered, 1, "event {event_id}");
        }
        assert_eq!(window.accepted(), 50);
        assert_eq!(window.duplicates(), 100);
    }
}
