//! Tokenized events and filters for secure content-based routing (§4.1).
//!
//! The topic of an event is never routed in the clear. Instead (following
//! Song–Wagner–Perrig searchable encryption):
//!
//! * the KDC gives subscribers of topic `w` the token `T(w) = F_rk(w)`;
//! * a publisher tags each event with `⟨r, F_{T(w)}(r)⟩` for a fresh nonce
//!   `r`;
//! * a broker holding subscription token `tok` matches by testing
//!   `F_tok(r) == match`.
//!
//! The broker learns *that* the event matched one of its registered
//! subscriptions — nothing about `w` itself. Non-topic routable attributes
//! (e.g. a numeric `age`) stay visible for in-network range matching; the
//! secret payload is AES-encrypted under the hierarchy key.

use psguard_crypto::{prf, prf_verify, PrfContext, Token};
use psguard_model::{AttrName, AttrValue, Constraint, Event, Filter};
use psguard_siena::{FilterSemantics, IndexableFilter, KeyQuery};
use rand::RngCore;

/// The routable tag on a secure event: `⟨r, F_{T(w)}(r)⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RoutableTag {
    /// The fresh nonce `r`.
    pub nonce: [u8; 16],
    /// The match value `F_{T(w)}(r)`.
    pub tag: Token,
}

impl RoutableTag {
    /// Publisher-side: tags an event under topic token `T(w)`.
    pub fn new(topic_token: &Token, rng: &mut impl RngCore) -> Self {
        let mut nonce = [0u8; 16];
        rng.fill_bytes(&mut nonce);
        RoutableTag {
            nonce,
            tag: prf(topic_token.as_bytes(), &nonce),
        }
    }

    /// Deterministic construction from an explicit nonce (tests, replay).
    pub fn with_nonce(topic_token: &Token, nonce: [u8; 16]) -> Self {
        RoutableTag {
            nonce,
            tag: prf(topic_token.as_bytes(), &nonce),
        }
    }

    /// Broker-side: does this tag match a subscription token? Constant
    /// time in the comparison.
    pub fn matches(&self, subscription_token: &Token) -> bool {
        prf_verify(subscription_token, &self.nonce, &self.tag)
    }
}

/// A secure event as routed by brokers: pseudonymous topic tag, plaintext
/// routable attributes, encrypted payload.
///
/// The inner [`Event`]'s topic field is replaced by the empty string
/// before routing — brokers must not see `w`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureEvent {
    /// The topic tag `⟨r, F_{T(w)}(r)⟩`.
    pub tag: RoutableTag,
    /// Routable attributes (plaintext) and the *encrypted* payload.
    pub event: Event,
    /// CBC initialization vector for the payload.
    pub iv: [u8; 16],
    /// The epoch the payload was encrypted under.
    pub epoch: u64,
    /// Encrypt-then-MAC tag: `KH_{mac_key}(iv ‖ ciphertext)`. Lets an
    /// authorized subscriber verify it derived the right `K(e)` before
    /// decrypting (and detects tampering in transit).
    pub mac: [u8; 20],
}

/// A secure subscription filter: a topic token plus plaintext attribute
/// constraints (the broker can match ranges without learning the topic).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SecureFilter {
    /// The subscription token `T(w)`.
    pub token: Token,
    /// Attribute constraints evaluated in-network.
    pub constraints: Vec<Constraint>,
}

impl SecureFilter {
    /// Builds a secure filter from a token and the non-topic constraints
    /// of a plaintext filter.
    pub fn from_filter(token: Token, filter: &Filter) -> Self {
        SecureFilter {
            token,
            constraints: filter.constraints().to_vec(),
        }
    }
}

impl FilterSemantics for SecureFilter {
    type Event = SecureEvent;

    fn matches(&self, event: &SecureEvent) -> bool {
        if !event.tag.matches(&self.token) {
            return false;
        }
        self.constraints.iter().all(|c| {
            event
                .event
                .attr(c.name().as_str())
                .is_some_and(|v| c.matches_value(v))
        })
    }

    fn covers(&self, other: &SecureFilter) -> bool {
        if self.token != other.token {
            return false;
        }
        self.constraints
            .iter()
            .all(|mine| other.constraints.iter().any(|theirs| mine.covers(theirs)))
    }
}

/// The broker-side fast path: filters bucket by subscription token, so
/// the [`MatchIndex`](psguard_siena::MatchIndex) stores each distinct
/// token **once** no matter how many subscribers share it (token
/// interning) and performs a single PRF verification per distinct live
/// token per event — memoized on the event's nonce, so a re-published
/// envelope costs no PRF at all.
impl IndexableFilter for SecureFilter {
    type Key = Token;

    fn routing_key(&self) -> Token {
        self.token
    }

    fn indexed_constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    fn event_attr<'a>(event: &'a SecureEvent, name: &AttrName) -> Option<&'a AttrValue> {
        event.event.attr(name.as_str())
    }

    fn candidate_keys(_event: &SecureEvent) -> KeyQuery<Token> {
        // A tag reveals nothing about its token; every live token bucket
        // must be PRF-probed (that is the point of the scheme).
        KeyQuery::Probe
    }

    fn key_matches(key: &Token, event: &SecureEvent) -> bool {
        event.tag.matches(key)
    }

    /// Prepared-probe fast path: a [`PrfContext`] keyed by the bucket's
    /// subscription token. Probing an event tag then costs two SHA-1
    /// compressions (nonce + outer block) instead of four, with no heap
    /// traffic — the decisive per-event cost at pipeline scale.
    type ProbeContext = PrfContext;

    fn probe_context(key: &Token) -> Option<PrfContext> {
        Some(PrfContext::for_token(key))
    }

    fn context_matches(ctx: &PrfContext, event: &SecureEvent) -> bool {
        ctx.verify(&event.tag.nonce, &event.tag.tag)
    }

    fn probe_memo_key(event: &SecureEvent) -> Option<u128> {
        Some(u128::from_le_bytes(event.tag.nonce))
    }
}

/// Wire-format support so secure traffic can cross the TCP transport.
mod wire_impls {
    use super::*;
    use psguard_siena::wire::{take_arr, Wire, WireError};

    impl Wire for RoutableTag {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.nonce);
            self.tag.encode(buf);
        }
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            Ok(RoutableTag {
                nonce: take_arr(input)?,
                tag: Token::decode(input)?,
            })
        }
    }

    impl Wire for SecureEvent {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.tag.encode(buf);
            self.event.encode(buf);
            buf.extend_from_slice(&self.iv);
            self.epoch.encode(buf);
            buf.extend_from_slice(&self.mac);
        }
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            let tag = RoutableTag::decode(input)?;
            let event = Event::decode(input)?;
            let iv = take_arr(input)?;
            let epoch = u64::decode(input)?;
            let mac = take_arr(input)?;
            Ok(SecureEvent {
                tag,
                event,
                iv,
                epoch,
                mac,
            })
        }
    }

    impl Wire for SecureFilter {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.token.encode(buf);
            (self.constraints.len() as u32).encode(buf);
            for c in &self.constraints {
                c.name().as_str().to_owned().encode(buf);
                c.op().encode(buf);
            }
        }
        fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
            let token = Token::decode(input)?;
            let n = u32::decode(input)? as usize;
            if n > 4096 {
                return Err(WireError::BadLength(n));
            }
            let mut constraints = Vec::with_capacity(n);
            for _ in 0..n {
                let name = String::decode(input)?;
                let op = psguard_model::Op::decode(input)?;
                constraints.push(Constraint::new(name, op));
            }
            Ok(SecureFilter { token, constraints })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psguard_model::Op;
    use psguard_siena::wire::Wire;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn token(seed: &str) -> Token {
        prf(b"master", seed.as_bytes())
    }

    fn secure_event(topic_token: &Token, age: i64) -> SecureEvent {
        let mut rng = StdRng::seed_from_u64(1);
        SecureEvent {
            tag: RoutableTag::new(topic_token, &mut rng),
            event: Event::builder("")
                .attr("age", age)
                .payload(vec![0xaa; 32])
                .build(),
            iv: [0u8; 16],
            epoch: 0,
            mac: [0u8; 20],
        }
    }

    #[test]
    fn tag_matches_only_its_topic() {
        let t1 = token("cancerTrail");
        let t2 = token("weather");
        let mut rng = StdRng::seed_from_u64(2);
        let tag = RoutableTag::new(&t1, &mut rng);
        assert!(tag.matches(&t1));
        assert!(!tag.matches(&t2));
    }

    #[test]
    fn fresh_nonces_give_unlinkable_tags() {
        let t = token("w");
        let mut rng = StdRng::seed_from_u64(3);
        let a = RoutableTag::new(&t, &mut rng);
        let b = RoutableTag::new(&t, &mut rng);
        assert_ne!(a.nonce, b.nonce);
        assert_ne!(a.tag, b.tag);
        assert!(a.matches(&t) && b.matches(&t));
    }

    #[test]
    fn secure_filter_matches_token_and_constraints() {
        let t = token("w");
        let f = SecureFilter {
            token: t,
            constraints: vec![Constraint::new("age", Op::Ge(18))],
        };
        assert!(FilterSemantics::matches(&f, &secure_event(&t, 25)));
        assert!(!FilterSemantics::matches(&f, &secure_event(&t, 10)));
        assert!(!FilterSemantics::matches(
            &f,
            &secure_event(&token("other"), 25)
        ));
    }

    #[test]
    fn secure_covering_requires_same_token() {
        let t = token("w");
        let broad = SecureFilter {
            token: t,
            constraints: vec![Constraint::new("age", Op::Ge(10))],
        };
        let narrow = SecureFilter {
            token: t,
            constraints: vec![Constraint::new("age", Op::Ge(20))],
        };
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        let other = SecureFilter {
            token: token("x"),
            constraints: vec![],
        };
        assert!(!other.covers(&narrow));
    }

    #[test]
    fn secure_types_roundtrip_on_the_wire() {
        let t = token("w");
        let e = secure_event(&t, 30);
        let bytes = e.to_bytes();
        assert_eq!(SecureEvent::from_bytes(&bytes).unwrap(), e);

        let f = SecureFilter {
            token: t,
            constraints: vec![Constraint::new("age", Op::Le(64))],
        };
        let bytes = f.to_bytes();
        assert_eq!(SecureFilter::from_bytes(&bytes).unwrap(), f);
    }

    #[test]
    fn truncated_wire_rejected() {
        let t = token("w");
        let e = secure_event(&t, 30);
        let bytes = e.to_bytes();
        assert!(SecureEvent::from_bytes(&bytes[..10]).is_err());
    }
}
