//! Secure content-based event routing for PSGuard (§4 of the paper).
//!
//! Two mechanisms combine so that honest-but-curious brokers can route
//! events without learning their contents:
//!
//! * **Tokenization** ([`RoutableTag`], [`SecureFilter`], [`SecureEvent`])
//!   — Song–Wagner–Perrig searchable encryption hides the topic while
//!   still letting brokers test "does this event match this
//!   subscription?";
//! * **Probabilistic multi-path routing** ([`MultipathTree`]) — the
//!   dissemination tree gains `sibling(parent(n))` edges, yielding
//!   `ind ≤ a` vertex-disjoint publisher→subscriber paths (Theorem 4.2);
//!   each event takes one of `ind_t ∝ λ_t` paths uniformly at random,
//!   flattening the token frequencies any single broker observes.
//!
//! Leakage is quantified by entropy ([`entropy_bits`], [`EntropyReport`]),
//! and [`simulate`] reproduces the paper's frequency-inference experiments
//! under both non-collusive and collusive observers (Figures 6–8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod dedup;
mod entropy;
mod multipath;
mod overlay;
mod redundant;
mod secure;

pub use attack::{simulate, AttackSimConfig, Observations};
pub use dedup::DedupWindow;
pub use entropy::{entropy_bits, max_entropy_bits, zipf_frequencies, EntropyReport};
pub use multipath::{MultipathError, MultipathTree, TreeNode};
pub use overlay::{MultipathOverlay, OverlayReport};
pub use redundant::{
    apparent_entropy, flattening_gain, DeliveryReport, PathAssignment, RedundantRouter,
};
pub use secure::{RoutableTag, SecureEvent, SecureFilter};
